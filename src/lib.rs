//! Facade: re-exports every crate of the workspace.
pub use obs_analytics as analytics;
pub use obs_experiments as experiments;
pub use obs_live as live;
pub use obs_mashup as mashup;
pub use obs_model as model;
pub use obs_quality as quality;
pub use obs_search as search;
pub use obs_sentiment as sentiment;
pub use obs_stats as stats;
pub use obs_synth as synth;
pub use obs_telemetry as telemetry;
pub use obs_wrappers as wrappers;
