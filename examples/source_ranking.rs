//! Source ranking: run a query through the baseline search engine,
//! re-rank the results by the paper's quality model, and show the
//! two rankings side by side (the Section 4.1 workflow).
//!
//! ```sh
//! cargo run --example source_ranking
//! ```

use informing_observers::analytics::{AlexaPanel, FeedRegistry, LinkGraph};
use informing_observers::quality::{rank_sources, Benchmarks, SourceContext, Weights};
use informing_observers::search::{BlendWeights, SearchEngine};
use informing_observers::synth::{World, WorldConfig};

fn main() {
    let world = World::generate(WorldConfig {
        sources: 120,
        users: 600,
        ..WorldConfig::ranking_study(7)
    });
    let panel = AlexaPanel::simulate(&world, 1);
    let links = LinkGraph::simulate(&world, 2);
    let feeds = FeedRegistry::simulate(&world, 3);
    let engine = SearchEngine::build(&world.corpus, &panel, &links, BlendWeights::default());

    let terms = vec!["duomo".to_owned(), "rooftop".to_owned()];
    let hits = engine.query(&terms, 10);
    println!("query: {:?} — {} hits\n", terms.join(" "), hits.len());

    let di = world.open_di();
    let ctx = SourceContext::new(&world.corpus, &panel, &links, &feeds, &di, world.now);
    let weights = Weights::uniform();
    let benchmarks = Benchmarks::for_sources(&ctx, 0.9);
    let sources: Vec<_> = hits.iter().map(|h| h.source).collect();
    let quality = rank_sources(&ctx, &sources, &weights, &benchmarks);

    println!(
        "{:<4} {:<28} {:>12} {:>14}",
        "pos", "source", "search score", "quality pos"
    );
    for hit in &hits {
        let s = world.corpus.source(hit.source).unwrap();
        let qpos = quality
            .iter()
            .find(|r| r.source == hit.source)
            .unwrap()
            .position;
        println!(
            "{:<4} {:<28} {:>12.2} {:>14}",
            hit.position, s.name, hit.score, qpos
        );
    }
}
