//! Quickstart: generate a synthetic Web 2.0 world, run the quality
//! model over one source and one contributor, and print the scores.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use informing_observers::analytics::{AlexaPanel, FeedRegistry, LinkGraph};
use informing_observers::quality::{
    assess_contributor, assess_source, Benchmarks, SourceContext, Weights,
};
use informing_observers::synth::{World, WorldConfig};

fn main() {
    // 1. A seeded world: sources, users, discussions, interactions.
    let world = World::generate(WorldConfig::small(42));
    println!("world: {}", world.corpus.stats());

    // 2. The analytics substrates the paper reads measures from.
    let panel = AlexaPanel::simulate(&world, 1);
    let links = LinkGraph::simulate(&world, 2);
    let feeds = FeedRegistry::simulate(&world, 3);

    // 3. A Domain of Interest (Milan tourism) and the evaluation
    //    context.
    let di = world.tourism_di();
    let ctx = SourceContext::new(&world.corpus, &panel, &links, &feeds, &di, world.now);

    // 4. Benchmarks from the best-in-class sources, then assess.
    let weights = Weights::uniform();
    let benchmarks = Benchmarks::for_sources(&ctx, 0.9);
    let source = &world.corpus.sources()[0];
    let score = assess_source(&ctx, source.id, &weights, &benchmarks);
    println!(
        "\nsource {:?} ({}) — overall quality {:.3}",
        source.name, source.kind, score.overall
    );
    for (dim, v) in score.by_dimension() {
        println!("  {dim:<16} {v:.3}");
    }

    // 5. Same for a contributor (Table 2).
    let user_benchmarks = Benchmarks::for_contributors(&ctx, 0.9);
    let user = &world.corpus.users()[0];
    let uscore = assess_contributor(&ctx, user.id, &weights, &user_benchmarks);
    println!(
        "\ncontributor {:?} — overall quality {:.3}",
        user.handle, uscore.overall
    );
    for (attr, v) in uscore.by_attribute() {
        println!("  {attr:<24} {v:.3}");
    }
}
