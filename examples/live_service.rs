//! Live serving: readers query while crawl ticks stream in, and a
//! crash is survived by replaying the delta journal.
//!
//! The demo winds an engine back to the midpoint of history and
//! starts a [`LiveService`] over it. Three reader threads then
//! hammer the snapshot store with queries while the main thread
//! sweeps the sources in group-committed bursts
//! ([`LiveService::tick_sweep`]): each burst crawls a batch of
//! sources — fanned across **4 worker threads**
//! (`CrawlerConfig::workers`), joined back in source order so the
//! burst is byte-identical to a sequential crawl — journals every
//! fresh per-source delta under **one** fsync, applies them in one
//! amortized copy-on-write pass, and publishes one immutable
//! snapshot. Readers never block on an in-flight apply; they just
//! keep observing monotonically newer epochs — one per burst, never
//! a mid-burst state.
//!
//! Finally the service is dropped without ceremony — a crash — and
//! [`LiveService::recover`] rebuilds it from the checkpoint plus the
//! journal. The recovered rankings are compared against the
//! pre-crash engine: bit-identical.
//!
//! The whole run is instrumented through one
//! [`Registry`](informing_observers::telemetry::Registry): the
//! crawler records per-fetch latency and item counts
//! ([`CrawlMetrics`]), the service records per-stage commit timings
//! and group-commit batch sizes ([`LiveMetrics`]), and the demo ends
//! with the registry's text exposition instead of hand-rolled
//! timers.
//!
//! ```sh
//! cargo run --release --example live_service
//! ```

use informing_observers::analytics::{AlexaPanel, LinkGraph};
use informing_observers::live::{LiveMetrics, LiveService};
use informing_observers::model::{Clock, CorpusDelta, PostId, Timestamp};
use informing_observers::search::{BlendWeights, SearchEngine};
use informing_observers::synth::{World, WorldConfig};
use informing_observers::telemetry::Registry;
use informing_observers::wrappers::{
    service_for, CrawlMetrics, Crawler, CrawlerConfig, DataService, HighWaterMarks,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn main() {
    let world = World::generate(WorldConfig {
        sources: 120,
        users: 600,
        ..WorldConfig::ranking_study(7)
    });
    let panel = AlexaPanel::simulate(&world, 1);
    let links = LinkGraph::simulate(&world, 2);
    let engine = SearchEngine::build(&world.corpus, &panel, &links, BlendWeights::default());

    // Wind back to the midpoint: the "state at boot".
    let midpoint = Timestamp(world.now.seconds() / 2);
    let recent: Vec<PostId> = world
        .corpus
        .posts()
        .iter()
        .filter(|p| p.published > midpoint)
        .map(|p| p.id)
        .collect();
    let mut checkpoint = engine.clone();
    checkpoint.apply_delta(&CorpusDelta::for_removals(&world.corpus, &recent).unwrap());
    println!(
        "boot state: {} docs indexed, {} posts still unobserved",
        checkpoint.doc_count(),
        recent.len()
    );

    let journal_path =
        std::env::temp_dir().join(format!("obs_live_example_{}.journal", std::process::id()));
    let registry = Arc::new(Registry::new());
    let mut service = LiveService::start(checkpoint.clone(), &journal_path)
        .expect("journal in temp dir")
        .with_metrics(LiveMetrics::new(&registry));

    // Three reader threads query continuously while the writer works.
    let stop = Arc::new(AtomicBool::new(false));
    let queries_served = Arc::new(AtomicU64::new(0));
    let epochs_seen = Arc::new(AtomicU64::new(0));
    let terms = vec!["duomo".to_owned(), "rooftop".to_owned()];
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let reader = service.reader();
            let stop = Arc::clone(&stop);
            let queries = Arc::clone(&queries_served);
            let epochs = Arc::clone(&epochs_seen);
            let terms = terms.clone();
            scope.spawn(move || {
                let mut last_seq = 0;
                while !stop.load(Ordering::Relaxed) {
                    let snap = reader.snapshot();
                    if snap.seq() != last_seq {
                        last_seq = snap.seq();
                        epochs.fetch_add(1, Ordering::Relaxed);
                    }
                    let hits = snap.engine().query(&terms, 10);
                    assert!(hits.len() <= 10);
                    queries.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // The writer: the sources swept in group-committed bursts
        // of 15, each burst's crawls fanned across 4 worker threads,
        // high-water marks seeded at the midpoint. Every burst
        // journals its fresh per-source deltas under one fsync,
        // applies them in one amortized pass and publishes one
        // snapshot.
        let crawler = Crawler::new(CrawlerConfig {
            workers: 4,
            ..CrawlerConfig::default()
        })
        .with_metrics(Arc::new(CrawlMetrics::new(&registry)));
        let mut marks = HighWaterMarks::new();
        for source in world.corpus.sources() {
            marks.advance(source.id, midpoint);
        }
        let mut sweeps = 0usize;
        let mut publishes = 0usize;
        for sources in world.corpus.sources().chunks(15) {
            let mut services: Vec<Box<dyn DataService + '_>> = sources
                .iter()
                .map(|s| service_for(&world.corpus, s.id, world.now).unwrap())
                .collect();
            let mut clock = Clock::starting_at(world.now);
            let before = service.seq();
            service
                .tick_sweep(&crawler, &mut services, &mut clock, &mut marks)
                .expect("sweep");
            sweeps += 1;
            // A burst with no fresh content publishes nothing.
            if service.seq() > before {
                publishes += 1;
            }
        }
        stop.store(true, Ordering::Relaxed);
        println!(
            "writer group-committed {} journaled deltas across {sweeps} sweeps \
             of 4 crawl workers each ({publishes} published snapshots instead \
             of one per delta)",
            service.journal_len(),
        );
    });
    println!(
        "final seq {} while 3 readers served {} queries and observed {} epoch \
         changes — no reader ever blocked, none saw a mid-burst state",
        service.seq(),
        queries_served.load(Ordering::Relaxed),
        epochs_seen.load(Ordering::Relaxed),
    );

    // Remember the pre-crash rankings, then crash.
    let pre_crash = service.reader().snapshot();
    let pre_hits = pre_crash.engine().query(&terms, 10);
    drop(service); // no shutdown, no checkpoint flush — a kill

    let (recovered, report) =
        LiveService::recover(checkpoint, 0, &journal_path).expect("journal replays");
    println!(
        "recovered from crash: {} deltas replayed over the checkpoint (torn tail: {})",
        report.replayed, report.torn_tail_dropped,
    );
    let post = recovered.reader().snapshot();
    let post_hits = post.engine().query(&terms, 10);

    println!(
        "\n{:<4} {:<28} {:>12} {:>12}",
        "pos", "source", "pre-crash", "recovered"
    );
    for (a, b) in pre_hits.iter().zip(&post_hits) {
        let name = &world.corpus.source(a.source).unwrap().name;
        println!(
            "{:<4} {:<28} {:>12.4} {:>12.4}",
            a.position, name, a.score, b.score
        );
    }
    println!(
        "\nrankings bit-identical after recovery: {}",
        pre_hits == post_hits
    );

    // Everything the run measured, straight from the registry — the
    // per-source crawl series are elided to keep the dump short.
    println!("\n== metrics exposition (per-source series elided) ==");
    for line in registry.render_text().lines() {
        if !line.contains("source=\"") {
            println!("{line}");
        }
    }
    std::fs::remove_file(&journal_path).ok();
}
