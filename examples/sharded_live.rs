//! Sharded serving: the corpus split across four shards behind one
//! scatter-gather query plan, with per-shard crash recovery.
//!
//! The demo builds an engine for the whole corpus, then replays the
//! same content into two topologies side by side: an unsharded
//! [`LiveService`] and a four-shard [`ShardedLiveService`] (hash of
//! the source id picks the shard; each shard owns its own journal,
//! writer and snapshot store, and the routed sub-batches of a burst
//! commit in parallel under per-shard group commits). Queries fan
//! out over every shard, gather exact global statistics, and merge
//! the per-shard top-k — the demo asserts the merged rankings are
//! **bit-identical** to the unsharded engine's, not merely close.
//!
//! Then the sharded service is dropped mid-flight — a crash — and
//! rebuilt with [`ShardedLiveService::recover`]: every shard replays
//! its *own* journal, so the recovery cost is proportional to the
//! largest shard, not the corpus. The recovered rankings are
//! compared against the pre-crash ones: identical again.
//!
//! The sharded service runs instrumented
//! ([`ShardMetrics`]): every routed burst records its fan-out width
//! and per-shard commit latency/outcome, and every scatter-gather
//! query records its gather, per-shard scoring and whole-plan
//! timings. A snapshot-keyed [`QueryCache`] rides along with its own
//! hit/miss/fill/eviction counters — the demo repeats a query so the
//! hit path shows up in the exposition. The demo ends with the
//! registry's text exposition.
//!
//! ```sh
//! cargo run --release --example sharded_live
//! ```

use informing_observers::analytics::{AlexaPanel, LinkGraph};
use informing_observers::live::{
    CacheMetrics, LiveService, QueryCache, ShardMetrics, ShardedLiveService,
};
use informing_observers::model::{CorpusDelta, PostId};
use informing_observers::search::{BlendWeights, SearchEngine};
use informing_observers::synth::{World, WorldConfig};
use informing_observers::telemetry::Registry;

const SHARDS: usize = 4;

fn main() {
    let world = World::generate(WorldConfig {
        sources: 120,
        users: 600,
        ..WorldConfig::ranking_study(7)
    });
    let panel = AlexaPanel::simulate(&world, 1);
    let links = LinkGraph::simulate(&world, 2);
    let engine = SearchEngine::build(&world.corpus, &panel, &links, BlendWeights::default());

    // The sharded seed carries the analytics-derived static signals
    // but zero documents: an existing index cannot be partitioned
    // after the fact, so the corpus streams in as routed deltas.
    let all: Vec<PostId> = world.corpus.posts().iter().map(|p| p.id).collect();
    let mut seed = engine.clone();
    seed.apply_delta(&CorpusDelta::for_removals(&world.corpus, &all).unwrap());
    println!(
        "corpus: {} docs across {} sources, replayed into 1 and {} shards",
        all.len(),
        world.corpus.sources().len(),
        SHARDS
    );

    let base = std::env::temp_dir().join(format!("sharded_live_example_{}", std::process::id()));
    std::fs::create_dir_all(&base).unwrap();
    let flat_path = base.join("flat.journal");
    let shard_dir = base.join("shards");

    let registry = Registry::new();
    let metrics = ShardMetrics::new(&registry, SHARDS);
    let cache_metrics = CacheMetrics::new(&registry);
    let mut flat = LiveService::start(seed.clone(), &flat_path).unwrap();
    let mut sharded = ShardedLiveService::start(&seed, SHARDS, &shard_dir)
        .unwrap()
        .with_metrics(metrics.clone())
        .with_query_cache(QueryCache::new(128).with_metrics(cache_metrics.clone()));

    // The same burst stream through both topologies: chunks of posts
    // as deltas, group-committed sixteen at a time. In the sharded
    // service each burst is routed and committed per shard, in
    // parallel, under one fsync per touched shard.
    let deltas: Vec<CorpusDelta> = all
        .chunks(64)
        .map(|chunk| CorpusDelta::for_posts(&world.corpus, chunk).unwrap())
        .collect();
    for burst in deltas.chunks(16) {
        flat.ingest_batch(burst).unwrap();
        sharded.ingest_batch(burst).unwrap();
    }
    let per_shard: Vec<usize> = (0..SHARDS)
        .map(|i| sharded.shard_engine(i).doc_count())
        .collect();
    println!(
        "ingested: sharded doc counts per shard {per_shard:?} (total {}), unsharded {}",
        sharded.doc_count(),
        flat.reader().snapshot().engine().doc_count()
    );

    // Scatter-gather vs single index: bit-identical rankings. The
    // first ask fills the snapshot-keyed query cache, the second is
    // served from it — same epochs, same entry, same bits.
    let probe: Vec<String> = vec!["museum".into(), "festival".into(), "market".into()];
    let reader = sharded.reader();
    let sharded_hits = reader.query(&probe, 10);
    assert_eq!(sharded_hits, reader.query(&probe, 10));
    assert_eq!(
        cache_metrics.hits(),
        1,
        "the repeat ask must be a cache hit"
    );
    let flat_snapshot = flat.reader().snapshot();
    let flat_hits = flat_snapshot.engine().query(&probe, 10);
    assert_eq!(
        sharded_hits, flat_hits,
        "scatter-gather must reproduce the unsharded ranking bit for bit"
    );
    println!("\ntop sources, identical from both topologies:");
    for hit in &sharded_hits {
        println!(
            "  #{:<2} {}  score {:.4}",
            hit.position, hit.source, hit.score
        );
    }

    // Crash: the sharded service is dropped without ceremony. Every
    // shard then recovers from its own journal.
    let pre_seqs = sharded.seqs();
    drop(sharded);
    let (recovered, reports) = ShardedLiveService::recover(&seed, SHARDS, &shard_dir).unwrap();
    println!("\nrecovered {} shards independently:", reports.len());
    for (i, report) in reports.iter().enumerate() {
        println!(
            "  shard {i}: replayed {} records to seq {} (torn tail: {})",
            report.replayed, report.recovered_seq, report.torn_tail_dropped
        );
    }
    assert_eq!(recovered.seqs(), pre_seqs);
    assert_eq!(
        recovered.reader().query(&probe, 10),
        flat_hits,
        "per-shard recovery must land on the identical ranking"
    );
    println!("post-recovery rankings: bit-identical to pre-crash. ✓");

    // What the instrumented run measured: commit balance across the
    // shards, then the registry's full text exposition.
    println!("\ncommit balance (shard, commits, failures):");
    for (shard, commits, failures) in metrics.commit_counts() {
        println!("  shard {shard}: {commits} commits, {failures} failures");
    }
    println!("\n== metrics exposition ==");
    for line in registry.render_text().lines() {
        println!("{line}");
    }

    std::fs::remove_dir_all(&base).ok();
}
