//! Live index maintenance: a crawl tick flows straight into a
//! queryable engine, no rebuild.
//!
//! The demo winds the search engine back to a mid-history snapshot
//! (removing every recent post through a [`CorpusDelta`]), then
//! performs one incremental crawl per source with the high-water
//! mark set to that midpoint. Each crawl tick emits the delta of
//! what it observed; applying the deltas brings the stale engine
//! back in line with an engine built from scratch over the full
//! corpus.
//!
//! ```sh
//! cargo run --example live_index
//! ```

use informing_observers::analytics::{AlexaPanel, LinkGraph};
use informing_observers::model::{Clock, CorpusDelta, PostId, Timestamp};
use informing_observers::search::{BlendWeights, SearchEngine};
use informing_observers::synth::{World, WorldConfig};
use informing_observers::wrappers::{service_for, Crawler};

fn main() {
    let world = World::generate(WorldConfig {
        sources: 120,
        users: 600,
        ..WorldConfig::ranking_study(7)
    });
    let panel = AlexaPanel::simulate(&world, 1);
    let links = LinkGraph::simulate(&world, 2);
    let fresh = SearchEngine::build(&world.corpus, &panel, &links, BlendWeights::default());

    // Wind a copy of the engine back to the midpoint of history.
    let midpoint = Timestamp(world.now.seconds() / 2);
    let recent: Vec<PostId> = world
        .corpus
        .posts()
        .iter()
        .filter(|p| p.published > midpoint)
        .map(|p| p.id)
        .collect();
    let mut live = fresh.clone();
    live.apply_delta(&CorpusDelta::for_removals(&world.corpus, &recent).unwrap());
    println!(
        "full corpus: {} docs · snapshot at midpoint: {} docs ({} posts not yet observed)",
        fresh.doc_count(),
        live.doc_count(),
        recent.len()
    );

    // One crawl tick per source, high-water mark at the midpoint;
    // every tick's observation becomes a delta.
    let crawler = Crawler::default();
    let mut merged = CorpusDelta::new();
    for source in world.corpus.sources() {
        let mut clock = Clock::starting_at(world.now);
        let mut service = service_for(&world.corpus, source.id, world.now).unwrap();
        let (delta, _) = crawler
            .crawl_delta(service.as_mut(), &mut clock, Some(midpoint))
            .unwrap();
        merged.merge(delta);
    }
    // The crawl sees comments too; here only the fresh posts matter.
    // Re-deriving their indexable text from the corpus (titles are
    // not part of the wrappers' uniform item model) makes the replay
    // exact.
    let observed: Vec<PostId> = merged.added.iter().map(|d| d.post).collect();
    live.apply_delta(&CorpusDelta::for_posts(&world.corpus, &observed).unwrap());
    println!(
        "crawl tick observed {} fresh posts → live index now at {} docs\n",
        observed.len(),
        live.doc_count()
    );

    let terms = vec!["duomo".to_owned(), "rooftop".to_owned()];
    let fresh_hits = fresh.query(&terms, 10);
    let live_hits = live.query(&terms, 10);
    println!(
        "query {:?}: {} hits from scratch-built, {} from incrementally maintained",
        terms.join(" "),
        fresh_hits.len(),
        live_hits.len()
    );
    println!(
        "\n{:<4} {:<28} {:>14} {:>14}",
        "pos", "source", "fresh", "live"
    );
    for (f, l) in fresh_hits.iter().zip(&live_hits) {
        let name = &world.corpus.source(f.source).unwrap().name;
        println!(
            "{:<4} {:<28} {:>14.4} {:>14.4}",
            f.position, name, f.score, l.score
        );
    }
    println!("\nrankings identical: {}", fresh_hits == live_hits);
}
