//! Tourism dashboard: the paper's Figure 1 mashup assembled through
//! the public API — two data services, an influencer filter, the
//! sentiment annotator, synchronized list/map viewers and the
//! quality-weighted mood gauge.
//!
//! ```sh
//! cargo run --example tourism_dashboard
//! ```

use informing_observers::analytics::{AlexaPanel, FeedRegistry, LinkGraph};
use informing_observers::mashup::components::standard_registry;
use informing_observers::mashup::{Composition, Engine, MashupEnv};
use informing_observers::model::SourceKind;
use informing_observers::synth::{World, WorldConfig};
use serde_json::json;

fn main() {
    let world = World::generate(WorldConfig::sentiment_study(42));
    let panel = AlexaPanel::simulate(&world, 1);
    let links = LinkGraph::simulate(&world, 2);
    let feeds = FeedRegistry::simulate(&world, 3);
    let di = world.tourism_di();
    let env = MashupEnv::prepare(&world.corpus, &panel, &links, &feeds, &di, world.now);

    // Pick the top-quality microblog and review sources (the paper's
    // "top ranked sources" for the tourism DI).
    let best = |kind: SourceKind| {
        world
            .corpus
            .sources()
            .iter()
            .filter(|s| s.kind == kind)
            .max_by(|a, b| env.quality_of(a.id).total_cmp(&env.quality_of(b.id)))
            .map(|s| s.name.clone())
            .expect("world has this kind")
    };

    let composition = Composition::new("tourism-dashboard")
        .with_component(
            "twitter",
            "source",
            json!({ "source": best(SourceKind::Microblog) }),
        )
        .with_component(
            "tripadvisor",
            "source",
            json!({ "source": best(SourceKind::ReviewSite) }),
        )
        .with_component("influencers", "influencer-filter", json!({ "top": 12 }))
        .with_component("senti", "sentiment", json!({}))
        .with_component(
            "list",
            "list-viewer",
            json!({ "title": "Influencer posts" }),
        )
        .with_component("map", "map-viewer", json!({ "title": "Milan map" }))
        .with_component(
            "mood",
            "indicator-viewer",
            json!({ "title": "Tourism mood" }),
        )
        .with_data_edge("twitter", "influencers")
        .with_data_edge("tripadvisor", "influencers")
        .with_data_edge("influencers", "senti")
        .with_data_edge("senti", "list")
        .with_data_edge("senti", "map")
        .with_data_edge("senti", "mood")
        .with_sync_edge("list", "map");

    let registry = standard_registry();
    let engine = Engine::new(&registry);
    let mut execution = engine
        .execute(&composition, &env)
        .expect("valid composition");

    for line in &execution.trace {
        println!("trace: {line}");
    }
    println!();
    for (id, render) in execution.renders() {
        println!("[{id}]\n{render}\n");
    }

    // Click the first row of the list: the map re-centers.
    let affected = execution.select("list", 0).expect("list rows exist");
    println!("selection refreshed: {affected:?}\n");
    println!("{}", execution.render("map").unwrap());
}
