//! Influencer hunt: build influence profiles from absolute and
//! relative interaction volumes (Section 3.2), list the top
//! influencers, and show how the combined rule screens out spam bots.
//!
//! ```sh
//! cargo run --example influencer_hunt
//! ```

use informing_observers::analytics::{AlexaPanel, FeedRegistry, LinkGraph};
use informing_observers::model::DomainOfInterest;
use informing_observers::quality::{influence_profiles, likely_spammers, SourceContext};
use informing_observers::synth::{World, WorldConfig};

fn main() {
    let world = World::generate(WorldConfig {
        users: 500,
        sources: 40,
        interaction_rate: 1.5,
        ..WorldConfig::small(23)
    });
    let panel = AlexaPanel::simulate(&world, 1);
    let links = LinkGraph::simulate(&world, 2);
    let feeds = FeedRegistry::simulate(&world, 3);
    let di = DomainOfInterest::unconstrained("all");
    let ctx = SourceContext::new(&world.corpus, &panel, &links, &feeds, &di, world.now);

    let profiles = influence_profiles(&ctx);
    println!("{} active contributors profiled\n", profiles.len());
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>8}",
        "user", "emissions", "absolute", "relative", "score"
    );
    for p in profiles.iter().take(10) {
        let u = world.corpus.user(p.user).unwrap();
        println!(
            "{:<12} {:>10} {:>10.0} {:>10.3} {:>8.3}",
            u.handle, p.emissions, p.received_absolute, p.received_relative, p.combined_score
        );
    }

    let flagged = likely_spammers(&profiles);
    println!("\nspam screen flagged {} accounts:", flagged.len());
    for user in flagged.iter().take(8) {
        let u = world.corpus.user(*user).unwrap();
        let truth = world.user_latents[user.index()].spammer;
        println!("  {:<14} (ground truth spammer: {truth})", u.handle);
    }
}
