//! Model-level errors.

use crate::{CommentId, DiscussionId, PostId, SourceId, UserId};

/// Errors raised when addressing entities that do not exist in a
/// corpus, or when building an inconsistent corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// Unknown source id.
    UnknownSource(SourceId),
    /// Unknown user id.
    UnknownUser(UserId),
    /// Unknown discussion id.
    UnknownDiscussion(DiscussionId),
    /// Unknown post id.
    UnknownPost(PostId),
    /// Unknown comment id.
    UnknownComment(CommentId),
    /// A reply refers to a comment in a different discussion.
    CrossDiscussionReply {
        /// The offending comment.
        comment: CommentId,
        /// The parent it claimed.
        claimed_parent: CommentId,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::UnknownSource(id) => write!(f, "unknown source {id}"),
            ModelError::UnknownUser(id) => write!(f, "unknown user {id}"),
            ModelError::UnknownDiscussion(id) => write!(f, "unknown discussion {id}"),
            ModelError::UnknownPost(id) => write!(f, "unknown post {id}"),
            ModelError::UnknownComment(id) => write!(f, "unknown comment {id}"),
            ModelError::CrossDiscussionReply {
                comment,
                claimed_parent,
            } => write!(
                f,
                "comment {comment} replies to {claimed_parent} from another discussion"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_ids() {
        let e = ModelError::UnknownSource(SourceId::new(5));
        assert!(e.to_string().contains("SourceId#5"));
        let e = ModelError::CrossDiscussionReply {
            comment: CommentId::new(1),
            claimed_parent: CommentId::new(2),
        };
        assert!(e.to_string().contains("CommentId#1"));
        assert!(e.to_string().contains("CommentId#2"));
    }
}
