//! # obs-model — domain model for Web 2.0 sources and their contents
//!
//! This crate defines the vocabulary shared by the whole *Informing
//! Observers* reproduction: sources (blogs, forums, microblogs, review
//! sites, wikis), the users who contribute to them, the contents they
//! produce (discussions, posts, comments, tags) and the social
//! interactions those contents attract (likes, shares, retweets,
//! mentions, feedbacks, reads).
//!
//! The model mirrors the artifacts the paper's quality measures are
//! defined over (Tables 1 and 2 of the paper): every measure — "number
//! of open discussions per content category", "average number of
//! distinct tags per post", "number of received replies", … — is an
//! aggregate over the entities in this crate.
//!
//! The central container is [`Corpus`], an immutable arena of entities
//! with pre-computed secondary indexes, built through
//! [`CorpusBuilder`]. All identifiers are dense indexes into the arena,
//! which keeps lookups allocation-free and makes the whole world
//! trivially serializable and hashable.
//!
//! ```
//! use obs_model::{CorpusBuilder, SourceKind, AccountKind, Timestamp};
//!
//! let mut b = CorpusBuilder::new();
//! let cat = b.add_category("tourism");
//! let src = b.add_source(SourceKind::Blog, "milan-diaries", Timestamp::from_days(0));
//! let user = b.add_user("ada", AccountKind::Person, Timestamp::from_days(1));
//! let d = b.add_discussion(src, cat, "best gelato near the Duomo", user,
//!                          Timestamp::from_days(3));
//! b.add_comment(d, user, "try the one in Brera!", Timestamp::from_days(4));
//! let corpus = b.build();
//! assert_eq!(corpus.sources().len(), 1);
//! assert_eq!(corpus.comments_of_discussion(d).len(), 1);
//! ```

#![warn(missing_docs)]

mod corpus;
mod delta;
mod domain;
mod error;
mod geo;
mod ids;
mod interaction;
mod source;
mod text;
mod time;
mod user;

pub use corpus::{Corpus, CorpusBuilder, CorpusStats};
pub use delta::{document_text, CorpusDelta, DocDelta, EngagementDelta, SequencedDelta};
pub use domain::{CategoryBook, DomainOfInterest};
pub use error::ModelError;
pub use geo::{GeoPoint, Region};
pub use ids::{CategoryId, CommentId, DiscussionId, InteractionId, PostId, SourceId, UserId};
pub use interaction::{ContentRef, Interaction, InteractionKind};
pub use source::{Source, SourceKind};
pub use text::{Comment, Discussion, Post, Tag};
pub use time::{Clock, Duration, TimeRange, Timestamp, SECONDS_PER_DAY};
pub use user::{AccountKind, UserProfile};
