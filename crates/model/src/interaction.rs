//! Social interactions.
//!
//! Section 3.2 of the paper abstracts over concrete social tools: "we
//! consider as interaction any social tool available (e.g., the
//! Facebook likes, or the Twitter retweets, mentions, and shares)".
//! [`InteractionKind`] enumerates those tools plus the passive *read*
//! events counted by the Table 2 time/activity measure ("number of
//! times comments are read by other users") and the generic
//! *feedback* used by the dependability measures.

use crate::{CommentId, InteractionId, PostId, Timestamp, UserId};
use serde::{Deserialize, Serialize};

/// What a social interaction points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ContentRef {
    /// An opening post.
    Post(PostId),
    /// A comment.
    Comment(CommentId),
}

impl ContentRef {
    /// The post id when the target is a post.
    pub fn as_post(self) -> Option<PostId> {
        match self {
            ContentRef::Post(p) => Some(p),
            ContentRef::Comment(_) => None,
        }
    }

    /// The comment id when the target is a comment.
    pub fn as_comment(self) -> Option<CommentId> {
        match self {
            ContentRef::Comment(c) => Some(c),
            ContentRef::Post(_) => None,
        }
    }
}

/// The concrete social tool used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum InteractionKind {
    /// A like / upvote / "+1".
    Like,
    /// A share to one's own audience.
    Share,
    /// A retweet (microblog re-broadcast). The paper treats retweets
    /// as the *feedback* measure of Twitter contributors.
    Retweet,
    /// A mention of another user (`@handle`); the *reply received*
    /// measure of Twitter contributors.
    Mention,
    /// A generic quality feedback ("was this review helpful?").
    Feedback,
    /// A passive read of a comment by another user.
    Read,
}

impl InteractionKind {
    /// All kinds, in declaration order.
    pub const ALL: [InteractionKind; 6] = [
        InteractionKind::Like,
        InteractionKind::Share,
        InteractionKind::Retweet,
        InteractionKind::Mention,
        InteractionKind::Feedback,
        InteractionKind::Read,
    ];

    /// Whether this kind counts as an *active* contribution by the
    /// actor (reads are passive and excluded from activity volumes).
    pub fn is_active(self) -> bool {
        !matches!(self, InteractionKind::Read)
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            InteractionKind::Like => "like",
            InteractionKind::Share => "share",
            InteractionKind::Retweet => "retweet",
            InteractionKind::Mention => "mention",
            InteractionKind::Feedback => "feedback",
            InteractionKind::Read => "read",
        }
    }
}

impl std::fmt::Display for InteractionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One social interaction event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Interaction {
    /// Dense identifier.
    pub id: InteractionId,
    /// Who performed the interaction.
    pub actor: UserId,
    /// What it targets.
    pub target: ContentRef,
    /// Which social tool was used.
    pub kind: InteractionKind,
    /// When it happened.
    pub at: Timestamp,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_ref_projections() {
        let p = ContentRef::Post(PostId::new(3));
        let c = ContentRef::Comment(CommentId::new(4));
        assert_eq!(p.as_post(), Some(PostId::new(3)));
        assert_eq!(p.as_comment(), None);
        assert_eq!(c.as_comment(), Some(CommentId::new(4)));
        assert_eq!(c.as_post(), None);
    }

    #[test]
    fn reads_are_passive_everything_else_active() {
        for k in InteractionKind::ALL {
            assert_eq!(k.is_active(), k != InteractionKind::Read, "{k}");
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            InteractionKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), InteractionKind::ALL.len());
    }
}
