//! Geographic locations.
//!
//! The paper's Domain of Interest carries a set of geographical
//! locations `<l1 … lm>` that scope the analysis (the concrete project
//! targeted Milan tourism). We model locations as lat/lon points and
//! circular regions; a post or user "matches" a DI location when it
//! falls inside one of the DI's regions.

use serde::{Deserialize, Serialize};

/// A latitude/longitude pair in degrees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl GeoPoint {
    /// Builds a point, clamping latitude to ±90 and wrapping longitude
    /// into (−180, 180].
    pub fn new(lat: f64, lon: f64) -> Self {
        let lat = lat.clamp(-90.0, 90.0);
        let mut lon = lon % 360.0;
        if lon > 180.0 {
            lon -= 360.0;
        } else if lon <= -180.0 {
            lon += 360.0;
        }
        GeoPoint { lat, lon }
    }

    /// Great-circle distance to `other` in kilometres (haversine).
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        const EARTH_RADIUS_KM: f64 = 6_371.0;
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }
}

/// A named circular region: the unit of the DI's location list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Region {
    /// Human-readable name ("Milan", "London", …).
    pub name: String,
    /// Region centre.
    pub center: GeoPoint,
    /// Radius in kilometres.
    pub radius_km: f64,
}

impl Region {
    /// Builds a region around a centre point.
    pub fn new(name: impl Into<String>, center: GeoPoint, radius_km: f64) -> Self {
        Region {
            name: name.into(),
            center,
            radius_km: radius_km.max(0.0),
        }
    }

    /// Whether `p` falls inside the region.
    pub fn contains(&self, p: &GeoPoint) -> bool {
        self.center.distance_km(p) <= self.radius_km
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn milan() -> GeoPoint {
        GeoPoint::new(45.4642, 9.19)
    }

    fn london() -> GeoPoint {
        GeoPoint::new(51.5072, -0.1276)
    }

    #[test]
    fn distance_milan_london_plausible() {
        let d = milan().distance_km(&london());
        // Real-world distance is ~958 km.
        assert!((900.0..1_020.0).contains(&d), "got {d}");
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = milan();
        let b = london();
        assert!((a.distance_km(&b) - b.distance_km(&a)).abs() < 1e-9);
        assert!(a.distance_km(&a) < 1e-9);
    }

    #[test]
    fn latitude_clamped_longitude_wrapped() {
        let p = GeoPoint::new(123.0, 270.0);
        assert_eq!(p.lat, 90.0);
        assert!((p.lon - (-90.0)).abs() < 1e-9);
        let q = GeoPoint::new(0.0, -200.0);
        assert!((q.lon - 160.0).abs() < 1e-9);
    }

    #[test]
    fn region_contains_its_center_and_nearby_points() {
        let r = Region::new("Milan", milan(), 25.0);
        assert!(r.contains(&milan()));
        assert!(r.contains(&GeoPoint::new(45.48, 9.2)));
        assert!(!r.contains(&london()));
    }

    #[test]
    fn negative_radius_is_clamped() {
        let r = Region::new("degenerate", milan(), -5.0);
        assert_eq!(r.radius_km, 0.0);
        assert!(r.contains(&milan()));
    }
}
