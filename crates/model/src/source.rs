//! Web 2.0 sources.

use crate::{GeoPoint, Timestamp};
use serde::{Deserialize, Serialize};

/// The kind of a Web 2.0 source.
///
/// The paper evaluates blogs and forums against Google (Section 4.1)
/// and composes microblog (Twitter) and review (TripAdvisor,
/// LonelyPlanet) sources in the mashup application (Section 6); wikis
/// appear in the related-work quality literature. Each kind has its
/// own *native* API shape, which the wrapper layer normalizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SourceKind {
    /// A single- or multi-author blog with posts and comment trails.
    Blog,
    /// A threaded discussion forum.
    Forum,
    /// A micro-blogging service (Twitter-like).
    Microblog,
    /// A review site (TripAdvisor-like): rated reviews per venue.
    ReviewSite,
    /// A collaboratively edited wiki.
    Wiki,
}

impl SourceKind {
    /// All kinds, in declaration order.
    pub const ALL: [SourceKind; 5] = [
        SourceKind::Blog,
        SourceKind::Forum,
        SourceKind::Microblog,
        SourceKind::ReviewSite,
        SourceKind::Wiki,
    ];

    /// Short lowercase label used in URLs and reports.
    pub fn label(self) -> &'static str {
        match self {
            SourceKind::Blog => "blog",
            SourceKind::Forum => "forum",
            SourceKind::Microblog => "microblog",
            SourceKind::ReviewSite => "reviews",
            SourceKind::Wiki => "wiki",
        }
    }

    /// Whether the paper's Section 4.1 study would include this kind
    /// (the Google comparison was restricted to blogs and forums).
    pub fn in_search_study(self) -> bool {
        matches!(self, SourceKind::Blog | SourceKind::Forum)
    }
}

impl std::fmt::Display for SourceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Static description of a Web 2.0 source.
///
/// Dynamic facts (its discussions, comments, traffic…) live in the
/// [`Corpus`](crate::Corpus) and in the analytics panels; this struct
/// only carries identity and provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Source {
    /// Dense identifier (index into the corpus arena).
    pub id: crate::SourceId,
    /// Source kind.
    pub kind: SourceKind,
    /// Site name, unique within the corpus.
    pub name: String,
    /// Synthetic URL, derived from kind and name.
    pub url: String,
    /// When the site was founded (simulated time).
    pub founded: Timestamp,
    /// Primary audience location, when known.
    pub home: Option<GeoPoint>,
}

impl Source {
    /// Builds the canonical synthetic URL for a source name/kind.
    pub fn url_for(kind: SourceKind, name: &str) -> String {
        let slug: String = name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '-'
                }
            })
            .collect();
        format!(
            "https://{}.example.net/{}",
            slug.trim_matches('-'),
            kind.label()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_have_distinct_labels() {
        let labels: std::collections::HashSet<_> =
            SourceKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), SourceKind::ALL.len());
    }

    #[test]
    fn search_study_covers_blogs_and_forums_only() {
        let included: Vec<_> = SourceKind::ALL
            .iter()
            .filter(|k| k.in_search_study())
            .collect();
        assert_eq!(included, vec![&SourceKind::Blog, &SourceKind::Forum]);
    }

    #[test]
    fn url_slugging_normalizes_names() {
        let url = Source::url_for(SourceKind::Blog, "Milan Diaries!");
        assert_eq!(url, "https://milan-diaries.example.net/blog");
    }

    #[test]
    fn url_slugging_handles_unicode_and_inner_dashes() {
        let url = Source::url_for(SourceKind::Forum, "città à go-go");
        assert!(url.starts_with("https://citt"));
        assert!(url.ends_with("/forum"));
        assert!(!url.contains(' '));
    }
}
