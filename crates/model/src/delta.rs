//! Incremental corpus change-sets.
//!
//! A [`Corpus`] is an immutable arena, but the sources it snapshots
//! are not: blogs publish, forums archive, crawlers observe. A
//! [`CorpusDelta`] is the unit of change that flows from an
//! incremental crawl into downstream consumers (the search index,
//! the engine's static signals) without rebuilding the world:
//!
//! * [`DocDelta`] — one new (or re-published) opening post, carrying
//!   the exact text a from-scratch index build would see;
//! * removals — opening posts that disappeared from a source;
//! * [`EngagementDelta`] — per-source discussion/comment count
//!   adjustments, which feed query-independent ranking signals.
//!
//! Deltas compose: [`CorpusDelta::merge`] folds the change-sets of
//! several crawl ticks into one, and the helpers
//! [`CorpusDelta::for_posts`] / [`CorpusDelta::for_removals`] derive
//! change-sets from a corpus so tests and benches can replay any
//! subset of a world incrementally.

use crate::{Corpus, ModelError, PostId, SourceId};
use serde::{Deserialize, Serialize};

/// One opening post entering the observed world.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DocDelta {
    /// Identifier of the post.
    pub post: PostId,
    /// Source hosting the post.
    pub source: SourceId,
    /// Indexable text: title, body and tags, space-joined — the same
    /// composition a full index build derives from the corpus.
    pub text: String,
}

/// Per-source engagement adjustment (may be negative on removals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngagementDelta {
    /// The source whose counters move.
    pub source: SourceId,
    /// Net change in hosted discussions.
    pub discussions: i64,
    /// Net change in comments across the source's discussions.
    pub comments: i64,
}

/// A change-set observed between two crawl ticks.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CorpusDelta {
    /// Newly observed opening posts, in observation order.
    pub added: Vec<DocDelta>,
    /// Opening posts that vanished from their source.
    pub removed: Vec<PostId>,
    /// Engagement adjustments, at most one entry per source.
    pub engagement: Vec<EngagementDelta>,
}

impl CorpusDelta {
    /// An empty change-set.
    pub fn new() -> CorpusDelta {
        CorpusDelta::default()
    }

    /// Whether the delta carries no changes at all.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.engagement.is_empty()
    }

    /// Number of document-level changes (adds + removals).
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// Records a newly observed opening post.
    pub fn add_doc(&mut self, post: PostId, source: SourceId, text: impl Into<String>) {
        self.added.push(DocDelta {
            post,
            source,
            text: text.into(),
        });
    }

    /// Records a vanished opening post.
    pub fn remove_doc(&mut self, post: PostId) {
        self.removed.push(post);
    }

    /// Accumulates an engagement adjustment for a source, merging
    /// with any prior adjustment for the same source.
    pub fn note_engagement(&mut self, source: SourceId, discussions: i64, comments: i64) {
        if let Some(e) = self.engagement.iter_mut().find(|e| e.source == source) {
            e.discussions += discussions;
            e.comments += comments;
        } else {
            self.engagement.push(EngagementDelta {
                source,
                discussions,
                comments,
            });
        }
    }

    /// Folds another delta into this one so that applying the merged
    /// delta equals applying the two in sequence. A removal in
    /// `other` cancels an earlier add of the same post (consumers
    /// replay removals before additions, so the stale add would
    /// otherwise resurrect the document); an add in `other` after an
    /// earlier removal needs no reconciliation — remove-then-add is
    /// already update semantics.
    pub fn merge(&mut self, other: CorpusDelta) {
        for doc in other.removed {
            self.added.retain(|d| d.post != doc);
            self.removed.push(doc);
        }
        self.added.extend(other.added);
        for e in other.engagement {
            self.note_engagement(e.source, e.discussions, e.comments);
        }
    }

    /// Folds a sequence of deltas into a single change-set —
    /// repeated [`CorpusDelta::merge`] — for consumers that want to
    /// ship or store a burst as one delta.
    ///
    /// Applying the coalesced delta is equivalent to applying the
    /// originals in order for *consistent* streams (every removal
    /// matches a present document). An inconsistent burst — say the
    /// same post removed twice — can differ at a consumer that
    /// clamps intermediate state (engagement counters floor at
    /// zero), because coalescing sums the adjustments before the
    /// clamp is applied. A consumer that needs unconditional
    /// equivalence with one-at-a-time replay should apply the burst
    /// in order instead (see `SearchEngine::apply_deltas` in
    /// `obs_search`).
    pub fn coalesce<'a>(deltas: impl IntoIterator<Item = &'a CorpusDelta>) -> CorpusDelta {
        let mut merged = CorpusDelta::new();
        for delta in deltas {
            merged.merge(delta.clone());
        }
        merged
    }

    /// Derives the change-set that adds the given opening posts,
    /// with the same indexable text (title + body + tags) a full
    /// build composes and one hosted discussion per post.
    pub fn for_posts(corpus: &Corpus, posts: &[PostId]) -> Result<CorpusDelta, ModelError> {
        let mut delta = CorpusDelta::new();
        for &pid in posts {
            let (source, text) = document_text(corpus, pid)?;
            delta.add_doc(pid, source, text);
            let comments = corpus
                .comments_of_discussion(corpus.post(pid)?.discussion)
                .len() as i64;
            delta.note_engagement(source, 1, comments);
        }
        Ok(delta)
    }

    /// Derives the change-set that removes the given opening posts,
    /// the exact inverse of [`CorpusDelta::for_posts`].
    pub fn for_removals(corpus: &Corpus, posts: &[PostId]) -> Result<CorpusDelta, ModelError> {
        let mut delta = CorpusDelta::new();
        for &pid in posts {
            let post = corpus.post(pid)?;
            let discussion = corpus.discussion(post.discussion)?;
            delta.remove_doc(pid);
            let comments = corpus.comments_of_discussion(discussion.id).len() as i64;
            delta.note_engagement(discussion.source, -1, -comments);
        }
        Ok(delta)
    }
}

/// A [`CorpusDelta`] stamped with its position in a delta stream.
///
/// Sequence numbers are assigned by whoever owns the stream (a delta
/// journal, a replication log) and are contiguous: record `seq`
/// follows record `seq - 1`. Stamping lives in the model crate so
/// every consumer — journals, replicas, replay tools — agrees on
/// what "the n-th change" means, and so the stamped form serializes
/// with the same serde derives as the delta itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SequencedDelta {
    /// 1-based position of this change-set in its stream.
    pub seq: u64,
    /// The change-set.
    pub delta: CorpusDelta,
}

impl SequencedDelta {
    /// Stamps a delta with its stream position.
    pub fn new(seq: u64, delta: CorpusDelta) -> SequencedDelta {
        SequencedDelta { seq, delta }
    }
}

/// The indexable text of an opening post: title, body and tags,
/// space-joined. Kept in one place so incremental adds reproduce a
/// from-scratch build bit-for-bit.
pub fn document_text(corpus: &Corpus, post: PostId) -> Result<(SourceId, String), ModelError> {
    let p = corpus.post(post)?;
    let discussion = corpus.discussion(p.discussion)?;
    let mut text = String::with_capacity(discussion.title.len() + p.body.len() + 16 * p.tags.len());
    text.push_str(&discussion.title);
    text.push(' ');
    text.push_str(&p.body);
    for tag in &p.tags {
        text.push(' ');
        text.push_str(tag.as_str());
    }
    Ok((discussion.source, text))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccountKind, CorpusBuilder, SourceKind, Tag, Timestamp};

    fn corpus() -> Corpus {
        let mut b = CorpusBuilder::new();
        let cat = b.add_category("attractions");
        let s = b.add_source(SourceKind::Blog, "one", Timestamp::EPOCH);
        let u = b.add_user("u", AccountKind::Person, Timestamp::EPOCH);
        let (d, _) = b.add_discussion_with_post(
            s,
            cat,
            "duomo views",
            u,
            Timestamp::from_days(1),
            "rooftop is amazing",
            vec![Tag::new("duomo")],
            None,
        );
        b.add_comment(d, u, "agreed", Timestamp::from_days(2));
        b.build()
    }

    #[test]
    fn document_text_matches_build_composition() {
        let c = corpus();
        let (source, text) = document_text(&c, PostId::new(0)).unwrap();
        assert_eq!(source, SourceId::new(0));
        assert_eq!(text, "duomo views rooftop is amazing duomo");
        assert!(document_text(&c, PostId::new(9)).is_err());
    }

    #[test]
    fn for_posts_and_for_removals_are_inverses() {
        let c = corpus();
        let added = CorpusDelta::for_posts(&c, &[PostId::new(0)]).unwrap();
        let removed = CorpusDelta::for_removals(&c, &[PostId::new(0)]).unwrap();
        assert_eq!(added.added.len(), 1);
        assert_eq!(
            added.engagement,
            vec![EngagementDelta {
                source: SourceId::new(0),
                discussions: 1,
                comments: 1,
            }]
        );
        assert_eq!(removed.removed, vec![PostId::new(0)]);
        assert_eq!(removed.engagement[0].discussions, -1);
        assert_eq!(removed.engagement[0].comments, -1);
    }

    #[test]
    fn engagement_merges_per_source() {
        let mut d = CorpusDelta::new();
        d.note_engagement(SourceId::new(3), 1, 2);
        d.note_engagement(SourceId::new(3), 1, 1);
        d.note_engagement(SourceId::new(4), 1, 0);
        assert_eq!(d.engagement.len(), 2);
        assert_eq!(d.engagement[0].discussions, 2);
        assert_eq!(d.engagement[0].comments, 3);
    }

    #[test]
    fn merge_concatenates_docs_and_folds_engagement() {
        let mut a = CorpusDelta::new();
        a.add_doc(PostId::new(0), SourceId::new(0), "x");
        a.note_engagement(SourceId::new(0), 1, 0);
        let mut b = CorpusDelta::new();
        b.remove_doc(PostId::new(1));
        b.note_engagement(SourceId::new(0), 0, 5);
        a.merge(b);
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert_eq!(a.engagement.len(), 1);
        assert_eq!(a.engagement[0].comments, 5);
    }

    #[test]
    fn later_removal_cancels_earlier_add() {
        // Tick 1 observes post P; tick 2 observes it vanished. The
        // merged delta must not resurrect P (removals replay before
        // additions when a delta is applied).
        let mut a = CorpusDelta::new();
        a.add_doc(PostId::new(5), SourceId::new(0), "transient");
        let mut b = CorpusDelta::new();
        b.remove_doc(PostId::new(5));
        a.merge(b);
        assert!(a.added.is_empty());
        assert_eq!(a.removed, vec![PostId::new(5)]);
    }

    #[test]
    fn coalesce_equals_sequential_merges() {
        let mut a = CorpusDelta::new();
        a.add_doc(PostId::new(0), SourceId::new(0), "first");
        a.note_engagement(SourceId::new(0), 1, 2);
        let mut b = CorpusDelta::new();
        b.remove_doc(PostId::new(0));
        b.note_engagement(SourceId::new(1), 1, 0);
        let mut c = CorpusDelta::new();
        c.add_doc(PostId::new(3), SourceId::new(1), "third");

        let mut sequential = a.clone();
        sequential.merge(b.clone());
        sequential.merge(c.clone());
        let coalesced = CorpusDelta::coalesce([&a, &b, &c]);
        assert_eq!(coalesced, sequential);

        assert!(CorpusDelta::coalesce([]).is_empty());
        assert_eq!(CorpusDelta::coalesce([&a]), a);
    }

    #[test]
    fn empty_delta_reports_empty() {
        assert!(CorpusDelta::new().is_empty());
        assert_eq!(CorpusDelta::new().len(), 0);
    }

    #[test]
    fn delta_json_roundtrips() {
        let c = corpus();
        let d = CorpusDelta::for_posts(&c, &[PostId::new(0)]).unwrap();
        let json = serde_json::to_string(&d).unwrap();
        let back: CorpusDelta = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn sequenced_delta_json_roundtrips() {
        let c = corpus();
        let d = CorpusDelta::for_posts(&c, &[PostId::new(0)]).unwrap();
        let stamped = SequencedDelta::new(7, d);
        let json = serde_json::to_string(&stamped).unwrap();
        let back: SequencedDelta = serde_json::from_str(&json).unwrap();
        assert_eq!(stamped, back);
        assert_eq!(back.seq, 7);
    }
}
