//! Simulated time.
//!
//! The reproduction runs against a synthetic Web, so wall-clock time is
//! replaced by a simulated epoch: [`Timestamp`] counts seconds since
//! the beginning of the simulation, and every "age", "per day" or
//! "freshness" quantity used by the paper's measures is derived from
//! it. A [`TimeRange`] bounds an observation window (the `t` component
//! of the paper's Domain of Interest), and [`Clock`] is a tiny mutable
//! cursor used by generators and crawlers.

use serde::{Deserialize, Serialize};

/// Number of simulated seconds in a simulated day.
pub const SECONDS_PER_DAY: u64 = 86_400;

/// A point in simulated time, in seconds since the simulation epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The simulation epoch (t = 0).
    pub const EPOCH: Timestamp = Timestamp(0);

    /// Builds a timestamp from whole simulated days.
    #[inline]
    pub const fn from_days(days: u64) -> Self {
        Timestamp(days * SECONDS_PER_DAY)
    }

    /// Builds a timestamp from simulated hours.
    #[inline]
    pub const fn from_hours(hours: u64) -> Self {
        Timestamp(hours * 3_600)
    }

    /// Raw seconds since the epoch.
    #[inline]
    pub const fn seconds(self) -> u64 {
        self.0
    }

    /// Whole days since the epoch (floor).
    #[inline]
    pub const fn days(self) -> u64 {
        self.0 / SECONDS_PER_DAY
    }

    /// Fractional days since the epoch.
    #[inline]
    pub fn days_f64(self) -> f64 {
        self.0 as f64 / SECONDS_PER_DAY as f64
    }

    /// Timestamp advanced by `d`.
    #[inline]
    pub const fn plus(self, d: Duration) -> Timestamp {
        Timestamp(self.0 + d.0)
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    #[inline]
    pub const fn since(self, earlier: Timestamp) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let days = self.days();
        let rem = self.0 % SECONDS_PER_DAY;
        write!(f, "d{}+{:02}:{:02}", days, rem / 3_600, (rem % 3_600) / 60)
    }
}

/// A span of simulated time, in seconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Duration(pub u64);

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Builds a duration from whole simulated days.
    #[inline]
    pub const fn from_days(days: u64) -> Self {
        Duration(days * SECONDS_PER_DAY)
    }

    /// Builds a duration from simulated hours.
    #[inline]
    pub const fn from_hours(hours: u64) -> Self {
        Duration(hours * 3_600)
    }

    /// Raw seconds.
    #[inline]
    pub const fn seconds(self) -> u64 {
        self.0
    }

    /// Whole days (floor).
    #[inline]
    pub const fn days(self) -> u64 {
        self.0 / SECONDS_PER_DAY
    }

    /// Fractional days.
    #[inline]
    pub fn days_f64(self) -> f64 {
        self.0 as f64 / SECONDS_PER_DAY as f64
    }
}

/// A half-open observation window `[start, end)` in simulated time.
///
/// This is the `t` component of the paper's Domain of Interest: every
/// domain-dependent measure is evaluated against contents that fall
/// inside the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeRange {
    /// Inclusive lower bound.
    pub start: Timestamp,
    /// Exclusive upper bound.
    pub end: Timestamp,
}

impl TimeRange {
    /// Builds a window, normalizing inverted bounds.
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        if end < start {
            TimeRange {
                start: end,
                end: start,
            }
        } else {
            TimeRange { start, end }
        }
    }

    /// A window covering the whole simulation.
    pub const ALL: TimeRange = TimeRange {
        start: Timestamp(0),
        end: Timestamp(u64::MAX),
    };

    /// Window of the `days` most recent days before `now`.
    pub fn last_days(now: Timestamp, days: u64) -> Self {
        let span = Duration::from_days(days);
        let start = Timestamp(now.0.saturating_sub(span.0));
        TimeRange { start, end: now }
    }

    /// Whether `t` lies inside the window.
    #[inline]
    pub fn contains(&self, t: Timestamp) -> bool {
        t >= self.start && t < self.end
    }

    /// Length of the window.
    #[inline]
    pub fn span(&self) -> Duration {
        self.end.since(self.start)
    }

    /// Length of the window in fractional days, never below `min_days`.
    ///
    /// Per-day rates divide by this; the floor avoids the degenerate
    /// "everything happened in one instant" blow-up for tiny windows.
    pub fn span_days_at_least(&self, min_days: f64) -> f64 {
        self.span().days_f64().max(min_days)
    }
}

/// A mutable time cursor used by generators and crawl drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Clock {
    now: Timestamp,
}

impl Clock {
    /// Starts a clock at the given instant.
    pub const fn starting_at(now: Timestamp) -> Self {
        Clock { now }
    }

    /// Current simulated instant.
    #[inline]
    pub const fn now(&self) -> Timestamp {
        self.now
    }

    /// Advances the clock and returns the new instant.
    pub fn advance(&mut self, d: Duration) -> Timestamp {
        self.now = self.now.plus(d);
        self.now
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::starting_at(Timestamp::EPOCH)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_day_conversions() {
        let t = Timestamp::from_days(3);
        assert_eq!(t.seconds(), 3 * SECONDS_PER_DAY);
        assert_eq!(t.days(), 3);
        assert!((t.days_f64() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn since_saturates() {
        let early = Timestamp::from_days(1);
        let late = Timestamp::from_days(2);
        assert_eq!(late.since(early), Duration::from_days(1));
        assert_eq!(early.since(late), Duration::ZERO);
    }

    #[test]
    fn range_contains_is_half_open() {
        let r = TimeRange::new(Timestamp::from_days(1), Timestamp::from_days(2));
        assert!(!r.contains(Timestamp::from_days(0)));
        assert!(r.contains(Timestamp::from_days(1)));
        assert!(r.contains(Timestamp(2 * SECONDS_PER_DAY - 1)));
        assert!(!r.contains(Timestamp::from_days(2)));
    }

    #[test]
    fn range_normalizes_inverted_bounds() {
        let r = TimeRange::new(Timestamp::from_days(5), Timestamp::from_days(2));
        assert_eq!(r.start, Timestamp::from_days(2));
        assert_eq!(r.end, Timestamp::from_days(5));
    }

    #[test]
    fn last_days_clamps_at_epoch() {
        let r = TimeRange::last_days(Timestamp::from_days(3), 10);
        assert_eq!(r.start, Timestamp::EPOCH);
        assert_eq!(r.end, Timestamp::from_days(3));
    }

    #[test]
    fn span_days_floor() {
        let r = TimeRange::new(Timestamp::EPOCH, Timestamp::from_hours(6));
        assert!((r.span_days_at_least(1.0) - 1.0).abs() < 1e-12);
        let r2 = TimeRange::new(Timestamp::EPOCH, Timestamp::from_days(4));
        assert!((r2.span_days_at_least(1.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn clock_advances() {
        let mut c = Clock::default();
        assert_eq!(c.now(), Timestamp::EPOCH);
        c.advance(Duration::from_hours(5));
        assert_eq!(c.now(), Timestamp::from_hours(5));
    }

    #[test]
    fn timestamp_display_is_human_readable() {
        let t = Timestamp(SECONDS_PER_DAY + 3_700);
        assert_eq!(t.to_string(), "d1+01:01");
    }
}
