//! Content categories and the Domain of Interest.
//!
//! Section 3 of the paper: *"our model assumes the identification of a
//! specific Domain of Interest (DI), which can be expressed as a set
//! of variables delimiting the context of the analysis:
//! `DI = {<c1, c2, …, cn>, t, <l1, l2, …, lm>}`"* — a set of content
//! categories, a time interval and a set of geographical locations.
//! Domain-dependent quality measures are evaluated against a DI;
//! domain-independent ones ignore it.

use crate::{CategoryId, GeoPoint, Region, TimeRange, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Interning table for content categories.
///
/// Categories are global to a corpus; a DI selects a subset of them.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CategoryBook {
    names: Vec<String>,
}

impl CategoryBook {
    /// Creates an empty book.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a category name (case-insensitive); returns its id.
    pub fn intern(&mut self, name: impl AsRef<str>) -> CategoryId {
        let name = name.as_ref().trim().to_ascii_lowercase();
        if let Some(pos) = self.names.iter().position(|n| *n == name) {
            return CategoryId::new(pos as u16);
        }
        assert!(
            self.names.len() < u16::MAX as usize,
            "category book overflow"
        );
        self.names.push(name);
        CategoryId::new((self.names.len() - 1) as u16)
    }

    /// Looks a category up by name without interning.
    pub fn lookup(&self, name: &str) -> Option<CategoryId> {
        let name = name.trim().to_ascii_lowercase();
        self.names
            .iter()
            .position(|n| *n == name)
            .map(|p| CategoryId::new(p as u16))
    }

    /// Category name for an id.
    pub fn name(&self, id: CategoryId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Number of interned categories.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the book is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (CategoryId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (CategoryId::new(i as u16), n.as_str()))
    }
}

/// The paper's Domain of Interest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainOfInterest {
    /// Human-readable name of the analysis ("Milan tourism").
    pub name: String,
    /// The relevant content categories `<c1 … cn>`.
    pub categories: BTreeSet<CategoryId>,
    /// The observation time interval `t`.
    pub window: TimeRange,
    /// The geographical locations `<l1 … lm>`.
    pub locations: Vec<Region>,
}

impl DomainOfInterest {
    /// Builds a DI.
    pub fn new(
        name: impl Into<String>,
        categories: impl IntoIterator<Item = CategoryId>,
        window: TimeRange,
        locations: Vec<Region>,
    ) -> Self {
        DomainOfInterest {
            name: name.into(),
            categories: categories.into_iter().collect(),
            window,
            locations,
        }
    }

    /// A DI with no category/location constraints over the full
    /// simulation window: every measure evaluated against it reduces
    /// to its domain-independent reading.
    pub fn unconstrained(name: impl Into<String>) -> Self {
        DomainOfInterest {
            name: name.into(),
            categories: BTreeSet::new(),
            window: TimeRange::ALL,
            locations: Vec::new(),
        }
    }

    /// Whether the DI constrains categories at all.
    pub fn has_category_filter(&self) -> bool {
        !self.categories.is_empty()
    }

    /// Whether `category` is relevant: inside the selected set, or
    /// unrestricted when the set is empty.
    pub fn covers_category(&self, category: CategoryId) -> bool {
        self.categories.is_empty() || self.categories.contains(&category)
    }

    /// Whether `t` falls inside the DI window.
    pub fn covers_time(&self, t: Timestamp) -> bool {
        self.window.contains(t)
    }

    /// Whether a geo-tag matches one of the DI locations (an absent
    /// location list matches everything; an absent geo-tag matches
    /// nothing when locations are constrained).
    pub fn covers_geo(&self, p: Option<&GeoPoint>) -> bool {
        if self.locations.is_empty() {
            return true;
        }
        match p {
            Some(p) => self.locations.iter().any(|r| r.contains(p)),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_case_insensitive_and_stable() {
        let mut book = CategoryBook::new();
        let a = book.intern("Tourism");
        let b = book.intern("tourism ");
        let c = book.intern("food");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(book.len(), 2);
        assert_eq!(book.name(a), Some("tourism"));
        assert_eq!(book.lookup("TOURISM"), Some(a));
        assert_eq!(book.lookup("missing"), None);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut book = CategoryBook::new();
        let ids: Vec<_> = ["a", "b", "c"].iter().map(|n| book.intern(n)).collect();
        let listed: Vec<_> = book.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, listed);
    }

    #[test]
    fn unconstrained_di_covers_everything() {
        let di = DomainOfInterest::unconstrained("all");
        assert!(di.covers_category(CategoryId::new(9)));
        assert!(di.covers_time(Timestamp::from_days(12_000)));
        assert!(di.covers_geo(None));
        assert!(!di.has_category_filter());
    }

    #[test]
    fn category_filter_restricts() {
        let mut book = CategoryBook::new();
        let tourism = book.intern("tourism");
        let food = book.intern("food");
        let di = DomainOfInterest::new("t", [tourism], TimeRange::ALL, vec![]);
        assert!(di.covers_category(tourism));
        assert!(!di.covers_category(food));
    }

    #[test]
    fn geo_filter_requires_a_matching_tag() {
        let milan = Region::new("Milan", GeoPoint::new(45.46, 9.19), 30.0);
        let di = DomainOfInterest::new("t", [], TimeRange::ALL, vec![milan]);
        assert!(di.covers_geo(Some(&GeoPoint::new(45.48, 9.2))));
        assert!(!di.covers_geo(Some(&GeoPoint::new(51.5, -0.12))));
        assert!(!di.covers_geo(None));
    }

    #[test]
    fn di_serializes_roundtrip() {
        let mut book = CategoryBook::new();
        let c = book.intern("tourism");
        let di = DomainOfInterest::new(
            "milan",
            [c],
            TimeRange::new(Timestamp::from_days(0), Timestamp::from_days(30)),
            vec![Region::new("Milan", GeoPoint::new(45.46, 9.19), 25.0)],
        );
        let json = serde_json::to_string(&di).unwrap();
        let back: DomainOfInterest = serde_json::from_str(&json).unwrap();
        assert_eq!(di, back);
    }
}
