//! The corpus: an immutable arena of sources, users, contents and
//! interactions with pre-computed secondary indexes.
//!
//! A [`Corpus`] is the "crawled Web" of the reproduction. Generators
//! (and tests) populate a [`CorpusBuilder`]; `build()` freezes the
//! arena and derives every adjacency the quality measures need:
//! discussions per source, comments per discussion/user, interactions
//! per actor/target, reply fan-in, per-discussion last activity, and
//! authored content per user.

use crate::{
    AccountKind, CategoryBook, CategoryId, Comment, CommentId, ContentRef, Discussion,
    DiscussionId, GeoPoint, Interaction, InteractionId, InteractionKind, ModelError, Post, PostId,
    Source, SourceId, SourceKind, Tag, Timestamp, UserId, UserProfile,
};
use serde::{Deserialize, Serialize};

/// Immutable world of Web 2.0 entities.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corpus {
    categories: CategoryBook,
    sources: Vec<Source>,
    users: Vec<UserProfile>,
    discussions: Vec<Discussion>,
    posts: Vec<Post>,
    comments: Vec<Comment>,
    interactions: Vec<Interaction>,

    // Secondary indexes, all addressed by the raw id of their key.
    discussions_by_source: Vec<Vec<DiscussionId>>,
    comments_by_discussion: Vec<Vec<CommentId>>,
    comments_by_author: Vec<Vec<CommentId>>,
    posts_by_author: Vec<Vec<PostId>>,
    discussions_opened_by: Vec<Vec<DiscussionId>>,
    interactions_by_actor: Vec<Vec<InteractionId>>,
    interactions_on_post: Vec<Vec<InteractionId>>,
    interactions_on_comment: Vec<Vec<InteractionId>>,
    replies_to_comment: Vec<Vec<CommentId>>,
    last_activity: Vec<Timestamp>,
}

impl Corpus {
    // ---- flat access -------------------------------------------------

    /// The category interning table.
    pub fn categories(&self) -> &CategoryBook {
        &self.categories
    }

    /// All sources, in id order.
    pub fn sources(&self) -> &[Source] {
        &self.sources
    }

    /// All users, in id order.
    pub fn users(&self) -> &[UserProfile] {
        &self.users
    }

    /// All discussions, in id order.
    pub fn discussions(&self) -> &[Discussion] {
        &self.discussions
    }

    /// All posts, in id order.
    pub fn posts(&self) -> &[Post] {
        &self.posts
    }

    /// All comments, in id order.
    pub fn comments(&self) -> &[Comment] {
        &self.comments
    }

    /// All interactions, in id order.
    pub fn interactions(&self) -> &[Interaction] {
        &self.interactions
    }

    // ---- fallible lookups --------------------------------------------

    /// Source by id.
    pub fn source(&self, id: SourceId) -> Result<&Source, ModelError> {
        self.sources
            .get(id.index())
            .ok_or(ModelError::UnknownSource(id))
    }

    /// User by id.
    pub fn user(&self, id: UserId) -> Result<&UserProfile, ModelError> {
        self.users
            .get(id.index())
            .ok_or(ModelError::UnknownUser(id))
    }

    /// Discussion by id.
    pub fn discussion(&self, id: DiscussionId) -> Result<&Discussion, ModelError> {
        self.discussions
            .get(id.index())
            .ok_or(ModelError::UnknownDiscussion(id))
    }

    /// Post by id.
    pub fn post(&self, id: PostId) -> Result<&Post, ModelError> {
        self.posts
            .get(id.index())
            .ok_or(ModelError::UnknownPost(id))
    }

    /// Comment by id.
    pub fn comment(&self, id: CommentId) -> Result<&Comment, ModelError> {
        self.comments
            .get(id.index())
            .ok_or(ModelError::UnknownComment(id))
    }

    // ---- adjacency ----------------------------------------------------

    /// Discussions hosted by a source (empty for unknown ids).
    pub fn discussions_of_source(&self, id: SourceId) -> &[DiscussionId] {
        self.discussions_by_source
            .get(id.index())
            .map_or(&[], Vec::as_slice)
    }

    /// Comments of a discussion, in publication order.
    pub fn comments_of_discussion(&self, id: DiscussionId) -> &[CommentId] {
        self.comments_by_discussion
            .get(id.index())
            .map_or(&[], Vec::as_slice)
    }

    /// Comments authored by a user.
    pub fn comments_of_user(&self, id: UserId) -> &[CommentId] {
        self.comments_by_author
            .get(id.index())
            .map_or(&[], Vec::as_slice)
    }

    /// Opening posts authored by a user.
    pub fn posts_of_user(&self, id: UserId) -> &[PostId] {
        self.posts_by_author
            .get(id.index())
            .map_or(&[], Vec::as_slice)
    }

    /// Discussions opened by a user.
    pub fn discussions_opened_by(&self, id: UserId) -> &[DiscussionId] {
        self.discussions_opened_by
            .get(id.index())
            .map_or(&[], Vec::as_slice)
    }

    /// Interactions performed by a user.
    pub fn interactions_of_actor(&self, id: UserId) -> &[InteractionId] {
        self.interactions_by_actor
            .get(id.index())
            .map_or(&[], Vec::as_slice)
    }

    /// Interactions targeting a piece of content.
    pub fn interactions_on(&self, target: ContentRef) -> &[InteractionId] {
        match target {
            ContentRef::Post(p) => self
                .interactions_on_post
                .get(p.index())
                .map_or(&[], Vec::as_slice),
            ContentRef::Comment(c) => self
                .interactions_on_comment
                .get(c.index())
                .map_or(&[], Vec::as_slice),
        }
    }

    /// Direct replies to a comment.
    pub fn replies_to(&self, id: CommentId) -> &[CommentId] {
        self.replies_to_comment
            .get(id.index())
            .map_or(&[], Vec::as_slice)
    }

    /// Instant of the last activity (open, comment or interaction)
    /// observed in a discussion.
    pub fn last_activity(&self, id: DiscussionId) -> Timestamp {
        self.last_activity
            .get(id.index())
            .copied()
            .unwrap_or(Timestamp::EPOCH)
    }

    /// Author of a piece of content.
    pub fn author_of(&self, target: ContentRef) -> Result<UserId, ModelError> {
        match target {
            ContentRef::Post(p) => self.post(p).map(|p| p.author),
            ContentRef::Comment(c) => self.comment(c).map(|c| c.author),
        }
    }

    /// Discussion a piece of content belongs to.
    pub fn discussion_of(&self, target: ContentRef) -> Result<DiscussionId, ModelError> {
        match target {
            ContentRef::Post(p) => self.post(p).map(|p| p.discussion),
            ContentRef::Comment(c) => self.comment(c).map(|c| c.discussion),
        }
    }

    /// Source hosting a piece of content.
    pub fn source_of(&self, target: ContentRef) -> Result<SourceId, ModelError> {
        let d = self.discussion_of(target)?;
        self.discussion(d).map(|d| d.source)
    }

    /// Interactions *received* by a user: interactions whose target
    /// was authored by the user. Allocates the id list.
    pub fn interactions_received_by(&self, user: UserId) -> Vec<InteractionId> {
        let mut out = Vec::new();
        for &p in self.posts_of_user(user) {
            out.extend_from_slice(self.interactions_on(ContentRef::Post(p)));
        }
        for &c in self.comments_of_user(user) {
            out.extend_from_slice(self.interactions_on(ContentRef::Comment(c)));
        }
        out.sort_unstable();
        out
    }

    /// Counts interactions received by `user`, restricted to `kind`.
    pub fn received_count_of_kind(&self, user: UserId, kind: InteractionKind) -> usize {
        self.interactions_received_by(user)
            .iter()
            .filter(|&&i| self.interactions[i.index()].kind == kind)
            .count()
    }

    // ---- persistence ----------------------------------------------------

    /// Serializes the corpus (including its secondary indexes) to
    /// JSON. Worlds are bit-reproducible from seeds, but persisting a
    /// crawled corpus lets downstream tools share snapshots without
    /// re-running generation.
    pub fn to_json(&self) -> String {
        // lint:allow(panic): plain structs with string keys only; serde_json cannot fail here
        serde_json::to_string(self).expect("corpus is always serializable")
    }

    /// Restores a corpus from its JSON snapshot.
    pub fn from_json(json: &str) -> Result<Corpus, serde_json::Error> {
        serde_json::from_str(json)
    }

    // ---- summary -------------------------------------------------------

    /// Entity counts, handy for logs and sanity checks.
    pub fn stats(&self) -> CorpusStats {
        let mut sources_by_kind = [0usize; SourceKind::ALL.len()];
        for s in &self.sources {
            // lint:allow(panic): SourceKind::ALL lists every variant by construction
            let pos = SourceKind::ALL.iter().position(|k| *k == s.kind).unwrap();
            sources_by_kind[pos] += 1;
        }
        CorpusStats {
            sources: self.sources.len(),
            users: self.users.len(),
            discussions: self.discussions.len(),
            posts: self.posts.len(),
            comments: self.comments.len(),
            interactions: self.interactions.len(),
            categories: self.categories.len(),
            sources_by_kind,
        }
    }
}

/// Entity counts for a corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusStats {
    /// Number of sources.
    pub sources: usize,
    /// Number of user accounts.
    pub users: usize,
    /// Number of discussions.
    pub discussions: usize,
    /// Number of opening posts.
    pub posts: usize,
    /// Number of comments.
    pub comments: usize,
    /// Number of interactions.
    pub interactions: usize,
    /// Number of content categories.
    pub categories: usize,
    /// Sources per kind, in [`SourceKind::ALL`] order.
    pub sources_by_kind: [usize; SourceKind::ALL.len()],
}

impl std::fmt::Display for CorpusStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} sources, {} users, {} discussions, {} comments, {} interactions, {} categories",
            self.sources,
            self.users,
            self.discussions,
            self.comments,
            self.interactions,
            self.categories
        )
    }
}

/// Mutable accumulator for building a [`Corpus`].
///
/// Entity-creating methods hand back dense ids. Methods that take
/// foreign ids panic when handed an id this builder never produced;
/// generators own both sides, so a bad id is a programming error, not
/// an input error.
#[derive(Debug, Default, Clone)]
pub struct CorpusBuilder {
    categories: CategoryBook,
    sources: Vec<Source>,
    users: Vec<UserProfile>,
    discussions: Vec<Discussion>,
    posts: Vec<Post>,
    comments: Vec<Comment>,
    interactions: Vec<Interaction>,
}

impl CorpusBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a content category.
    pub fn add_category(&mut self, name: impl AsRef<str>) -> CategoryId {
        self.categories.intern(name)
    }

    /// Registers a source.
    pub fn add_source(
        &mut self,
        kind: SourceKind,
        name: impl Into<String>,
        founded: Timestamp,
    ) -> SourceId {
        let name = name.into();
        let id = SourceId::new(self.sources.len() as u32);
        let url = Source::url_for(kind, &name);
        self.sources.push(Source {
            id,
            kind,
            name,
            url,
            founded,
            home: None,
        });
        id
    }

    /// Sets a source's home location.
    pub fn set_source_home(&mut self, id: SourceId, home: GeoPoint) {
        self.sources[id.index()].home = Some(home);
    }

    /// Registers a user account.
    pub fn add_user(
        &mut self,
        handle: impl Into<String>,
        kind: AccountKind,
        registered: Timestamp,
    ) -> UserId {
        let id = UserId::new(self.users.len() as u32);
        self.users.push(UserProfile {
            id,
            handle: handle.into(),
            kind,
            registered,
            home: None,
            followers: 0,
        });
        id
    }

    /// Sets a user's home location.
    pub fn set_user_home(&mut self, id: UserId, home: GeoPoint) {
        self.users[id.index()].home = Some(home);
    }

    /// Sets a user's declared follower count.
    pub fn set_followers(&mut self, id: UserId, followers: u32) {
        self.users[id.index()].followers = followers;
    }

    /// Opens a discussion whose root post body is the title, untagged.
    pub fn add_discussion(
        &mut self,
        source: SourceId,
        category: CategoryId,
        title: impl Into<String>,
        opened_by: UserId,
        at: Timestamp,
    ) -> DiscussionId {
        let title = title.into();
        let body = title.clone();
        self.add_discussion_with_post(
            source,
            category,
            title,
            opened_by,
            at,
            body,
            Vec::new(),
            None,
        )
        .0
    }

    /// Opens a discussion with an explicit root post.
    #[allow(clippy::too_many_arguments)]
    pub fn add_discussion_with_post(
        &mut self,
        source: SourceId,
        category: CategoryId,
        title: impl Into<String>,
        opened_by: UserId,
        at: Timestamp,
        body: impl Into<String>,
        tags: Vec<Tag>,
        geo: Option<GeoPoint>,
    ) -> (DiscussionId, PostId) {
        assert!(source.index() < self.sources.len(), "unknown {source}");
        assert!(opened_by.index() < self.users.len(), "unknown {opened_by}");
        let did = DiscussionId::new(self.discussions.len() as u32);
        let pid = PostId::new(self.posts.len() as u32);
        self.posts.push(Post {
            id: pid,
            discussion: did,
            author: opened_by,
            published: at,
            body: body.into(),
            tags,
            geo,
        });
        self.discussions.push(Discussion {
            id: did,
            source,
            category,
            title: title.into(),
            opened_by,
            opened_at: at,
            closed: false,
            root_post: pid,
        });
        (did, pid)
    }

    /// Marks a discussion closed.
    pub fn close_discussion(&mut self, id: DiscussionId) {
        self.discussions[id.index()].closed = true;
    }

    /// Adds a comment replying to the opening post.
    pub fn add_comment(
        &mut self,
        discussion: DiscussionId,
        author: UserId,
        body: impl Into<String>,
        at: Timestamp,
    ) -> CommentId {
        self.add_comment_inner(discussion, author, body.into(), at, None, None)
            // lint:allow(panic): the only failure mode is a reply_to parent; this passes None
            .expect("root-level comments cannot fail")
    }

    /// Adds a comment with an optional geo-tag.
    pub fn add_comment_geo(
        &mut self,
        discussion: DiscussionId,
        author: UserId,
        body: impl Into<String>,
        at: Timestamp,
        geo: Option<GeoPoint>,
    ) -> CommentId {
        self.add_comment_inner(discussion, author, body.into(), at, None, geo)
            // lint:allow(panic): the only failure mode is a reply_to parent; this passes None
            .expect("root-level comments cannot fail")
    }

    /// Adds a reply to an existing comment. Fails when the parent
    /// belongs to a different discussion.
    pub fn add_reply(
        &mut self,
        discussion: DiscussionId,
        author: UserId,
        body: impl Into<String>,
        at: Timestamp,
        reply_to: CommentId,
    ) -> Result<CommentId, ModelError> {
        self.add_comment_inner(discussion, author, body.into(), at, Some(reply_to), None)
    }

    fn add_comment_inner(
        &mut self,
        discussion: DiscussionId,
        author: UserId,
        body: String,
        at: Timestamp,
        reply_to: Option<CommentId>,
        geo: Option<GeoPoint>,
    ) -> Result<CommentId, ModelError> {
        assert!(
            discussion.index() < self.discussions.len(),
            "unknown {discussion}"
        );
        assert!(author.index() < self.users.len(), "unknown {author}");
        let id = CommentId::new(self.comments.len() as u32);
        if let Some(parent) = reply_to {
            let parent_comment = self
                .comments
                .get(parent.index())
                .ok_or(ModelError::UnknownComment(parent))?;
            if parent_comment.discussion != discussion {
                return Err(ModelError::CrossDiscussionReply {
                    comment: id,
                    claimed_parent: parent,
                });
            }
        }
        self.comments.push(Comment {
            id,
            discussion,
            author,
            published: at,
            body,
            reply_to,
            geo,
        });
        Ok(id)
    }

    /// Records a social interaction.
    pub fn add_interaction(
        &mut self,
        actor: UserId,
        target: ContentRef,
        kind: InteractionKind,
        at: Timestamp,
    ) -> InteractionId {
        assert!(actor.index() < self.users.len(), "unknown {actor}");
        match target {
            ContentRef::Post(p) => assert!(p.index() < self.posts.len(), "unknown {p}"),
            ContentRef::Comment(c) => assert!(c.index() < self.comments.len(), "unknown {c}"),
        }
        let id = InteractionId::new(self.interactions.len() as u32);
        self.interactions.push(Interaction {
            id,
            actor,
            target,
            kind,
            at,
        });
        id
    }

    /// Number of sources registered so far.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// Founding time of an already-registered source.
    pub fn source_founded(&self, id: SourceId) -> Timestamp {
        self.sources[id.index()].founded
    }

    /// Kind of an already-registered source.
    pub fn source_kind(&self, id: SourceId) -> SourceKind {
        self.sources[id.index()].kind
    }

    /// Number of users registered so far.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Freezes the builder into an indexed corpus.
    pub fn build(self) -> Corpus {
        let CorpusBuilder {
            categories,
            sources,
            users,
            discussions,
            posts,
            comments,
            interactions,
        } = self;

        let mut discussions_by_source = vec![Vec::new(); sources.len()];
        let mut discussions_opened_by = vec![Vec::new(); users.len()];
        let mut last_activity = vec![Timestamp::EPOCH; discussions.len()];
        for d in &discussions {
            discussions_by_source[d.source.index()].push(d.id);
            discussions_opened_by[d.opened_by.index()].push(d.id);
            last_activity[d.id.index()] = d.opened_at;
        }

        let mut posts_by_author = vec![Vec::new(); users.len()];
        for p in &posts {
            posts_by_author[p.author.index()].push(p.id);
        }

        let mut comments_by_discussion = vec![Vec::new(); discussions.len()];
        let mut comments_by_author = vec![Vec::new(); users.len()];
        let mut replies_to_comment = vec![Vec::new(); comments.len()];
        for c in &comments {
            comments_by_discussion[c.discussion.index()].push(c.id);
            comments_by_author[c.author.index()].push(c.id);
            if let Some(parent) = c.reply_to {
                replies_to_comment[parent.index()].push(c.id);
            }
            let slot = &mut last_activity[c.discussion.index()];
            if c.published > *slot {
                *slot = c.published;
            }
        }

        let mut interactions_by_actor = vec![Vec::new(); users.len()];
        let mut interactions_on_post = vec![Vec::new(); posts.len()];
        let mut interactions_on_comment = vec![Vec::new(); comments.len()];
        for i in &interactions {
            interactions_by_actor[i.actor.index()].push(i.id);
            let discussion = match i.target {
                ContentRef::Post(p) => {
                    interactions_on_post[p.index()].push(i.id);
                    posts[p.index()].discussion
                }
                ContentRef::Comment(c) => {
                    interactions_on_comment[c.index()].push(i.id);
                    comments[c.index()].discussion
                }
            };
            let slot = &mut last_activity[discussion.index()];
            if i.at > *slot {
                *slot = i.at;
            }
        }

        Corpus {
            categories,
            sources,
            users,
            discussions,
            posts,
            comments,
            interactions,
            discussions_by_source,
            comments_by_discussion,
            comments_by_author,
            posts_by_author,
            discussions_opened_by,
            interactions_by_actor,
            interactions_on_post,
            interactions_on_comment,
            replies_to_comment,
            last_activity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_world() -> Corpus {
        let mut b = CorpusBuilder::new();
        let tourism = b.add_category("tourism");
        let food = b.add_category("food");
        let blog = b.add_source(SourceKind::Blog, "milan-diaries", Timestamp::from_days(0));
        let forum = b.add_source(SourceKind::Forum, "ask-milano", Timestamp::from_days(2));
        let ada = b.add_user("ada", AccountKind::Person, Timestamp::from_days(0));
        let bbc = b.add_user("bbc", AccountKind::News, Timestamp::from_days(0));
        let d1 = b.add_discussion(blog, tourism, "duomo tips", ada, Timestamp::from_days(3));
        let d2 = b.add_discussion(forum, food, "best risotto", bbc, Timestamp::from_days(4));
        let c1 = b.add_comment(d1, bbc, "go early", Timestamp::from_days(5));
        let _r1 = b
            .add_reply(d1, ada, "thanks!", Timestamp::from_days(6), c1)
            .unwrap();
        let c2 = b.add_comment(d2, ada, "try da Vittorio", Timestamp::from_days(7));
        let root1 = b.discussions[d1.index()].root_post;
        b.add_interaction(
            bbc,
            ContentRef::Post(root1),
            InteractionKind::Like,
            Timestamp::from_days(8),
        );
        b.add_interaction(
            ada,
            ContentRef::Comment(c2),
            InteractionKind::Feedback,
            Timestamp::from_days(9),
        );
        b.build()
    }

    #[test]
    fn stats_count_everything() {
        let c = small_world();
        let s = c.stats();
        assert_eq!(s.sources, 2);
        assert_eq!(s.users, 2);
        assert_eq!(s.discussions, 2);
        assert_eq!(s.posts, 2);
        assert_eq!(s.comments, 3);
        assert_eq!(s.interactions, 2);
        assert_eq!(s.categories, 2);
        assert_eq!(s.sources_by_kind[0], 1); // blog
        assert_eq!(s.sources_by_kind[1], 1); // forum
    }

    #[test]
    fn adjacency_indexes_are_consistent() {
        let c = small_world();
        let blog = SourceId::new(0);
        let d1 = DiscussionId::new(0);
        assert_eq!(c.discussions_of_source(blog), &[d1]);
        assert_eq!(c.comments_of_discussion(d1).len(), 2);
        let ada = UserId::new(0);
        assert_eq!(c.discussions_opened_by(ada), &[d1]);
        assert_eq!(c.comments_of_user(ada).len(), 2);
        assert_eq!(c.posts_of_user(ada).len(), 1);
    }

    #[test]
    fn replies_index_links_parent_to_child() {
        let c = small_world();
        let c1 = CommentId::new(0);
        let replies = c.replies_to(c1);
        assert_eq!(replies.len(), 1);
        assert_eq!(c.comment(replies[0]).unwrap().reply_to, Some(c1));
    }

    #[test]
    fn last_activity_reflects_interactions() {
        let c = small_world();
        assert_eq!(
            c.last_activity(DiscussionId::new(0)),
            Timestamp::from_days(8)
        );
        assert_eq!(
            c.last_activity(DiscussionId::new(1)),
            Timestamp::from_days(9)
        );
    }

    #[test]
    fn received_interactions_follow_authorship() {
        let c = small_world();
        let ada = UserId::new(0);
        let bbc = UserId::new(1);
        // ada authored root1 (liked by bbc) and c2 (feedback by ada).
        assert_eq!(c.interactions_received_by(ada).len(), 2);
        assert_eq!(c.received_count_of_kind(ada, InteractionKind::Like), 1);
        assert_eq!(c.received_count_of_kind(ada, InteractionKind::Feedback), 1);
        assert_eq!(c.interactions_received_by(bbc).len(), 0);
    }

    #[test]
    fn cross_discussion_reply_is_rejected() {
        let mut b = CorpusBuilder::new();
        let cat = b.add_category("c");
        let s = b.add_source(SourceKind::Forum, "f", Timestamp::EPOCH);
        let u = b.add_user("u", AccountKind::Person, Timestamp::EPOCH);
        let d1 = b.add_discussion(s, cat, "one", u, Timestamp::from_days(1));
        let d2 = b.add_discussion(s, cat, "two", u, Timestamp::from_days(1));
        let c1 = b.add_comment(d1, u, "hello", Timestamp::from_days(2));
        let err = b
            .add_reply(d2, u, "wrong thread", Timestamp::from_days(3), c1)
            .unwrap_err();
        assert!(matches!(err, ModelError::CrossDiscussionReply { .. }));
    }

    #[test]
    fn unknown_lookups_return_errors() {
        let c = small_world();
        assert!(c.source(SourceId::new(99)).is_err());
        assert!(c.user(UserId::new(99)).is_err());
        assert!(c.discussion(DiscussionId::new(99)).is_err());
        assert!(c.post(PostId::new(99)).is_err());
        assert!(c.comment(CommentId::new(99)).is_err());
    }

    #[test]
    fn source_of_resolves_through_discussion() {
        let c = small_world();
        let root = c.discussion(DiscussionId::new(0)).unwrap().root_post;
        assert_eq!(
            c.source_of(ContentRef::Post(root)).unwrap(),
            SourceId::new(0)
        );
        let first_comment = c.comments_of_discussion(DiscussionId::new(0))[0];
        assert_eq!(
            c.source_of(ContentRef::Comment(first_comment)).unwrap(),
            SourceId::new(0)
        );
    }

    #[test]
    fn corpus_json_roundtrip_preserves_everything() {
        let original = small_world();
        let json = original.to_json();
        let restored = Corpus::from_json(&json).unwrap();
        assert_eq!(original.stats(), restored.stats());
        // Secondary indexes survive: adjacency answers agree.
        let d1 = DiscussionId::new(0);
        assert_eq!(
            original.comments_of_discussion(d1),
            restored.comments_of_discussion(d1)
        );
        assert_eq!(original.last_activity(d1), restored.last_activity(d1));
        let ada = UserId::new(0);
        assert_eq!(
            original.interactions_received_by(ada),
            restored.interactions_received_by(ada)
        );
        assert_eq!(
            original.categories().name(CategoryId::new(0)),
            restored.categories().name(CategoryId::new(0))
        );
    }

    #[test]
    fn corpus_from_garbage_json_errors() {
        assert!(Corpus::from_json("{\"nope\": 1}").is_err());
        assert!(Corpus::from_json("not json").is_err());
    }

    #[test]
    fn closed_flag_is_settable() {
        let mut b = CorpusBuilder::new();
        let cat = b.add_category("c");
        let s = b.add_source(SourceKind::Blog, "b", Timestamp::EPOCH);
        let u = b.add_user("u", AccountKind::Person, Timestamp::EPOCH);
        let d = b.add_discussion(s, cat, "t", u, Timestamp::from_days(1));
        b.close_discussion(d);
        let c = b.build();
        assert!(c.discussion(d).unwrap().closed);
    }
}
