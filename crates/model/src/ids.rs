//! Dense, typed identifiers for every entity in the corpus.
//!
//! Identifiers are plain indexes into the [`Corpus`](crate::Corpus)
//! arenas. The newtype wrappers prevent cross-entity mixups at compile
//! time while staying `Copy` and hash-friendly.

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident($repr:ty)) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub $repr);

        impl $name {
            /// Wraps a raw index.
            #[inline]
            pub const fn new(raw: $repr) -> Self {
                Self(raw)
            }

            /// Returns the raw index.
            #[inline]
            pub const fn raw(self) -> $repr {
                self.0
            }

            /// Returns the index as `usize` for arena addressing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$repr> for $name {
            #[inline]
            fn from(raw: $repr) -> Self {
                Self(raw)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "#{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a Web 2.0 source (a site: blog, forum, …).
    SourceId(u32)
);
impl SourceId {
    /// A well-mixed 64-bit shard key for this source (Fibonacci
    /// hashing: the raw id multiplied by 2⁶⁴/φ). Consecutive ids —
    /// the common allocation pattern — land far apart, so taking the
    /// key modulo a shard count spreads sources evenly.
    #[inline]
    pub const fn shard_key(self) -> u64 {
        (self.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// The shard (of `shards` total) this source is routed to. The
    /// mapping is a pure function of the id, so every document and
    /// engagement adjustment of a source always lands in the same
    /// shard, on every run.
    ///
    /// ```
    /// use obs_model::SourceId;
    ///
    /// let shard = SourceId::new(7).shard(4);
    /// assert!(shard < 4);
    /// // Stable: the same id always routes identically.
    /// assert_eq!(shard, SourceId::new(7).shard(4));
    /// // One shard means no choice at all.
    /// assert_eq!(SourceId::new(7).shard(1), 0);
    /// ```
    ///
    /// # Panics
    /// If `shards` is zero.
    #[inline]
    pub const fn shard(self, shards: usize) -> usize {
        // The high key bits are the best-mixed; fold them in so
        // small shard counts don't only see the multiplier's low
        // bits.
        ((self.shard_key() >> 32) as usize) % shards
    }
}

id_type!(
    /// Identifier of a contributor account.
    UserId(u32)
);
id_type!(
    /// Identifier of a content category (topic).
    CategoryId(u16)
);
id_type!(
    /// Identifier of a discussion thread within a source.
    DiscussionId(u32)
);
id_type!(
    /// Identifier of a post (the opening content of a discussion).
    PostId(u32)
);
id_type!(
    /// Identifier of a comment attached to a discussion.
    CommentId(u32)
);
id_type!(
    /// Identifier of a social interaction event.
    InteractionId(u32)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_raw_values() {
        let s = SourceId::new(7);
        assert_eq!(s.raw(), 7);
        assert_eq!(s.index(), 7);
        assert_eq!(SourceId::from(7), s);
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(DiscussionId::new(1) < DiscussionId::new(2));
        assert!(CommentId::new(10) > CommentId::new(9));
    }

    #[test]
    fn ids_display_with_type_name() {
        assert_eq!(UserId::new(3).to_string(), "UserId#3");
        assert_eq!(CategoryId::new(0).to_string(), "CategoryId#0");
    }

    #[test]
    fn shard_routing_is_stable_and_spreads_sources() {
        // Stability: pure function of the id.
        for raw in 0..64u32 {
            let s = SourceId::new(raw);
            assert_eq!(s.shard(8), s.shard(8));
            assert!(s.shard(8) < 8);
            assert_eq!(s.shard(1), 0);
        }
        // Spread: 1000 consecutive ids leave no shard empty and no
        // shard hoards more than half of them.
        let mut counts = [0usize; 8];
        for raw in 0..1000u32 {
            counts[SourceId::new(raw).shard(8)] += 1;
        }
        for (shard, &n) in counts.iter().enumerate() {
            assert!(n > 0, "shard {shard} got no sources");
            assert!(n < 500, "shard {shard} hoards {n} of 1000 sources");
        }
    }

    #[test]
    fn ids_serialize_transparently() {
        let json = serde_json::to_string(&PostId::new(42)).unwrap();
        assert_eq!(json, "42");
        let back: PostId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, PostId::new(42));
    }
}
