//! Contributor accounts.

use crate::{GeoPoint, Timestamp};
use serde::{Deserialize, Serialize};

/// The kind of entity behind an account.
///
/// Section 4.2 of the paper manually annotates the Twitaholic dataset
/// with exactly these three classes — a brand/company (e.g. the
/// Coldplay), a news source (e.g. BBC), or a person (e.g. Scott
/// Mills) — and shows that absolute interaction volumes differ by
/// class while relative volumes do not (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AccountKind {
    /// A private individual.
    Person,
    /// A brand or company account.
    Brand,
    /// A news outlet.
    News,
}

impl AccountKind {
    /// All kinds, in declaration order.
    pub const ALL: [AccountKind; 3] = [AccountKind::Person, AccountKind::Brand, AccountKind::News];

    /// Short label used in reports ("people", "brand", "news" — the
    /// paper's Table 4 wording).
    pub fn label(self) -> &'static str {
        match self {
            AccountKind::Person => "people",
            AccountKind::Brand => "brand",
            AccountKind::News => "news",
        }
    }
}

impl std::fmt::Display for AccountKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A contributor account.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    /// Dense identifier (index into the corpus arena).
    pub id: crate::UserId,
    /// Handle, unique within the corpus.
    pub handle: String,
    /// What kind of entity operates the account.
    pub kind: AccountKind,
    /// Registration instant; "age of the user" in Table 2 is measured
    /// from here.
    pub registered: Timestamp,
    /// Self-declared home location, when known.
    pub home: Option<GeoPoint>,
    /// Declared follower count (a raw popularity signal; the paper's
    /// "million follower fallacy" reference warns it is *not* an
    /// influence measure by itself).
    pub followers: u32,
}

impl UserProfile {
    /// Age of the account at `now`.
    pub fn age_at(&self, now: Timestamp) -> crate::Duration {
        now.since(self.registered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Duration, UserId};

    fn sample() -> UserProfile {
        UserProfile {
            id: UserId::new(0),
            handle: "ada".into(),
            kind: AccountKind::Person,
            registered: Timestamp::from_days(10),
            home: None,
            followers: 120,
        }
    }

    #[test]
    fn age_counts_from_registration() {
        let u = sample();
        assert_eq!(u.age_at(Timestamp::from_days(15)), Duration::from_days(5));
    }

    #[test]
    fn age_saturates_before_registration() {
        let u = sample();
        assert_eq!(u.age_at(Timestamp::from_days(5)), Duration::ZERO);
    }

    #[test]
    fn labels_match_paper_wording() {
        assert_eq!(AccountKind::Person.label(), "people");
        assert_eq!(AccountKind::Brand.label(), "brand");
        assert_eq!(AccountKind::News.label(), "news");
    }
}
