//! User-created contents: discussions, posts, comments, tags.
//!
//! The unit of conversation is the [`Discussion`]: a thread opened by
//! a [`Post`] inside a source, classified under one content category,
//! and accumulating [`Comment`]s over time. Tags annotate posts; the
//! paper's interpretability measure counts distinct tags per post.

use crate::{CategoryId, CommentId, DiscussionId, GeoPoint, PostId, SourceId, Timestamp, UserId};
use serde::{Deserialize, Serialize};

/// A free-form tag attached to a post.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Tag(pub String);

impl Tag {
    /// Builds a tag, lowercasing and trimming the label.
    pub fn new(label: impl AsRef<str>) -> Self {
        Tag(label.as_ref().trim().to_ascii_lowercase())
    }

    /// Tag text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for Tag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A discussion thread: the paper's unit for "open discussions",
/// thread age, and comments-per-discussion measures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Discussion {
    /// Dense identifier.
    pub id: DiscussionId,
    /// Hosting source.
    pub source: SourceId,
    /// Content category the thread is classified under.
    pub category: CategoryId,
    /// Thread title.
    pub title: String,
    /// Who opened the thread.
    pub opened_by: UserId,
    /// When the thread was opened.
    pub opened_at: Timestamp,
    /// Whether the thread has been closed by moderators. Open
    /// discussions are the ones the paper's completeness and accuracy
    /// measures count.
    pub closed: bool,
    /// The opening post.
    pub root_post: PostId,
}

/// The opening content of a discussion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Post {
    /// Dense identifier.
    pub id: PostId,
    /// Discussion this post opens.
    pub discussion: DiscussionId,
    /// Author.
    pub author: UserId,
    /// Publication instant.
    pub published: Timestamp,
    /// Body text.
    pub body: String,
    /// Tags attached by the author.
    pub tags: Vec<Tag>,
    /// Geo-tag, when the author shared a location (Figure 1 plots
    /// these on the synchronized map viewer).
    pub geo: Option<GeoPoint>,
}

impl Post {
    /// Number of *distinct* tags (duplicate labels collapse), the raw
    /// ingredient of the interpretability measure.
    pub fn distinct_tag_count(&self) -> usize {
        let mut tags: Vec<&str> = self.tags.iter().map(Tag::as_str).collect();
        tags.sort_unstable();
        tags.dedup();
        tags.len()
    }
}

/// A comment inside a discussion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comment {
    /// Dense identifier.
    pub id: CommentId,
    /// Discussion the comment belongs to.
    pub discussion: DiscussionId,
    /// Author.
    pub author: UserId,
    /// Publication instant.
    pub published: Timestamp,
    /// Body text.
    pub body: String,
    /// Parent comment when this is a reply to another comment; `None`
    /// when it replies to the opening post. Replies received per
    /// comment feed the authority measures of Table 2.
    pub reply_to: Option<CommentId>,
    /// Geo-tag, when shared.
    pub geo: Option<GeoPoint>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_normalize_case_and_whitespace() {
        assert_eq!(Tag::new("  Duomo "), Tag::new("duomo"));
        assert_eq!(Tag::new("Duomo").as_str(), "duomo");
        assert_eq!(Tag::new("duomo").to_string(), "#duomo");
    }

    #[test]
    fn distinct_tags_collapse_duplicates() {
        let p = Post {
            id: PostId::new(0),
            discussion: DiscussionId::new(0),
            author: UserId::new(0),
            published: Timestamp::EPOCH,
            body: String::new(),
            tags: vec![Tag::new("a"), Tag::new("B"), Tag::new("A "), Tag::new("c")],
            geo: None,
        };
        assert_eq!(p.distinct_tag_count(), 3);
    }

    #[test]
    fn empty_post_has_zero_distinct_tags() {
        let p = Post {
            id: PostId::new(0),
            discussion: DiscussionId::new(0),
            author: UserId::new(0),
            published: Timestamp::EPOCH,
            body: String::new(),
            tags: vec![],
            geo: None,
        };
        assert_eq!(p.distinct_tag_count(), 0);
    }
}
