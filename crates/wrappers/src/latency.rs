//! Simulated network latency for data services.
//!
//! Everything else in the crate runs on *simulated* time — waits are
//! clock arithmetic and cost nothing real — which is exactly right
//! for deterministic tests but hides the property that makes
//! parallel sweeps worthwhile: real crawls are **latency-bound**.
//! A fetch against a live Web 2.0 API spends most of its wall-clock
//! time waiting on the network, and N workers overlap N waits.
//!
//! [`SimulatedLatency`] restores that cost honestly: it wraps any
//! [`DataService`] and sleeps a fixed real-time duration before
//! delegating each `fetch`. The observed content is untouched — the
//! wrapper is transparent to everything but the wall clock — so the
//! parallel-sweep determinism contract
//! ([`Crawler::crawl_sweep`](crate::Crawler::crawl_sweep)) holds
//! with or without it. The `live_service` bench uses it to measure
//! sweep throughput against workers on a network-shaped workload.

use crate::error::WrapperError;
use crate::service::{Cursor, DataService, Page, ServiceDescriptor};
use obs_model::Timestamp;
use std::time::Duration;

/// A [`DataService`] decorator that charges a fixed real-time
/// round-trip per `fetch` — the network a live crawl would wait on.
///
/// ```
/// use obs_wrappers::{DataService, SimulatedLatency};
/// use std::time::Duration;
///
/// fn wrap<'a>(
///     service: Box<dyn DataService + 'a>,
/// ) -> Box<dyn DataService + 'a> {
///     Box::new(SimulatedLatency::wrap(service, Duration::from_millis(2)))
/// }
/// ```
pub struct SimulatedLatency<'a> {
    inner: Box<dyn DataService + 'a>,
    round_trip: Duration,
}

impl<'a> SimulatedLatency<'a> {
    /// Wraps `inner`, charging `round_trip` of real wall-clock time
    /// per fetch.
    pub fn wrap(inner: Box<dyn DataService + 'a>, round_trip: Duration) -> Self {
        SimulatedLatency { inner, round_trip }
    }

    /// The per-fetch round trip this wrapper charges.
    pub fn round_trip(&self) -> Duration {
        self.round_trip
    }
}

impl DataService for SimulatedLatency<'_> {
    fn descriptor(&self) -> &ServiceDescriptor {
        self.inner.descriptor()
    }

    fn fetch(&mut self, now: Timestamp, cursor: Option<Cursor>) -> Result<Page, WrapperError> {
        if !self.round_trip.is_zero() {
            std::thread::sleep(self.round_trip);
        }
        self.inner.fetch(now, cursor)
    }
}

impl std::fmt::Debug for SimulatedLatency<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulatedLatency")
            .field("source", &self.inner.descriptor().source)
            .field("round_trip", &self.round_trip)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crawler::Crawler;
    use crate::service::service_for;
    use obs_model::Clock;
    use obs_synth::{World, WorldConfig};

    #[test]
    fn latency_wrapper_is_transparent_to_observed_content() {
        let w = World::generate(WorldConfig::small(404));
        let crawler = Crawler::default();
        let s = w
            .corpus
            .sources()
            .iter()
            .find(|s| !w.corpus.discussions_of_source(s.id).is_empty())
            .unwrap();

        let mut plain = service_for(&w.corpus, s.id, w.now).unwrap();
        let mut clock = Clock::starting_at(w.now);
        let (bare, _) = crawler.crawl(plain.as_mut(), &mut clock).unwrap();

        let mut wrapped = SimulatedLatency::wrap(
            service_for(&w.corpus, s.id, w.now).unwrap(),
            Duration::from_micros(1),
        );
        assert_eq!(wrapped.descriptor().source, s.id);
        let mut clock = Clock::starting_at(w.now);
        let (slow, _) = crawler.crawl(&mut wrapped, &mut clock).unwrap();

        assert_eq!(bare.items, slow.items);
    }

    #[test]
    fn zero_round_trip_never_sleeps() {
        let w = World::generate(WorldConfig::small(404));
        let s = w
            .corpus
            .sources()
            .iter()
            .find(|s| !w.corpus.discussions_of_source(s.id).is_empty())
            .unwrap();
        let mut wrapped =
            SimulatedLatency::wrap(service_for(&w.corpus, s.id, w.now).unwrap(), Duration::ZERO);
        assert_eq!(wrapped.round_trip(), Duration::ZERO);
        // Just exercising the zero path; content still flows.
        let page = wrapped.fetch(w.now, None).unwrap();
        assert!(!page.items.is_empty());
    }
}
