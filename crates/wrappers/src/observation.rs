//! The uniform content model every wrapper maps into.
//!
//! Whatever dialect a native API speaks, the wrapper layer normalizes
//! its records into [`ContentItem`]s: one per post or comment, with
//! resolved model identifiers, simulation timestamps and aggregated
//! interaction counters. A full crawl of one source yields a
//! [`SourceObservation`].

use obs_model::{
    CategoryId, ContentRef, Corpus, CorpusDelta, DiscussionId, GeoPoint, InteractionKind, SourceId,
    Tag, Timestamp, UserId,
};

/// Whether an item is an opening post or a comment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ItemKind {
    /// An opening post (thread starter, tweet, article).
    Post,
    /// A comment (reply, review, revision note).
    Comment,
}

/// Aggregated interaction counters for one content item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InteractionCounts {
    /// Likes / upvotes.
    pub likes: u32,
    /// Shares.
    pub shares: u32,
    /// Retweets.
    pub retweets: u32,
    /// Mentions / replies-at.
    pub mentions: u32,
    /// Generic feedbacks ("helpful" votes, ratings).
    pub feedbacks: u32,
    /// Passive reads.
    pub reads: u32,
}

impl InteractionCounts {
    /// Tallies the interactions recorded on `target` in the corpus.
    pub fn tally(corpus: &Corpus, target: ContentRef) -> InteractionCounts {
        let mut counts = InteractionCounts::default();
        for &i in corpus.interactions_on(target) {
            match corpus.interactions()[i.index()].kind {
                InteractionKind::Like => counts.likes += 1,
                InteractionKind::Share => counts.shares += 1,
                InteractionKind::Retweet => counts.retweets += 1,
                InteractionKind::Mention => counts.mentions += 1,
                InteractionKind::Feedback => counts.feedbacks += 1,
                InteractionKind::Read => counts.reads += 1,
            }
        }
        counts
    }

    /// Total *active* interactions (everything except reads).
    pub fn active_total(&self) -> u32 {
        self.likes + self.shares + self.retweets + self.mentions + self.feedbacks
    }
}

/// One normalized content item.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentItem {
    /// Hosting source.
    pub source: SourceId,
    /// Discussion the item belongs to.
    pub discussion: DiscussionId,
    /// The underlying post or comment.
    pub content: ContentRef,
    /// Post vs comment.
    pub kind: ItemKind,
    /// Resolved author.
    pub author: UserId,
    /// Publication instant (simulation time).
    pub published: Timestamp,
    /// Content category of the discussion.
    pub category: CategoryId,
    /// Body text (may be empty in lightweight worlds).
    pub text: String,
    /// Tags (posts only; comments carry none).
    pub tags: Vec<Tag>,
    /// Geo-tag, when present.
    pub geo: Option<GeoPoint>,
    /// Aggregated interaction counters.
    pub interactions: InteractionCounts,
}

/// A full normalized view of one source.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceObservation {
    /// The observed source.
    pub source: SourceId,
    /// Items in publication order.
    pub items: Vec<ContentItem>,
}

impl SourceObservation {
    /// Items that are opening posts.
    pub fn posts(&self) -> impl Iterator<Item = &ContentItem> {
        self.items.iter().filter(|i| i.kind == ItemKind::Post)
    }

    /// Items that are comments.
    pub fn comments(&self) -> impl Iterator<Item = &ContentItem> {
        self.items.iter().filter(|i| i.kind == ItemKind::Comment)
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the observation holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Converts the observation into the change-set it implies:
    /// every observed opening post becomes an indexable document
    /// (body text plus tags — the discussion title is whatever the
    /// native API folded into the body), and per-source engagement
    /// counters move by one discussion per post and one comment per
    /// comment. Feeding the delta to a search engine is how a crawl
    /// tick flows straight into a queryable index.
    pub fn to_delta(&self) -> CorpusDelta {
        let mut delta = CorpusDelta::new();
        for item in &self.items {
            match (item.kind, item.content) {
                (ItemKind::Post, ContentRef::Post(pid)) => {
                    let mut text = String::with_capacity(item.text.len() + 16 * item.tags.len());
                    text.push_str(&item.text);
                    for tag in &item.tags {
                        text.push(' ');
                        text.push_str(tag.as_str());
                    }
                    delta.add_doc(pid, item.source, text);
                    delta.note_engagement(item.source, 1, 0);
                }
                _ => delta.note_engagement(item.source, 0, 1),
            }
        }
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs_model::{AccountKind, CorpusBuilder, SourceKind};

    #[test]
    fn tally_counts_by_kind() {
        let mut b = CorpusBuilder::new();
        let cat = b.add_category("c");
        let s = b.add_source(SourceKind::Microblog, "m", Timestamp::EPOCH);
        let u = b.add_user("u", AccountKind::Person, Timestamp::EPOCH);
        let v = b.add_user("v", AccountKind::Person, Timestamp::EPOCH);
        let (_, post) = b.add_discussion_with_post(
            s,
            cat,
            "t",
            u,
            Timestamp::from_days(1),
            "hello",
            vec![],
            None,
        );
        let target = ContentRef::Post(post);
        b.add_interaction(v, target, InteractionKind::Like, Timestamp::from_days(2));
        b.add_interaction(v, target, InteractionKind::Retweet, Timestamp::from_days(2));
        b.add_interaction(v, target, InteractionKind::Retweet, Timestamp::from_days(3));
        b.add_interaction(v, target, InteractionKind::Read, Timestamp::from_days(3));
        let corpus = b.build();

        let counts = InteractionCounts::tally(&corpus, target);
        assert_eq!(counts.likes, 1);
        assert_eq!(counts.retweets, 2);
        assert_eq!(counts.reads, 1);
        assert_eq!(counts.mentions, 0);
        assert_eq!(counts.active_total(), 3);
    }

    #[test]
    fn observation_partitions_posts_and_comments() {
        let item = |kind| ContentItem {
            source: SourceId::new(0),
            discussion: DiscussionId::new(0),
            content: ContentRef::Post(obs_model::PostId::new(0)),
            kind,
            author: UserId::new(0),
            published: Timestamp::EPOCH,
            category: CategoryId::new(0),
            text: String::new(),
            tags: vec![],
            geo: None,
            interactions: InteractionCounts::default(),
        };
        let obs = SourceObservation {
            source: SourceId::new(0),
            items: vec![
                item(ItemKind::Post),
                item(ItemKind::Comment),
                item(ItemKind::Comment),
            ],
        };
        assert_eq!(obs.posts().count(), 1);
        assert_eq!(obs.comments().count(), 2);
        assert_eq!(obs.len(), 3);
        assert!(!obs.is_empty());
    }
}
