//! Token-bucket rate limiting over simulated time.
//!
//! Real Web APIs meter requests; crawlers must pace themselves. The
//! bucket runs on the simulation clock so tests are instant and
//! deterministic.

use obs_model::Timestamp;

/// Why a token could not be taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateDenied {
    /// The bucket refills: retry after this many simulated seconds.
    RetryAfter(u64),
    /// The bucket never refills (zero rate): no finite wait will
    /// ever produce a token. Callers must surface this as a hard
    /// error instead of waiting — the previous encoding (a
    /// `u64::MAX` wait) overflowed `Timestamp` arithmetic in any
    /// caller that advanced its clock by the returned wait.
    Exhausted,
}

/// A token bucket: capacity `burst`, refilled at `per_minute / 60`
/// tokens per simulated second.
#[derive(Debug, Clone, PartialEq)]
pub struct TokenBucket {
    burst: f64,
    per_second: f64,
    tokens: f64,
    last_refill: Timestamp,
}

impl TokenBucket {
    /// Creates a full bucket.
    pub fn new(burst: u32, per_minute: u32, now: Timestamp) -> Self {
        TokenBucket {
            burst: burst.max(1) as f64,
            per_second: per_minute as f64 / 60.0,
            tokens: burst.max(1) as f64,
            last_refill: now,
        }
    }

    fn refill(&mut self, now: Timestamp) {
        if now > self.last_refill {
            let elapsed = now.since(self.last_refill).seconds() as f64;
            self.tokens = (self.tokens + elapsed * self.per_second).min(self.burst);
            self.last_refill = now;
        }
    }

    /// Attempts to take one token at `now`. On failure reports how
    /// long to wait — or that no wait will ever help, for a bucket
    /// that never refills.
    pub fn try_take(&mut self, now: Timestamp) -> Result<(), RateDenied> {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else if self.per_second <= 0.0 {
            Err(RateDenied::Exhausted)
        } else {
            let missing = 1.0 - self.tokens;
            Err(RateDenied::RetryAfter(
                (missing / self.per_second).ceil() as u64
            ))
        }
    }

    /// Tokens currently available (after refill at `now`).
    pub fn available(&mut self, now: Timestamp) -> f64 {
        self.refill(now);
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs_model::Duration;

    #[test]
    fn burst_then_throttle() {
        let now = Timestamp::EPOCH;
        let mut bucket = TokenBucket::new(3, 60, now); // 1 token/s
        assert!(bucket.try_take(now).is_ok());
        assert!(bucket.try_take(now).is_ok());
        assert!(bucket.try_take(now).is_ok());
        let wait = bucket.try_take(now).unwrap_err();
        assert_eq!(wait, RateDenied::RetryAfter(1));
    }

    #[test]
    fn refills_over_time() {
        let now = Timestamp::EPOCH;
        let mut bucket = TokenBucket::new(1, 60, now);
        assert!(bucket.try_take(now).is_ok());
        assert!(bucket.try_take(now).is_err());
        let later = now.plus(Duration(2));
        assert!(bucket.try_take(later).is_ok());
    }

    #[test]
    fn refill_caps_at_burst() {
        let now = Timestamp::EPOCH;
        let mut bucket = TokenBucket::new(2, 600, now); // 10/s
        let much_later = now.plus(Duration(3_600));
        assert!((bucket.available(much_later) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_rate_bucket_reports_exhaustion_not_a_wait() {
        let now = Timestamp::EPOCH;
        let mut bucket = TokenBucket::new(1, 0, now);
        assert!(bucket.try_take(now).is_ok());
        // A finite wait here would be a lie — the bucket never
        // refills, and advancing a clock by any encoded "wait
        // forever" sentinel overflows Timestamp arithmetic.
        assert_eq!(bucket.try_take(now).unwrap_err(), RateDenied::Exhausted);
        let much_later = now.plus(obs_model::Duration::from_days(10_000));
        assert_eq!(
            bucket.try_take(much_later).unwrap_err(),
            RateDenied::Exhausted
        );
    }

    #[test]
    fn time_going_backwards_is_ignored() {
        let now = Timestamp::from_days(1);
        let mut bucket = TokenBucket::new(1, 60, now);
        assert!(bucket.try_take(now).is_ok());
        // Earlier timestamp must not panic or refill.
        assert!(bucket.try_take(Timestamp::EPOCH).is_err());
    }
}
