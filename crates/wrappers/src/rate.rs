//! Token-bucket rate limiting over simulated time.
//!
//! Real Web APIs meter requests; crawlers must pace themselves. The
//! bucket runs on the simulation clock so tests are instant and
//! deterministic.

use obs_model::Timestamp;

/// A token bucket: capacity `burst`, refilled at `per_minute / 60`
/// tokens per simulated second.
#[derive(Debug, Clone, PartialEq)]
pub struct TokenBucket {
    burst: f64,
    per_second: f64,
    tokens: f64,
    last_refill: Timestamp,
}

impl TokenBucket {
    /// Creates a full bucket.
    pub fn new(burst: u32, per_minute: u32, now: Timestamp) -> Self {
        TokenBucket {
            burst: burst.max(1) as f64,
            per_second: per_minute as f64 / 60.0,
            tokens: burst.max(1) as f64,
            last_refill: now,
        }
    }

    fn refill(&mut self, now: Timestamp) {
        if now > self.last_refill {
            let elapsed = now.since(self.last_refill).seconds() as f64;
            self.tokens = (self.tokens + elapsed * self.per_second).min(self.burst);
            self.last_refill = now;
        }
    }

    /// Attempts to take one token at `now`. On failure returns the
    /// simulated seconds to wait before the next token is available.
    pub fn try_take(&mut self, now: Timestamp) -> Result<(), u64> {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else if self.per_second <= 0.0 {
            Err(u64::MAX)
        } else {
            let missing = 1.0 - self.tokens;
            Err((missing / self.per_second).ceil() as u64)
        }
    }

    /// Tokens currently available (after refill at `now`).
    pub fn available(&mut self, now: Timestamp) -> f64 {
        self.refill(now);
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs_model::Duration;

    #[test]
    fn burst_then_throttle() {
        let now = Timestamp::EPOCH;
        let mut bucket = TokenBucket::new(3, 60, now); // 1 token/s
        assert!(bucket.try_take(now).is_ok());
        assert!(bucket.try_take(now).is_ok());
        assert!(bucket.try_take(now).is_ok());
        let wait = bucket.try_take(now).unwrap_err();
        assert_eq!(wait, 1);
    }

    #[test]
    fn refills_over_time() {
        let now = Timestamp::EPOCH;
        let mut bucket = TokenBucket::new(1, 60, now);
        assert!(bucket.try_take(now).is_ok());
        assert!(bucket.try_take(now).is_err());
        let later = now.plus(Duration(2));
        assert!(bucket.try_take(later).is_ok());
    }

    #[test]
    fn refill_caps_at_burst() {
        let now = Timestamp::EPOCH;
        let mut bucket = TokenBucket::new(2, 600, now); // 10/s
        let much_later = now.plus(Duration(3_600));
        assert!((bucket.available(much_later) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_rate_bucket_never_refills() {
        let now = Timestamp::EPOCH;
        let mut bucket = TokenBucket::new(1, 0, now);
        assert!(bucket.try_take(now).is_ok());
        assert_eq!(bucket.try_take(now).unwrap_err(), u64::MAX);
    }

    #[test]
    fn time_going_backwards_is_ignored() {
        let now = Timestamp::from_days(1);
        let mut bucket = TokenBucket::new(1, 60, now);
        assert!(bucket.try_take(now).is_ok());
        // Earlier timestamp must not panic or refill.
        assert!(bucket.try_take(Timestamp::EPOCH).is_err());
    }
}
