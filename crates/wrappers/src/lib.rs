//! # obs-wrappers — heterogeneous source APIs and the uniform wrapper layer
//!
//! Section 5 of the paper builds mashups out of *data services*:
//! "wrappers defined on top of the filtered authoritative sources to
//! enable the access to their contents". Every real Web 2.0 source
//! speaks a different dialect — blogs expose permalinked posts with
//! comment trails and ISO dates, forums expose numbered threads with
//! quoted replies and epoch seconds, microblogs expose cursor-paged
//! timelines with millisecond timestamps, review sites expose
//! star-rated reviews per venue, wikis expose revisioned articles.
//!
//! This crate reproduces that heterogeneity honestly:
//!
//! * [`native`] — five *deliberately incompatible* per-kind APIs, each
//!   with its own record shapes, id schemes, date formats, pagination
//!   contract and rate limits, all backed by the shared corpus;
//! * [`observation`] — the uniform content model
//!   ([`ContentItem`], [`SourceObservation`]) every wrapper maps into;
//! * [`service`] — the [`DataService`] trait and one adapter per
//!   native API (field mapping, date parsing, id resolution);
//! * [`rate`] — a token-bucket rate limiter shared by the native APIs;
//! * [`fault`] — deterministic fault injection for resilience tests;
//! * [`latency`] — a real-time round-trip decorator modelling the
//!   network-bound nature of live crawls (what parallel sweeps
//!   overlap);
//! * [`crawler`] — an incremental crawl driver with retry/backoff,
//!   per-source cursors, and a multi-source sweep that optionally
//!   fans per-source crawls across worker threads
//!   ([`CrawlerConfig::workers`]);
//! * [`metrics`] — crawl-side instruments ([`CrawlMetrics`]):
//!   per-source fetch latency, items/pages/denial/retry counters,
//!   sweep wall clock.

#![warn(missing_docs)]

pub mod crawler;
mod error;
pub mod fault;
pub mod latency;
pub mod metrics;
pub mod native;
pub mod observation;
pub mod rate;
pub mod service;

pub use crawler::{CrawlReport, Crawler, CrawlerConfig, HighWaterMarks, SweepReport};
pub use error::WrapperError;
pub use fault::FaultPlan;
pub use latency::SimulatedLatency;
pub use metrics::CrawlMetrics;
pub use observation::{ContentItem, InteractionCounts, ItemKind, SourceObservation};
pub use rate::{RateDenied, TokenBucket};
pub use service::{service_for, Cursor, DataService, Page, ServiceDescriptor};
