//! The uniform [`DataService`] trait and one adapter per native API.
//!
//! Adapters do the unglamorous wrapper work the paper's data services
//! needed: resolving display names back to accounts, parsing each
//! platform's date dialect, stripping HTML/BBCode, mapping permalink
//! / thread-number / snowflake / venue-code / slug identifiers back
//! to model ids, and normalizing pagination into a single opaque
//! cursor scheme.

use crate::error::WrapperError;
use crate::native::{blog, forum, microblog, review, wiki};
use crate::observation::{ContentItem, InteractionCounts, ItemKind};
use obs_model::{
    ContentRef, Corpus, DiscussionId, GeoPoint, SourceId, SourceKind, Tag, Timestamp, UserId,
};
use std::collections::HashMap;

/// An opaque pagination cursor. Each service defines its meaning
/// (page number, offset, snowflake max-id, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cursor(pub u64);

/// One fetched page of normalized items.
#[derive(Debug, Clone, PartialEq)]
pub struct Page {
    /// Normalized items.
    pub items: Vec<ContentItem>,
    /// Cursor for the next page; `None` when exhausted.
    pub next: Option<Cursor>,
}

/// Identity card of a data service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceDescriptor {
    /// Wrapped source.
    pub source: SourceId,
    /// Source kind.
    pub kind: SourceKind,
    /// Source name.
    pub name: String,
}

/// A wrapper exposing one source's contents through the uniform
/// model — the paper's *data service*.
///
/// `Send` is a supertrait so a parallel sweep
/// ([`Crawler::crawl_sweep`](crate::Crawler::crawl_sweep)) can hand
/// each service to its own worker thread. Every adapter in this
/// crate satisfies it automatically: the only shared state a service
/// holds is an immutable `&Corpus` borrow (the corpus is plain owned
/// data, hence `Sync`), and everything mutable — pagination cursors,
/// [`TokenBucket`](crate::TokenBucket) tokens,
/// [`FaultPlan`](crate::FaultPlan) counters — is per-service interior
/// state owned by exactly one worker at a time.
pub trait DataService: Send {
    /// Identity of the wrapped source.
    fn descriptor(&self) -> &ServiceDescriptor;

    /// Fetches one page. `None` starts from the beginning.
    fn fetch(&mut self, now: Timestamp, cursor: Option<Cursor>) -> Result<Page, WrapperError>;
}

/// Builds the appropriate wrapper for any source kind.
pub fn service_for<'a>(
    corpus: &'a Corpus,
    source: SourceId,
    now: Timestamp,
) -> Result<Box<dyn DataService + 'a>, WrapperError> {
    let kind = corpus
        .source(source)
        .map_err(|_| WrapperError::UnknownSource(source))?
        .kind;
    Ok(match kind {
        SourceKind::Blog => Box::new(BlogService::open(corpus, source, now)?),
        SourceKind::Forum => Box::new(ForumService::open(corpus, source, now)?),
        SourceKind::Microblog => Box::new(MicroblogService::open(corpus, source, now)?),
        SourceKind::ReviewSite => Box::new(ReviewService::open(corpus, source, now)?),
        SourceKind::Wiki => Box::new(WikiService::open(corpus, source, now)?),
    })
}

/// Shared adapter context: handle resolution and descriptor.
struct AdapterBase<'a> {
    corpus: &'a Corpus,
    descriptor: ServiceDescriptor,
    handles: HashMap<&'a str, UserId>,
}

impl<'a> AdapterBase<'a> {
    fn new(corpus: &'a Corpus, source: SourceId) -> Result<Self, WrapperError> {
        let s = corpus
            .source(source)
            .map_err(|_| WrapperError::UnknownSource(source))?;
        let handles = corpus
            .users()
            .iter()
            .map(|u| (u.handle.as_str(), u.id))
            .collect();
        Ok(AdapterBase {
            corpus,
            descriptor: ServiceDescriptor {
                source,
                kind: s.kind,
                name: s.name.clone(),
            },
            handles,
        })
    }

    fn resolve_handle(&self, handle: &str) -> Result<UserId, WrapperError> {
        self.handles
            .get(handle)
            .copied()
            .ok_or_else(|| WrapperError::MappingFailed {
                what: "user handle",
                raw: handle.to_owned(),
            })
    }

    // The argument list mirrors the ContentItem payload one-to-one;
    // bundling them into a struct would just restate ContentItem.
    #[allow(clippy::too_many_arguments)]
    fn item(
        &self,
        discussion: DiscussionId,
        content: ContentRef,
        author: UserId,
        published: Timestamp,
        text: String,
        tags: Vec<Tag>,
        geo: Option<GeoPoint>,
    ) -> ContentItem {
        let category = self
            .corpus
            .discussion(discussion)
            .map(|d| d.category)
            .unwrap_or(obs_model::CategoryId::new(0));
        ContentItem {
            source: self.descriptor.source,
            discussion,
            content,
            kind: match content {
                ContentRef::Post(_) => ItemKind::Post,
                ContentRef::Comment(_) => ItemKind::Comment,
            },
            author,
            published,
            category,
            text,
            tags,
            geo,
            interactions: InteractionCounts::tally(self.corpus, content),
        }
    }
}

/// Strips the `<p>…</p>` wrapper of blog HTML bodies.
fn strip_html(body: &str) -> String {
    body.trim()
        .trim_start_matches("<p>")
        .trim_end_matches("</p>")
        .to_owned()
}

/// Parses the blog's `"lat,lon"` geo attribute.
fn parse_geo_attr(attr: &str) -> Result<GeoPoint, WrapperError> {
    let bad = || WrapperError::MappingFailed {
        what: "geo attribute",
        raw: attr.to_owned(),
    };
    let (lat, lon) = attr.split_once(',').ok_or_else(bad)?;
    let lat: f64 = lat.trim().parse().map_err(|_| bad())?;
    let lon: f64 = lon.trim().parse().map_err(|_| bad())?;
    Ok(GeoPoint::new(lat, lon))
}

// ---------------------------------------------------------------- blog

/// Wrapper over the blog dialect. Cursor: page number.
pub struct BlogService<'a> {
    base: AdapterBase<'a>,
    api: blog::BlogApi<'a>,
}

impl<'a> BlogService<'a> {
    /// Opens the service.
    pub fn open(
        corpus: &'a Corpus,
        source: SourceId,
        now: Timestamp,
    ) -> Result<Self, WrapperError> {
        Ok(BlogService {
            base: AdapterBase::new(corpus, source)?,
            api: blog::BlogApi::open(corpus, source, now)?,
        })
    }

    /// Replaces the underlying API (fault-injection hook for tests).
    pub fn with_api(mut self, api: blog::BlogApi<'a>) -> Self {
        self.api = api;
        self
    }
}

impl DataService for BlogService<'_> {
    fn descriptor(&self) -> &ServiceDescriptor {
        &self.base.descriptor
    }

    fn fetch(&mut self, now: Timestamp, cursor: Option<Cursor>) -> Result<Page, WrapperError> {
        let page_no = cursor.map_or(0, |c| c.0 as usize);
        let page = self.api.posts_page(now, page_no)?;
        let mut items = Vec::new();
        for post in &page.posts {
            let discussion = blog::discussion_of_permalink(&post.permalink)?;
            let author = self.base.resolve_handle(&post.author_name)?;
            let published = blog::parse_iso(&post.posted_iso)?;
            let root = self
                .base
                .corpus
                .discussion(discussion)
                .map_err(|_| WrapperError::MappingFailed {
                    what: "blog discussion",
                    raw: post.permalink.clone(),
                })?
                .root_post;
            let geo = post.geo_attr.as_deref().map(parse_geo_attr).transpose()?;
            items.push(self.base.item(
                discussion,
                ContentRef::Post(root),
                author,
                published,
                strip_html(&post.html_body),
                post.labels.iter().map(Tag::new).collect(),
                geo,
            ));
            let comment_ids = self.base.corpus.comments_of_discussion(discussion);
            for (idx, c) in post.comments.iter().enumerate() {
                let cid =
                    comment_ids
                        .get(idx)
                        .copied()
                        .ok_or_else(|| WrapperError::MappingFailed {
                            what: "blog comment index",
                            raw: idx.to_string(),
                        })?;
                items.push(self.base.item(
                    discussion,
                    ContentRef::Comment(cid),
                    self.base.resolve_handle(&c.commenter)?,
                    blog::parse_iso(&c.posted_iso)?,
                    strip_html(&c.html_body),
                    Vec::new(),
                    None,
                ));
            }
        }
        let next = if page_no + 1 < page.total_pages {
            Some(Cursor(page_no as u64 + 1))
        } else {
            None
        };
        Ok(Page { items, next })
    }
}

// --------------------------------------------------------------- forum

/// Threads consumed per `fetch` call.
const FORUM_THREADS_PER_FETCH: usize = 10;
/// Replies requested per native call.
const FORUM_REPLIES_LIMIT: usize = 50;

/// Wrapper over the forum dialect. Cursor: thread offset.
pub struct ForumService<'a> {
    base: AdapterBase<'a>,
    api: forum::ForumApi<'a>,
}

impl<'a> ForumService<'a> {
    /// Opens the service.
    pub fn open(
        corpus: &'a Corpus,
        source: SourceId,
        now: Timestamp,
    ) -> Result<Self, WrapperError> {
        Ok(ForumService {
            base: AdapterBase::new(corpus, source)?,
            api: forum::ForumApi::open(corpus, source, now)?,
        })
    }

    /// Replaces the underlying API (fault-injection hook for tests).
    pub fn with_api(mut self, api: forum::ForumApi<'a>) -> Self {
        self.api = api;
        self
    }
}

impl DataService for ForumService<'_> {
    fn descriptor(&self) -> &ServiceDescriptor {
        &self.base.descriptor
    }

    fn fetch(&mut self, now: Timestamp, cursor: Option<Cursor>) -> Result<Page, WrapperError> {
        let offset = cursor.map_or(0, |c| c.0 as usize);
        let (threads, total) = self.api.threads(now, offset, FORUM_THREADS_PER_FETCH)?;
        let mut items = Vec::new();
        for t in &threads {
            let discussion = forum::discussion_of_thread_no(t.thread_no)?;
            let starter = self.base.resolve_handle(&t.starter)?;
            let d = self
                .base
                .corpus
                .discussion(discussion)
                .map_err(|_| WrapperError::BadCursor(format!("thread {}", t.thread_no)))?;
            items.push(self.base.item(
                discussion,
                ContentRef::Post(d.root_post),
                starter,
                Timestamp(t.started_epoch),
                t.subject.clone(),
                Vec::new(),
                None,
            ));

            // Drain the thread's replies.
            let comment_ids = self.base.corpus.comments_of_discussion(discussion);
            let mut reply_offset = 0;
            loop {
                let (replies, reply_total) =
                    self.api
                        .replies(now, t.thread_no, reply_offset, FORUM_REPLIES_LIMIT)?;
                for r in &replies {
                    let idx = (r.reply_no - 1) as usize;
                    let cid = comment_ids.get(idx).copied().ok_or_else(|| {
                        WrapperError::MappingFailed {
                            what: "forum reply number",
                            raw: r.reply_no.to_string(),
                        }
                    })?;
                    let (_, bare) = forum::strip_quote(&r.body_bbcode);
                    items.push(self.base.item(
                        discussion,
                        ContentRef::Comment(cid),
                        self.base.resolve_handle(&r.author)?,
                        Timestamp(r.posted_epoch),
                        bare.to_owned(),
                        Vec::new(),
                        None,
                    ));
                }
                reply_offset += replies.len();
                if reply_offset >= reply_total {
                    break;
                }
            }
        }
        let consumed = offset + threads.len();
        let next = if consumed < total {
            Some(Cursor(consumed as u64))
        } else {
            None
        };
        Ok(Page { items, next })
    }
}

// ----------------------------------------------------------- microblog

/// Wrapper over the microblog dialect. Cursor: snowflake max-id.
pub struct MicroblogService<'a> {
    base: AdapterBase<'a>,
    api: microblog::MicroblogApi<'a>,
}

impl<'a> MicroblogService<'a> {
    /// Opens the service.
    pub fn open(
        corpus: &'a Corpus,
        source: SourceId,
        now: Timestamp,
    ) -> Result<Self, WrapperError> {
        Ok(MicroblogService {
            base: AdapterBase::new(corpus, source)?,
            api: microblog::MicroblogApi::open(corpus, source, now)?,
        })
    }

    /// Replaces the underlying API (fault-injection hook for tests).
    pub fn with_api(mut self, api: microblog::MicroblogApi<'a>) -> Self {
        self.api = api;
        self
    }
}

impl DataService for MicroblogService<'_> {
    fn descriptor(&self) -> &ServiceDescriptor {
        &self.base.descriptor
    }

    fn fetch(&mut self, now: Timestamp, cursor: Option<Cursor>) -> Result<Page, WrapperError> {
        let (statuses, next) = self.api.timeline(now, cursor.map(|c| c.0))?;
        let mut items = Vec::with_capacity(statuses.len());
        for s in &statuses {
            let (_, content) = microblog::decode_status_id(s.status_id);
            let discussion = self.base.corpus.discussion_of(content).map_err(|_| {
                WrapperError::MappingFailed {
                    what: "status id",
                    raw: s.status_id.to_string(),
                }
            })?;
            items.push(self.base.item(
                discussion,
                content,
                self.base.resolve_handle(&s.handle)?,
                Timestamp(s.unix_ms / 1_000),
                s.text.clone(),
                s.hashtags.iter().map(Tag::new).collect(),
                s.point.map(|(lat, lon)| GeoPoint::new(lat, lon)),
            ));
        }
        Ok(Page {
            items,
            next: next.map(Cursor),
        })
    }
}

// -------------------------------------------------------------- review

/// Wrapper over the review dialect. Cursor: venue page.
pub struct ReviewService<'a> {
    base: AdapterBase<'a>,
    api: review::ReviewApi<'a>,
}

impl<'a> ReviewService<'a> {
    /// Opens the service.
    pub fn open(
        corpus: &'a Corpus,
        source: SourceId,
        now: Timestamp,
    ) -> Result<Self, WrapperError> {
        Ok(ReviewService {
            base: AdapterBase::new(corpus, source)?,
            api: review::ReviewApi::open(corpus, source, now)?,
        })
    }

    /// Replaces the underlying API (fault-injection hook for tests).
    pub fn with_api(mut self, api: review::ReviewApi<'a>) -> Self {
        self.api = api;
        self
    }
}

impl DataService for ReviewService<'_> {
    fn descriptor(&self) -> &ServiceDescriptor {
        &self.base.descriptor
    }

    fn fetch(&mut self, now: Timestamp, cursor: Option<Cursor>) -> Result<Page, WrapperError> {
        let page_no = cursor.map_or(0, |c| c.0 as usize);
        let (venues, total_pages) = self.api.venues(now, page_no)?;
        let mut items = Vec::new();
        for v in &venues {
            let discussion = review::discussion_of_venue_code(&v.venue_code)?;
            let d = self
                .base
                .corpus
                .discussion(discussion)
                .map_err(|_| WrapperError::BadCursor(v.venue_code.clone()))?;
            let root_post = self.base.corpus.post(d.root_post)?;
            items.push(self.base.item(
                discussion,
                ContentRef::Post(d.root_post),
                d.opened_by,
                d.opened_at,
                root_post.body.clone(),
                root_post.tags.clone(),
                root_post.geo,
            ));

            let comment_ids = self.base.corpus.comments_of_discussion(discussion);
            let mut review_page = 0;
            loop {
                let (reviews, review_pages) = self.api.reviews(now, &v.venue_code, review_page)?;
                let base_idx = review_page * review::REVIEWS_PAGE_SIZE;
                for (i, r) in reviews.iter().enumerate() {
                    let cid = comment_ids.get(base_idx + i).copied().ok_or_else(|| {
                        WrapperError::MappingFailed {
                            what: "review index",
                            raw: (base_idx + i).to_string(),
                        }
                    })?;
                    let comment = self.base.corpus.comment(cid)?;
                    items.push(self.base.item(
                        discussion,
                        ContentRef::Comment(cid),
                        self.base.resolve_handle(&r.reviewer)?,
                        comment.published,
                        r.text.clone(),
                        Vec::new(),
                        comment.geo,
                    ));
                }
                review_page += 1;
                if review_page >= review_pages {
                    break;
                }
            }
        }
        let next = if page_no + 1 < total_pages {
            Some(Cursor(page_no as u64 + 1))
        } else {
            None
        };
        Ok(Page { items, next })
    }
}

// ---------------------------------------------------------------- wiki

/// Articles consumed per `fetch` call.
const WIKI_ARTICLES_PER_FETCH: usize = 25;

/// Wrapper over the wiki dialect. Cursor: article offset.
pub struct WikiService<'a> {
    base: AdapterBase<'a>,
    api: wiki::WikiApi<'a>,
}

impl<'a> WikiService<'a> {
    /// Opens the service.
    pub fn open(
        corpus: &'a Corpus,
        source: SourceId,
        now: Timestamp,
    ) -> Result<Self, WrapperError> {
        Ok(WikiService {
            base: AdapterBase::new(corpus, source)?,
            api: wiki::WikiApi::open(corpus, source, now)?,
        })
    }

    /// Replaces the underlying API (fault-injection hook for tests).
    pub fn with_api(mut self, api: wiki::WikiApi<'a>) -> Self {
        self.api = api;
        self
    }
}

impl DataService for WikiService<'_> {
    fn descriptor(&self) -> &ServiceDescriptor {
        &self.base.descriptor
    }

    fn fetch(&mut self, now: Timestamp, cursor: Option<Cursor>) -> Result<Page, WrapperError> {
        let offset = cursor.map_or(0, |c| c.0 as usize);
        let (articles, total) = self.api.articles(now, offset, WIKI_ARTICLES_PER_FETCH)?;
        let mut items = Vec::new();
        for a in &articles {
            let discussion = wiki::discussion_of_slug(&a.slug)?;
            let d = self
                .base
                .corpus
                .discussion(discussion)
                .map_err(|_| WrapperError::BadCursor(a.slug.clone()))?;
            // Wikitext: drop the heading line the API prepends.
            let body = a
                .wikitext
                .split_once('\n')
                .map(|(_, rest)| rest)
                .unwrap_or(&a.wikitext)
                .to_owned();
            items.push(self.base.item(
                discussion,
                ContentRef::Post(d.root_post),
                self.base.resolve_handle(&a.curator)?,
                d.opened_at,
                body,
                Vec::new(),
                None,
            ));
            let comment_ids = self.base.corpus.comments_of_discussion(discussion);
            for (idx, rev) in a.revisions.iter().enumerate() {
                let cid =
                    comment_ids
                        .get(idx)
                        .copied()
                        .ok_or_else(|| WrapperError::MappingFailed {
                            what: "wiki revision index",
                            raw: idx.to_string(),
                        })?;
                let comment = self.base.corpus.comment(cid)?;
                items.push(self.base.item(
                    discussion,
                    ContentRef::Comment(cid),
                    self.base.resolve_handle(&rev.editor)?,
                    comment.published,
                    rev.note.clone(),
                    Vec::new(),
                    None,
                ));
            }
        }
        let consumed = offset + articles.len();
        let next = if consumed < total {
            Some(Cursor(consumed as u64))
        } else {
            None
        };
        Ok(Page { items, next })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs_synth::{World, WorldConfig};

    fn world() -> World {
        World::generate(WorldConfig::small(101))
    }

    /// Drains a service completely, asserting cursor progress.
    fn drain(service: &mut dyn DataService, now: Timestamp) -> Vec<ContentItem> {
        let mut items = Vec::new();
        let mut cursor = None;
        let mut guard = 0;
        loop {
            let page = service.fetch(now, cursor).expect("fetch");
            items.extend(page.items);
            guard += 1;
            assert!(guard < 10_000, "cursor loop");
            match page.next {
                Some(c) => cursor = Some(c),
                None => break,
            }
        }
        items
    }

    #[test]
    fn every_kind_has_a_service_and_yields_all_items() {
        let w = world();
        let now = w.now;
        for s in w.corpus.sources() {
            let mut service = service_for(&w.corpus, s.id, now).expect("service");
            assert_eq!(service.descriptor().source, s.id);
            assert_eq!(service.descriptor().kind, s.kind);
            let items = drain(service.as_mut(), now);

            // Ground truth: discussions + comments of the source.
            let mut expected = 0;
            for &d in w.corpus.discussions_of_source(s.id) {
                expected += 1 + w.corpus.comments_of_discussion(d).len();
            }
            assert_eq!(
                items.len(),
                expected,
                "item count for {} ({})",
                s.name,
                s.kind
            );

            // Every item belongs to the source and has a resolved author.
            for item in &items {
                assert_eq!(item.source, s.id);
                assert!(w.corpus.user(item.author).is_ok());
                let truth = w.corpus.author_of(item.content).unwrap();
                assert_eq!(item.author, truth, "author mapping for {:?}", item.content);
            }
        }
    }

    #[test]
    fn timestamps_survive_the_format_roundtrips() {
        let w = world();
        let now = w.now;
        for s in w.corpus.sources() {
            let mut service = service_for(&w.corpus, s.id, now).expect("service");
            for item in drain(service.as_mut(), now) {
                let truth = match item.content {
                    ContentRef::Post(p) => w.corpus.post(p).unwrap().published,
                    ContentRef::Comment(c) => w.corpus.comment(c).unwrap().published,
                };
                assert_eq!(item.published, truth, "timestamp for {:?}", item.content);
            }
        }
    }

    #[test]
    fn interaction_counts_match_corpus_tally() {
        let w = world();
        let now = w.now;
        let s = w.corpus.sources().first().unwrap();
        let mut service = service_for(&w.corpus, s.id, now).unwrap();
        for item in drain(service.as_mut(), now) {
            assert_eq!(
                item.interactions,
                InteractionCounts::tally(&w.corpus, item.content)
            );
        }
    }

    #[test]
    fn unknown_source_is_rejected() {
        let w = world();
        assert!(matches!(
            service_for(&w.corpus, SourceId::new(9_999), w.now),
            Err(WrapperError::UnknownSource(_))
        ));
    }

    #[test]
    fn geo_attr_parsing() {
        assert_eq!(
            parse_geo_attr("45.46,9.19").unwrap(),
            GeoPoint::new(45.46, 9.19)
        );
        assert!(parse_geo_attr("45.46").is_err());
        assert!(parse_geo_attr("a,b").is_err());
    }

    #[test]
    fn html_stripping() {
        assert_eq!(strip_html("<p>ciao</p>"), "ciao");
        assert_eq!(strip_html("plain"), "plain");
        assert_eq!(strip_html("  <p>padded</p>  "), "padded");
    }
}
