//! Deterministic fault injection.
//!
//! Real crawls fail: timeouts, 5xx, truncated responses. The
//! [`FaultPlan`] injects transient failures on a fixed schedule so
//! resilience paths (retry, backoff, resume-from-cursor) are
//! exercised deterministically in tests and benchmarks.

/// A deterministic schedule of transient failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Fail every `period`-th call (1-based); 0 disables injection.
    period: u64,
    calls: u64,
}

impl FaultPlan {
    /// No injected faults.
    pub fn none() -> Self {
        FaultPlan {
            period: 0,
            calls: 0,
        }
    }

    /// Fail every `period`-th call.
    pub fn every(period: u64) -> Self {
        FaultPlan { period, calls: 0 }
    }

    /// Registers a call; returns `true` when this call must fail.
    pub fn should_fail(&mut self) -> bool {
        if self.period == 0 {
            return false;
        }
        self.calls += 1;
        self.calls.is_multiple_of(self.period)
    }

    /// Calls observed so far.
    pub fn calls(&self) -> u64 {
        self.calls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fails() {
        let mut plan = FaultPlan::none();
        for _ in 0..100 {
            assert!(!plan.should_fail());
        }
        assert_eq!(plan.calls(), 0);
    }

    #[test]
    fn every_third_call_fails() {
        let mut plan = FaultPlan::every(3);
        let outcomes: Vec<bool> = (0..9).map(|_| plan.should_fail()).collect();
        assert_eq!(
            outcomes,
            vec![false, false, true, false, false, true, false, false, true]
        );
        assert_eq!(plan.calls(), 9);
    }

    #[test]
    fn every_call_fails_with_period_one() {
        let mut plan = FaultPlan::every(1);
        assert!(plan.should_fail());
        assert!(plan.should_fail());
    }
}
