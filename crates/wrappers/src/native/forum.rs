//! The forum dialect: numbered threads per board, BBCode reply
//! bodies with quotes, epoch-second dates, offset/limit pagination.

use crate::error::WrapperError;
use crate::fault::FaultPlan;
use crate::rate::TokenBucket;
use obs_model::{Corpus, DiscussionId, SourceId, SourceKind, Timestamp};

/// Offset applied to discussion ids to form thread numbers (old
/// forum installations never start at zero).
pub const THREAD_NO_BASE: u64 = 1_000;

/// A thread header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForumThreadRecord {
    /// Thread number (discussion id + [`THREAD_NO_BASE`]).
    pub thread_no: u64,
    /// Board name (the category).
    pub board: String,
    /// Thread subject.
    pub subject: String,
    /// Starter's username.
    pub starter: String,
    /// Start time, epoch seconds (simulation time).
    pub started_epoch: u64,
    /// Whether moderators locked the thread.
    pub locked: bool,
    /// Number of replies.
    pub reply_count: u32,
    /// Aggregate reaction score across the thread.
    pub reaction_total: u32,
}

/// One reply within a thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForumReplyRecord {
    /// Reply number within the thread (1-based).
    pub reply_no: u64,
    /// Author username.
    pub author: String,
    /// BBCode body; quoted replies start with `[quote=#n]`.
    pub body_bbcode: String,
    /// Post time, epoch seconds.
    pub posted_epoch: u64,
}

/// The forum's native API.
#[derive(Debug)]
pub struct ForumApi<'a> {
    corpus: &'a Corpus,
    source: SourceId,
    bucket: TokenBucket,
    faults: FaultPlan,
}

impl<'a> ForumApi<'a> {
    /// Opens the API for one forum source.
    pub fn open(
        corpus: &'a Corpus,
        source: SourceId,
        now: Timestamp,
    ) -> Result<Self, WrapperError> {
        match corpus.source(source) {
            Ok(s) if s.kind == SourceKind::Forum => Ok(ForumApi {
                corpus,
                source,
                bucket: TokenBucket::new(60, 1_200, now),
                faults: FaultPlan::none(),
            }),
            _ => Err(WrapperError::UnknownSource(source)),
        }
    }

    /// Installs a fault-injection plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    fn meter(&mut self, now: Timestamp) -> Result<(), WrapperError> {
        self.bucket.try_take(now).map_err(WrapperError::from)?;
        if self.faults.should_fail() {
            return Err(WrapperError::Transient("forum: database timeout"));
        }
        Ok(())
    }

    /// Lists thread headers with offset/limit; also returns the total
    /// thread count.
    pub fn threads(
        &mut self,
        now: Timestamp,
        offset: usize,
        limit: usize,
    ) -> Result<(Vec<ForumThreadRecord>, usize), WrapperError> {
        self.meter(now)?;
        let all = self.corpus.discussions_of_source(self.source);
        let total = all.len();
        if offset > total {
            return Err(WrapperError::BadCursor(format!(
                "offset {offset} > total {total}"
            )));
        }
        let slice = &all[offset..(offset + limit).min(total)];
        let records = slice
            .iter()
            .map(|&d| self.render_thread(d))
            .collect::<Result<_, _>>()?;
        Ok((records, total))
    }

    /// Lists replies of a thread with offset/limit; also returns the
    /// total reply count.
    pub fn replies(
        &mut self,
        now: Timestamp,
        thread_no: u64,
        offset: usize,
        limit: usize,
    ) -> Result<(Vec<ForumReplyRecord>, usize), WrapperError> {
        self.meter(now)?;
        let discussion = discussion_of_thread_no(thread_no)?;
        let d = self
            .corpus
            .discussion(discussion)
            .map_err(|_| WrapperError::BadCursor(format!("thread {thread_no}")))?;
        if d.source != self.source {
            return Err(WrapperError::BadCursor(format!(
                "thread {thread_no} (foreign board)"
            )));
        }
        let comment_ids = self.corpus.comments_of_discussion(discussion);
        let total = comment_ids.len();
        if offset > total {
            return Err(WrapperError::BadCursor(format!(
                "offset {offset} > total {total}"
            )));
        }
        let slice = &comment_ids[offset..(offset + limit).min(total)];
        let records = slice
            .iter()
            .enumerate()
            .map(|(i, &cid)| {
                let c = self.corpus.comment(cid)?;
                let author = self.corpus.user(c.author)?;
                let body = match c
                    .reply_to
                    .and_then(|p| comment_ids.iter().position(|&x| x == p))
                {
                    Some(pos) => format!("[quote=#{}]…[/quote] {}", pos + 1, c.body),
                    None => c.body.clone(),
                };
                Ok(ForumReplyRecord {
                    reply_no: (offset + i + 1) as u64,
                    author: author.handle.clone(),
                    body_bbcode: body,
                    posted_epoch: c.published.seconds(),
                })
            })
            .collect::<Result<_, WrapperError>>()?;
        Ok((records, total))
    }

    fn render_thread(&self, id: DiscussionId) -> Result<ForumThreadRecord, WrapperError> {
        let d = self.corpus.discussion(id)?;
        let starter = self.corpus.user(d.opened_by)?;
        let board = self
            .corpus
            .categories()
            .name(d.category)
            .unwrap_or("general")
            .to_owned();
        let reaction_total: u32 = self
            .corpus
            .comments_of_discussion(id)
            .iter()
            .map(|&c| {
                crate::observation::InteractionCounts::tally(
                    self.corpus,
                    obs_model::ContentRef::Comment(c),
                )
                .active_total()
            })
            .sum();
        Ok(ForumThreadRecord {
            thread_no: id.raw() as u64 + THREAD_NO_BASE,
            board,
            subject: d.title.clone(),
            starter: starter.handle.clone(),
            started_epoch: d.opened_at.seconds(),
            locked: d.closed,
            reply_count: self.corpus.comments_of_discussion(id).len() as u32,
            reaction_total,
        })
    }
}

/// Maps a thread number back to a discussion id.
pub fn discussion_of_thread_no(thread_no: u64) -> Result<DiscussionId, WrapperError> {
    thread_no
        .checked_sub(THREAD_NO_BASE)
        .and_then(|n| u32::try_from(n).ok())
        .map(DiscussionId::new)
        .ok_or_else(|| WrapperError::MappingFailed {
            what: "forum thread number",
            raw: thread_no.to_string(),
        })
}

/// Strips a leading `[quote=#n]…[/quote]` marker, returning the bare
/// body and the quoted reply number.
pub fn strip_quote(body: &str) -> (Option<u64>, &str) {
    if let Some(rest) = body.strip_prefix("[quote=#") {
        if let Some((n, tail)) = rest.split_once(']') {
            if let Ok(n) = n.parse::<u64>() {
                if let Some(tail) = tail.strip_prefix("…[/quote] ") {
                    return (Some(n), tail);
                }
            }
        }
    }
    (None, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs_model::{AccountKind, CorpusBuilder};

    fn forum_corpus() -> (Corpus, SourceId) {
        let mut b = CorpusBuilder::new();
        let cat = b.add_category("transport");
        let forum = b.add_source(SourceKind::Forum, "ask-milano", Timestamp::EPOCH);
        let u1 = b.add_user("u1", AccountKind::Person, Timestamp::EPOCH);
        let u2 = b.add_user("u2", AccountKind::Person, Timestamp::EPOCH);
        for i in 0..5u64 {
            let d = b.add_discussion(
                forum,
                cat,
                format!("thread {i}"),
                u1,
                Timestamp::from_days(i),
            );
            let c = b.add_comment(
                d,
                u2,
                format!("first reply {i}"),
                Timestamp::from_days(i + 1),
            );
            let _ = b.add_reply(d, u1, "agreed", Timestamp::from_days(i + 2), c);
        }
        b.close_discussion(DiscussionId::new(0));
        (b.build(), forum)
    }

    #[test]
    fn threads_listing_with_offset_limit() {
        let (corpus, forum) = forum_corpus();
        let now = Timestamp::from_days(50);
        let mut api = ForumApi::open(&corpus, forum, now).unwrap();
        let (first_two, total) = api.threads(now, 0, 2).unwrap();
        assert_eq!(total, 5);
        assert_eq!(first_two.len(), 2);
        assert_eq!(first_two[0].thread_no, THREAD_NO_BASE);
        assert!(first_two[0].locked);
        assert!(!first_two[1].locked);
        assert_eq!(first_two[0].board, "transport");
        let (rest, _) = api.threads(now, 4, 10).unwrap();
        assert_eq!(rest.len(), 1);
    }

    #[test]
    fn replies_carry_quotes() {
        let (corpus, forum) = forum_corpus();
        let now = Timestamp::from_days(50);
        let mut api = ForumApi::open(&corpus, forum, now).unwrap();
        let (replies, total) = api.replies(now, THREAD_NO_BASE, 0, 10).unwrap();
        assert_eq!(total, 2);
        assert_eq!(replies[0].reply_no, 1);
        let (quoted, bare) = strip_quote(&replies[1].body_bbcode);
        assert_eq!(quoted, Some(1));
        assert_eq!(bare, "agreed");
        let (none, bare0) = strip_quote(&replies[0].body_bbcode);
        assert_eq!(none, None);
        assert_eq!(bare0, "first reply 0");
    }

    #[test]
    fn foreign_thread_is_rejected() {
        let (corpus, forum) = forum_corpus();
        let now = Timestamp::from_days(50);
        let mut api = ForumApi::open(&corpus, forum, now).unwrap();
        assert!(api.replies(now, THREAD_NO_BASE + 999, 0, 10).is_err());
        assert!(api.replies(now, 3, 0, 10).is_err()); // below base
    }

    #[test]
    fn offset_beyond_total_is_bad_cursor() {
        let (corpus, forum) = forum_corpus();
        let now = Timestamp::from_days(50);
        let mut api = ForumApi::open(&corpus, forum, now).unwrap();
        assert!(matches!(
            api.threads(now, 99, 5),
            Err(WrapperError::BadCursor(_))
        ));
    }

    #[test]
    fn thread_no_roundtrip() {
        let d = discussion_of_thread_no(THREAD_NO_BASE + 7).unwrap();
        assert_eq!(d, DiscussionId::new(7));
        assert!(discussion_of_thread_no(2).is_err());
    }
}
