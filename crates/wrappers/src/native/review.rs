//! The review-site dialect: venues with star-rated reviews, day
//! ordinals for visit dates, helpful-vote counters, page-number
//! pagination at both levels.

use crate::error::WrapperError;
use crate::fault::FaultPlan;
use crate::observation::InteractionCounts;
use crate::rate::TokenBucket;
use obs_model::{ContentRef, Corpus, DiscussionId, SourceId, SourceKind, Timestamp};

/// Venues per listing page.
pub const VENUES_PAGE_SIZE: usize = 10;
/// Reviews per venue page.
pub const REVIEWS_PAGE_SIZE: usize = 20;

/// A venue (one reviewable place; maps to a discussion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VenueRecord {
    /// Venue code, e.g. `"V-42"`.
    pub venue_code: String,
    /// Display name.
    pub name: String,
    /// Venue category label.
    pub category: String,
    /// Total review count.
    pub review_count: u32,
}

/// One review of a venue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReviewRecord {
    /// Reviewer username.
    pub reviewer: String,
    /// Star rating 1–5.
    pub stars: u8,
    /// Review text.
    pub text: String,
    /// Day ordinal of the visit (simulation day).
    pub visited_day: u32,
    /// "Was this helpful?" votes.
    pub helpful_votes: u32,
}

/// The review site's native API.
#[derive(Debug)]
pub struct ReviewApi<'a> {
    corpus: &'a Corpus,
    source: SourceId,
    bucket: TokenBucket,
    faults: FaultPlan,
}

impl<'a> ReviewApi<'a> {
    /// Opens the API for one review source.
    pub fn open(
        corpus: &'a Corpus,
        source: SourceId,
        now: Timestamp,
    ) -> Result<Self, WrapperError> {
        match corpus.source(source) {
            Ok(s) if s.kind == SourceKind::ReviewSite => Ok(ReviewApi {
                corpus,
                source,
                bucket: TokenBucket::new(40, 900, now),
                faults: FaultPlan::none(),
            }),
            _ => Err(WrapperError::UnknownSource(source)),
        }
    }

    /// Installs a fault-injection plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    fn meter(&mut self, now: Timestamp) -> Result<(), WrapperError> {
        self.bucket.try_take(now).map_err(WrapperError::from)?;
        if self.faults.should_fail() {
            return Err(WrapperError::Transient("reviews: upstream 503"));
        }
        Ok(())
    }

    /// Lists venues (page-number pagination); returns the page and
    /// the total page count.
    pub fn venues(
        &mut self,
        now: Timestamp,
        page: usize,
    ) -> Result<(Vec<VenueRecord>, usize), WrapperError> {
        self.meter(now)?;
        let all = self.corpus.discussions_of_source(self.source);
        let total_pages = all.len().div_ceil(VENUES_PAGE_SIZE).max(1);
        if page >= total_pages {
            return Err(WrapperError::BadCursor(format!("venue page {page}")));
        }
        let slice = &all
            [page * VENUES_PAGE_SIZE..(page * VENUES_PAGE_SIZE + VENUES_PAGE_SIZE).min(all.len())];
        let venues = slice
            .iter()
            .map(|&d| {
                let disc = self.corpus.discussion(d)?;
                Ok(VenueRecord {
                    venue_code: format!("V-{}", d.raw()),
                    name: disc.title.clone(),
                    category: self
                        .corpus
                        .categories()
                        .name(disc.category)
                        .unwrap_or("misc")
                        .to_owned(),
                    review_count: self.corpus.comments_of_discussion(d).len() as u32,
                })
            })
            .collect::<Result<_, WrapperError>>()?;
        Ok((venues, total_pages))
    }

    /// Lists one page of a venue's reviews; returns the page and the
    /// total page count.
    pub fn reviews(
        &mut self,
        now: Timestamp,
        venue_code: &str,
        page: usize,
    ) -> Result<(Vec<ReviewRecord>, usize), WrapperError> {
        self.meter(now)?;
        let discussion = discussion_of_venue_code(venue_code)?;
        let d = self
            .corpus
            .discussion(discussion)
            .map_err(|_| WrapperError::BadCursor(venue_code.to_owned()))?;
        if d.source != self.source {
            return Err(WrapperError::BadCursor(format!(
                "{venue_code} (foreign venue)"
            )));
        }
        let comments = self.corpus.comments_of_discussion(discussion);
        let total_pages = comments.len().div_ceil(REVIEWS_PAGE_SIZE).max(1);
        if page >= total_pages {
            return Err(WrapperError::BadCursor(format!("review page {page}")));
        }
        let slice = &comments[page * REVIEWS_PAGE_SIZE
            ..(page * REVIEWS_PAGE_SIZE + REVIEWS_PAGE_SIZE).min(comments.len())];
        let reviews = slice
            .iter()
            .map(|&cid| {
                let c = self.corpus.comment(cid)?;
                let reviewer = self.corpus.user(c.author)?;
                let counts = InteractionCounts::tally(self.corpus, ContentRef::Comment(cid));
                Ok(ReviewRecord {
                    reviewer: reviewer.handle.clone(),
                    // The platform's own star widget; deterministic
                    // synthetic rating (not used by the wrapper).
                    stars: (1 + (cid.raw() * 7 + 3) % 5) as u8,
                    text: c.body.clone(),
                    visited_day: c.published.days() as u32,
                    helpful_votes: counts.feedbacks,
                })
            })
            .collect::<Result<_, WrapperError>>()?;
        Ok((reviews, total_pages))
    }
}

/// Maps a venue code back to a discussion id.
pub fn discussion_of_venue_code(code: &str) -> Result<DiscussionId, WrapperError> {
    code.strip_prefix("V-")
        .and_then(|n| n.parse::<u32>().ok())
        .map(DiscussionId::new)
        .ok_or_else(|| WrapperError::MappingFailed {
            what: "venue code",
            raw: code.to_owned(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs_model::{AccountKind, CorpusBuilder, InteractionKind};

    fn review_corpus() -> (Corpus, SourceId) {
        let mut b = CorpusBuilder::new();
        let cat = b.add_category("restaurants");
        let r = b.add_source(SourceKind::ReviewSite, "tastemap", Timestamp::EPOCH);
        let u = b.add_user("critic", AccountKind::Person, Timestamp::EPOCH);
        let v = b.add_user("foodie", AccountKind::Person, Timestamp::EPOCH);
        for i in 0..12u64 {
            let d = b.add_discussion(r, cat, format!("osteria {i}"), u, Timestamp::from_days(i));
            for j in 0..3u64 {
                let c = b.add_comment(
                    d,
                    v,
                    format!("review {i}-{j}"),
                    Timestamp::from_days(i + j + 1),
                );
                if j == 0 {
                    b.add_interaction(
                        u,
                        ContentRef::Comment(c),
                        InteractionKind::Feedback,
                        Timestamp::from_days(i + 5),
                    );
                }
            }
        }
        (b.build(), r)
    }

    #[test]
    fn venue_listing_paginates() {
        let (corpus, r) = review_corpus();
        let now = Timestamp::from_days(60);
        let mut api = ReviewApi::open(&corpus, r, now).unwrap();
        let (page0, total) = api.venues(now, 0).unwrap();
        assert_eq!(total, 2);
        assert_eq!(page0.len(), 10);
        assert_eq!(page0[0].venue_code, "V-0");
        assert_eq!(page0[0].review_count, 3);
        assert_eq!(page0[0].category, "restaurants");
        let (page1, _) = api.venues(now, 1).unwrap();
        assert_eq!(page1.len(), 2);
    }

    #[test]
    fn reviews_expose_helpful_votes_and_days() {
        let (corpus, r) = review_corpus();
        let now = Timestamp::from_days(60);
        let mut api = ReviewApi::open(&corpus, r, now).unwrap();
        let (reviews, pages) = api.reviews(now, "V-0", 0).unwrap();
        assert_eq!(pages, 1);
        assert_eq!(reviews.len(), 3);
        assert_eq!(reviews[0].helpful_votes, 1);
        assert_eq!(reviews[1].helpful_votes, 0);
        assert_eq!(reviews[0].visited_day, 1);
        assert!((1..=5).contains(&reviews[0].stars));
    }

    #[test]
    fn bad_venue_codes_are_rejected() {
        let (corpus, r) = review_corpus();
        let now = Timestamp::from_days(60);
        let mut api = ReviewApi::open(&corpus, r, now).unwrap();
        assert!(api.reviews(now, "V-999", 0).is_err());
        assert!(api.reviews(now, "X-1", 0).is_err());
        assert!(matches!(
            discussion_of_venue_code("nope"),
            Err(WrapperError::MappingFailed { .. })
        ));
    }

    #[test]
    fn non_review_source_is_rejected() {
        let mut b = CorpusBuilder::new();
        b.add_category("c");
        let wiki = b.add_source(SourceKind::Wiki, "w", Timestamp::EPOCH);
        let corpus = b.build();
        assert!(ReviewApi::open(&corpus, wiki, Timestamp::EPOCH).is_err());
    }
}
