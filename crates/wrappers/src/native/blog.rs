//! The blog dialect: permalinked posts with inline comment trails,
//! pseudo-ISO dates, HTML bodies, and page-number pagination.

use crate::error::WrapperError;
use crate::fault::FaultPlan;
use crate::rate::TokenBucket;
use obs_model::{Corpus, DiscussionId, SourceId, SourceKind, Timestamp};

/// Posts per page.
pub const PAGE_SIZE: usize = 10;

/// A comment as the blog platform renders it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlogCommentRecord {
    /// Display name of the commenter.
    pub commenter: String,
    /// Pseudo-ISO timestamp, e.g. `"d12T08:30:45"`.
    pub posted_iso: String,
    /// HTML body.
    pub html_body: String,
    /// Index (within this post's trail) of the comment replied to.
    pub in_reply_to_index: Option<usize>,
}

/// A post as the blog platform renders it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlogPostRecord {
    /// Permalink; encodes the discussion id as `…/post-<n>`.
    pub permalink: String,
    /// Post title.
    pub title: String,
    /// HTML body.
    pub html_body: String,
    /// Author display name.
    pub author_name: String,
    /// Pseudo-ISO timestamp.
    pub posted_iso: String,
    /// Labels (the platform's word for tags).
    pub labels: Vec<String>,
    /// Geo attribute as `"lat,lon"` when the author shared one.
    pub geo_attr: Option<String>,
    /// Like counter rendered on the post.
    pub like_count: u32,
    /// Share counter rendered on the post.
    pub share_count: u32,
    /// Whether comments were closed by the author.
    pub comments_closed: bool,
    /// The comment trail, oldest first.
    pub comments: Vec<BlogCommentRecord>,
}

/// A page of blog posts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlogPage {
    /// Posts on this page, oldest first.
    pub posts: Vec<BlogPostRecord>,
    /// Zero-based page index served.
    pub page: usize,
    /// Total number of pages.
    pub total_pages: usize,
}

/// Renders a timestamp in the blog's pseudo-ISO dialect.
pub fn format_iso(t: Timestamp) -> String {
    let day = t.days();
    let rem = t.seconds() % obs_model::SECONDS_PER_DAY;
    format!(
        "d{day}T{:02}:{:02}:{:02}",
        rem / 3600,
        (rem % 3600) / 60,
        rem % 60
    )
}

/// Parses the blog's pseudo-ISO dialect back into a timestamp.
pub fn parse_iso(s: &str) -> Result<Timestamp, WrapperError> {
    let bad = || WrapperError::MappingFailed {
        what: "blog date",
        raw: s.to_owned(),
    };
    let rest = s.strip_prefix('d').ok_or_else(bad)?;
    let (day, clock) = rest.split_once('T').ok_or_else(bad)?;
    let day: u64 = day.parse().map_err(|_| bad())?;
    let mut parts = clock.split(':');
    let hh: u64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let mm: u64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let ss: u64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    if parts.next().is_some() || hh >= 24 || mm >= 60 || ss >= 60 {
        return Err(bad());
    }
    Ok(Timestamp(
        day * obs_model::SECONDS_PER_DAY + hh * 3600 + mm * 60 + ss,
    ))
}

/// The blog's native API, backed by the corpus.
#[derive(Debug)]
pub struct BlogApi<'a> {
    corpus: &'a Corpus,
    source: SourceId,
    bucket: TokenBucket,
    faults: FaultPlan,
}

impl<'a> BlogApi<'a> {
    /// Opens the API for one blog source. Errors when the source is
    /// not a blog.
    pub fn open(
        corpus: &'a Corpus,
        source: SourceId,
        now: Timestamp,
    ) -> Result<Self, WrapperError> {
        match corpus.source(source) {
            Ok(s) if s.kind == SourceKind::Blog => Ok(BlogApi {
                corpus,
                source,
                bucket: TokenBucket::new(30, 600, now),
                faults: FaultPlan::none(),
            }),
            _ => Err(WrapperError::UnknownSource(source)),
        }
    }

    /// Installs a fault-injection plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Replaces the rate-limit bucket (quota-exhaustion hook for
    /// tests — e.g. a zero-rate bucket that never refills).
    pub fn with_rate_limit(mut self, bucket: TokenBucket) -> Self {
        self.bucket = bucket;
        self
    }

    /// Fetches one page of posts (oldest first).
    pub fn posts_page(&mut self, now: Timestamp, page: usize) -> Result<BlogPage, WrapperError> {
        self.bucket.try_take(now).map_err(WrapperError::from)?;
        if self.faults.should_fail() {
            return Err(WrapperError::Transient("blog: 502 bad gateway"));
        }

        let discussions = self.corpus.discussions_of_source(self.source);
        let total_pages = discussions.len().div_ceil(PAGE_SIZE).max(1);
        if page >= total_pages {
            return Err(WrapperError::BadCursor(format!(
                "page {page} of {total_pages}"
            )));
        }
        let slice =
            &discussions[page * PAGE_SIZE..(page * PAGE_SIZE + PAGE_SIZE).min(discussions.len())];
        let posts = slice
            .iter()
            .map(|&d| self.render_post(d))
            .collect::<Result<_, _>>()?;
        Ok(BlogPage {
            posts,
            page,
            total_pages,
        })
    }

    fn render_post(&self, id: DiscussionId) -> Result<BlogPostRecord, WrapperError> {
        let d = self.corpus.discussion(id)?;
        let post = self.corpus.post(d.root_post)?;
        let author = self.corpus.user(post.author)?;
        let counts = crate::observation::InteractionCounts::tally(
            self.corpus,
            obs_model::ContentRef::Post(post.id),
        );

        let comment_ids = self.corpus.comments_of_discussion(id);
        let comments = comment_ids
            .iter()
            .map(|&cid| {
                let c = self.corpus.comment(cid)?;
                let commenter = self.corpus.user(c.author)?;
                Ok(BlogCommentRecord {
                    commenter: commenter.handle.clone(),
                    posted_iso: format_iso(c.published),
                    html_body: format!("<p>{}</p>", c.body),
                    in_reply_to_index: c
                        .reply_to
                        .and_then(|parent| comment_ids.iter().position(|&x| x == parent)),
                })
            })
            .collect::<Result<_, WrapperError>>()?;

        Ok(BlogPostRecord {
            permalink: format!("{}/post-{}", self.corpus.source(self.source)?.url, id.raw()),
            title: d.title.clone(),
            html_body: format!("<p>{}</p>", post.body),
            author_name: author.handle.clone(),
            posted_iso: format_iso(post.published),
            labels: post.tags.iter().map(|t| t.as_str().to_owned()).collect(),
            geo_attr: post.geo.map(|g| format!("{:.5},{:.5}", g.lat, g.lon)),
            like_count: counts.likes,
            share_count: counts.shares,
            comments_closed: d.closed,
            comments,
        })
    }
}

/// Extracts the discussion id from a blog permalink.
pub fn discussion_of_permalink(permalink: &str) -> Result<DiscussionId, WrapperError> {
    permalink
        .rsplit_once("/post-")
        .and_then(|(_, n)| n.parse::<u32>().ok())
        .map(DiscussionId::new)
        .ok_or_else(|| WrapperError::MappingFailed {
            what: "blog permalink",
            raw: permalink.to_owned(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs_model::{AccountKind, CorpusBuilder};

    fn blog_corpus() -> (Corpus, SourceId) {
        let mut b = CorpusBuilder::new();
        let cat = b.add_category("attractions");
        let blog = b.add_source(SourceKind::Blog, "milan-diaries", Timestamp::EPOCH);
        let ada = b.add_user("ada", AccountKind::Person, Timestamp::EPOCH);
        let eve = b.add_user("eve", AccountKind::Person, Timestamp::EPOCH);
        for i in 0..23u64 {
            let (d, _) = b.add_discussion_with_post(
                blog,
                cat,
                format!("post number {i}"),
                ada,
                Timestamp::from_days(i + 1),
                format!("body {i}"),
                vec![obs_model::Tag::new("duomo")],
                None,
            );
            let c1 = b.add_comment(d, eve, "nice!", Timestamp::from_days(i + 2));
            let _ = b.add_reply(d, ada, "thanks", Timestamp::from_days(i + 3), c1);
        }
        (b.build(), blog)
    }

    #[test]
    fn iso_roundtrip() {
        for t in [
            Timestamp::EPOCH,
            Timestamp(86_399),
            Timestamp::from_days(45).plus(obs_model::Duration(3_723)),
        ] {
            assert_eq!(parse_iso(&format_iso(t)).unwrap(), t);
        }
    }

    #[test]
    fn iso_rejects_garbage() {
        for bad in [
            "",
            "12T00:00:00",
            "dxTy",
            "d1T25:00:00",
            "d1T00:61:00",
            "d1T00:00:00:00",
        ] {
            assert!(parse_iso(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn pagination_covers_all_posts_without_duplicates() {
        let (corpus, blog) = blog_corpus();
        let now = Timestamp::from_days(100);
        let mut api = BlogApi::open(&corpus, blog, now).unwrap();
        let first = api.posts_page(now, 0).unwrap();
        assert_eq!(first.total_pages, 3);
        let mut seen = Vec::new();
        for page in 0..first.total_pages {
            let p = api.posts_page(now, page).unwrap();
            for post in &p.posts {
                seen.push(post.permalink.clone());
            }
        }
        assert_eq!(seen.len(), 23);
        let unique: std::collections::HashSet<_> = seen.iter().collect();
        assert_eq!(unique.len(), 23);
    }

    #[test]
    fn out_of_range_page_is_a_bad_cursor() {
        let (corpus, blog) = blog_corpus();
        let now = Timestamp::from_days(100);
        let mut api = BlogApi::open(&corpus, blog, now).unwrap();
        assert!(matches!(
            api.posts_page(now, 99),
            Err(WrapperError::BadCursor(_))
        ));
    }

    #[test]
    fn comment_trail_preserves_reply_structure() {
        let (corpus, blog) = blog_corpus();
        let now = Timestamp::from_days(100);
        let mut api = BlogApi::open(&corpus, blog, now).unwrap();
        let page = api.posts_page(now, 0).unwrap();
        let post = &page.posts[0];
        assert_eq!(post.comments.len(), 2);
        assert_eq!(post.comments[0].in_reply_to_index, None);
        assert_eq!(post.comments[1].in_reply_to_index, Some(0));
        assert!(post.comments[0].html_body.starts_with("<p>"));
    }

    #[test]
    fn rate_limit_kicks_in_and_recovers() {
        let (corpus, blog) = blog_corpus();
        let now = Timestamp::from_days(100);
        let mut api = BlogApi::open(&corpus, blog, now).unwrap();
        let mut limited = false;
        for _ in 0..40 {
            match api.posts_page(now, 0) {
                Ok(_) => {}
                Err(WrapperError::RateLimited { retry_after_secs }) => {
                    limited = true;
                    assert!(retry_after_secs > 0);
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(limited, "burst of 30 must exhaust the bucket");
        // After waiting, the call succeeds again.
        let later = now.plus(obs_model::Duration(60));
        assert!(api.posts_page(later, 0).is_ok());
    }

    #[test]
    fn fault_plan_injects_transient_errors() {
        let (corpus, blog) = blog_corpus();
        let now = Timestamp::from_days(100);
        let mut api = BlogApi::open(&corpus, blog, now)
            .unwrap()
            .with_faults(FaultPlan::every(2));
        assert!(api.posts_page(now, 0).is_ok());
        assert!(matches!(
            api.posts_page(now, 0),
            Err(WrapperError::Transient(_))
        ));
    }

    #[test]
    fn non_blog_sources_are_rejected() {
        let mut b = CorpusBuilder::new();
        b.add_category("c");
        let forum = b.add_source(SourceKind::Forum, "f", Timestamp::EPOCH);
        let corpus = b.build();
        assert!(matches!(
            BlogApi::open(&corpus, forum, Timestamp::EPOCH),
            Err(WrapperError::UnknownSource(_))
        ));
    }

    #[test]
    fn permalink_roundtrip() {
        let (corpus, blog) = blog_corpus();
        let now = Timestamp::from_days(100);
        let mut api = BlogApi::open(&corpus, blog, now).unwrap();
        let page = api.posts_page(now, 0).unwrap();
        let d = discussion_of_permalink(&page.posts[3].permalink).unwrap();
        assert_eq!(corpus.discussion(d).unwrap().title, "post number 3");
        assert!(discussion_of_permalink("https://x.example/about").is_err());
    }
}
