//! The microblog dialect: a cursor-paged reverse-chronological
//! timeline of statuses with snowflake ids, millisecond timestamps,
//! counters and hashtags.

use crate::error::WrapperError;
use crate::fault::FaultPlan;
use crate::observation::InteractionCounts;
use crate::rate::TokenBucket;
use obs_model::{CommentId, ContentRef, Corpus, PostId, SourceId, SourceKind, Timestamp};

/// Statuses per timeline page.
pub const PAGE_SIZE: usize = 50;

const KIND_BIT: u64 = 1 << 21;
const RAW_MASK: u64 = KIND_BIT - 1;

/// Builds a snowflake-style status id: time-ordered, kind-tagged.
pub fn encode_status_id(published: Timestamp, content: ContentRef) -> u64 {
    let (kind_bit, raw) = match content {
        ContentRef::Post(p) => (0, p.raw() as u64),
        ContentRef::Comment(c) => (KIND_BIT, c.raw() as u64),
    };
    debug_assert!(raw <= RAW_MASK, "raw id overflows snowflake layout");
    (published.seconds() << 22) | kind_bit | (raw & RAW_MASK)
}

/// Decodes a snowflake id back into `(published, content)`.
pub fn decode_status_id(id: u64) -> (Timestamp, ContentRef) {
    let ts = Timestamp(id >> 22);
    let raw = (id & RAW_MASK) as u32;
    let content = if id & KIND_BIT != 0 {
        ContentRef::Comment(CommentId::new(raw))
    } else {
        ContentRef::Post(PostId::new(raw))
    };
    (ts, content)
}

/// One status as the platform serves it.
#[derive(Debug, Clone, PartialEq)]
pub struct StatusRecord {
    /// Snowflake id.
    pub status_id: u64,
    /// Author handle.
    pub handle: String,
    /// Status text.
    pub text: String,
    /// Milliseconds since the (simulation) epoch.
    pub unix_ms: u64,
    /// Id of the status this replies to, when a reply.
    pub in_reply_to: Option<u64>,
    /// Geo point as `(lat, lon)`.
    pub point: Option<(f64, f64)>,
    /// Retweet counter.
    pub retweets: u32,
    /// Reply/mention counter.
    pub replies_at: u32,
    /// Favourite (like) counter.
    pub favs: u32,
    /// Hashtags (posts carry the discussion tags).
    pub hashtags: Vec<String>,
}

/// The microblog's native API.
#[derive(Debug)]
pub struct MicroblogApi<'a> {
    corpus: &'a Corpus,
    #[allow(dead_code)] // identity kept for symmetry with the other APIs
    source: SourceId,
    bucket: TokenBucket,
    faults: FaultPlan,
    /// Status ids, descending (the timeline order), built lazily.
    timeline: Vec<u64>,
}

impl<'a> MicroblogApi<'a> {
    /// Opens the API for one microblog source.
    pub fn open(
        corpus: &'a Corpus,
        source: SourceId,
        now: Timestamp,
    ) -> Result<Self, WrapperError> {
        match corpus.source(source) {
            Ok(s) if s.kind == SourceKind::Microblog => {
                let mut timeline = Vec::new();
                for &d in corpus.discussions_of_source(source) {
                    let disc = corpus.discussion(d)?;
                    let post = corpus.post(disc.root_post)?;
                    timeline.push(encode_status_id(post.published, ContentRef::Post(post.id)));
                    for &c in corpus.comments_of_discussion(d) {
                        let comment = corpus.comment(c)?;
                        timeline.push(encode_status_id(
                            comment.published,
                            ContentRef::Comment(comment.id),
                        ));
                    }
                }
                timeline.sort_unstable_by(|a, b| b.cmp(a));
                Ok(MicroblogApi {
                    corpus,
                    source,
                    bucket: TokenBucket::new(100, 3_000, now),
                    faults: FaultPlan::none(),
                    timeline,
                })
            }
            _ => Err(WrapperError::UnknownSource(source)),
        }
    }

    /// Installs a fault-injection plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Fetches a timeline page: statuses with id strictly below
    /// `max_id` (or the newest when `None`), newest first. Returns
    /// the next cursor, `None` once exhausted.
    pub fn timeline(
        &mut self,
        now: Timestamp,
        max_id: Option<u64>,
    ) -> Result<(Vec<StatusRecord>, Option<u64>), WrapperError> {
        self.bucket.try_take(now).map_err(WrapperError::from)?;
        if self.faults.should_fail() {
            return Err(WrapperError::Transient("microblog: over capacity"));
        }

        let start = match max_id {
            None => 0,
            Some(cursor) => self.timeline.partition_point(|&id| id >= cursor),
        };
        let page: Vec<u64> = self.timeline[start..]
            .iter()
            .take(PAGE_SIZE)
            .copied()
            .collect();
        let next = if start + page.len() < self.timeline.len() {
            page.last().copied()
        } else {
            None
        };
        let records = page
            .into_iter()
            .map(|id| self.render(id))
            .collect::<Result<_, _>>()?;
        Ok((records, next))
    }

    fn render(&self, status_id: u64) -> Result<StatusRecord, WrapperError> {
        let (published, content) = decode_status_id(status_id);
        let counts = InteractionCounts::tally(self.corpus, content);
        match content {
            ContentRef::Post(p) => {
                let post = self.corpus.post(p)?;
                let author = self.corpus.user(post.author)?;
                Ok(StatusRecord {
                    status_id,
                    handle: author.handle.clone(),
                    text: post.body.clone(),
                    unix_ms: published.seconds() * 1_000,
                    in_reply_to: None,
                    point: post.geo.map(|g| (g.lat, g.lon)),
                    retweets: counts.retweets,
                    replies_at: counts.mentions,
                    favs: counts.likes,
                    hashtags: post.tags.iter().map(|t| t.as_str().to_owned()).collect(),
                })
            }
            ContentRef::Comment(c) => {
                let comment = self.corpus.comment(c)?;
                let author = self.corpus.user(comment.author)?;
                // A reply's parent status: the replied comment, or the
                // discussion's root post.
                let parent = match comment.reply_to {
                    Some(parent) => {
                        let pc = self.corpus.comment(parent)?;
                        encode_status_id(pc.published, ContentRef::Comment(parent))
                    }
                    None => {
                        let d = self.corpus.discussion(comment.discussion)?;
                        let root = self.corpus.post(d.root_post)?;
                        encode_status_id(root.published, ContentRef::Post(root.id))
                    }
                };
                Ok(StatusRecord {
                    status_id,
                    handle: author.handle.clone(),
                    text: comment.body.clone(),
                    unix_ms: published.seconds() * 1_000,
                    in_reply_to: Some(parent),
                    point: comment.geo.map(|g| (g.lat, g.lon)),
                    retweets: counts.retweets,
                    replies_at: counts.mentions,
                    favs: counts.likes,
                    hashtags: Vec::new(),
                })
            }
        }
    }

    /// Total statuses on the timeline.
    pub fn status_count(&self) -> usize {
        self.timeline.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs_model::{AccountKind, CorpusBuilder, InteractionKind};

    fn micro_corpus() -> (Corpus, SourceId) {
        let mut b = CorpusBuilder::new();
        let cat = b.add_category("events");
        let m = b.add_source(SourceKind::Microblog, "chirper", Timestamp::EPOCH);
        let u = b.add_user("u", AccountKind::Person, Timestamp::EPOCH);
        let v = b.add_user("v", AccountKind::Person, Timestamp::EPOCH);
        for i in 0..60u64 {
            let (d, p) = b.add_discussion_with_post(
                m,
                cat,
                format!("tweet {i}"),
                u,
                Timestamp::from_hours(i + 1),
                format!("status text {i}"),
                vec![obs_model::Tag::new("expo")],
                None,
            );
            if i % 3 == 0 {
                b.add_comment(d, v, format!("reply to {i}"), Timestamp::from_hours(i + 2));
                b.add_interaction(
                    v,
                    ContentRef::Post(p),
                    InteractionKind::Retweet,
                    Timestamp::from_hours(i + 3),
                );
            }
        }
        (b.build(), m)
    }

    #[test]
    fn snowflake_roundtrip() {
        let t = Timestamp::from_days(42);
        for content in [
            ContentRef::Post(PostId::new(17)),
            ContentRef::Comment(CommentId::new(99)),
        ] {
            let id = encode_status_id(t, content);
            let (t2, c2) = decode_status_id(id);
            assert_eq!(t2, t);
            assert_eq!(c2, content);
        }
    }

    #[test]
    fn snowflakes_are_time_ordered() {
        let early = encode_status_id(Timestamp::from_hours(1), ContentRef::Post(PostId::new(900)));
        let late = encode_status_id(Timestamp::from_hours(2), ContentRef::Post(PostId::new(1)));
        assert!(late > early);
    }

    #[test]
    fn timeline_pages_cover_everything_in_order() {
        let (corpus, m) = micro_corpus();
        let now = Timestamp::from_days(30);
        let mut api = MicroblogApi::open(&corpus, m, now).unwrap();
        let expected = api.status_count();

        let mut cursor = None;
        let mut collected: Vec<u64> = Vec::new();
        loop {
            let (page, next) = api.timeline(now, cursor).unwrap();
            collected.extend(page.iter().map(|s| s.status_id));
            match next {
                Some(c) => cursor = Some(c),
                None => break,
            }
        }
        assert_eq!(collected.len(), expected);
        // Strictly descending, hence no duplicates.
        for w in collected.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn replies_point_at_their_parent() {
        let (corpus, m) = micro_corpus();
        let now = Timestamp::from_days(30);
        let mut api = MicroblogApi::open(&corpus, m, now).unwrap();
        let (page, _) = api.timeline(now, None).unwrap();
        let reply = page
            .iter()
            .find(|s| s.in_reply_to.is_some())
            .expect("a reply");
        let (_, parent) = decode_status_id(reply.in_reply_to.unwrap());
        assert!(matches!(parent, ContentRef::Post(_)));
        // Replies carry no hashtags in this dialect.
        assert!(reply.hashtags.is_empty());
    }

    #[test]
    fn counters_surface_interactions() {
        let (corpus, m) = micro_corpus();
        let now = Timestamp::from_days(30);
        let mut api = MicroblogApi::open(&corpus, m, now).unwrap();
        let (page, _) = api.timeline(now, None).unwrap();
        let retweeted: u32 = page.iter().map(|s| s.retweets).sum();
        assert!(retweeted > 0, "some statuses must show retweets");
    }

    #[test]
    fn non_microblog_is_rejected() {
        let mut b = CorpusBuilder::new();
        b.add_category("c");
        let blog = b.add_source(SourceKind::Blog, "b", Timestamp::EPOCH);
        let corpus = b.build();
        assert!(MicroblogApi::open(&corpus, blog, Timestamp::EPOCH).is_err());
    }
}
