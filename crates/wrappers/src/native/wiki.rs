//! The wiki dialect: slugged articles with revision histories,
//! day-ordinal dates, offset/limit pagination over articles.

use crate::error::WrapperError;
use crate::fault::FaultPlan;
use crate::rate::TokenBucket;
use obs_model::{Corpus, DiscussionId, SourceId, SourceKind, Timestamp};

/// One revision of an article.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RevisionRecord {
    /// Editor username.
    pub editor: String,
    /// Edit day (simulation day ordinal).
    pub edited_day: u32,
    /// Edit summary.
    pub note: String,
}

/// A wiki article (maps to a discussion; revisions map to comments).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArticleRecord {
    /// URL slug, e.g. `"duomo-tips--17"` (embeds the discussion id).
    pub slug: String,
    /// Article heading.
    pub heading: String,
    /// Current wikitext.
    pub wikitext: String,
    /// Original curator (the opener).
    pub curator: String,
    /// Creation day.
    pub created_day: u32,
    /// Whether the article is protected (closed).
    pub protected: bool,
    /// Revision history, oldest first.
    pub revisions: Vec<RevisionRecord>,
}

/// The wiki's native API.
#[derive(Debug)]
pub struct WikiApi<'a> {
    corpus: &'a Corpus,
    source: SourceId,
    bucket: TokenBucket,
    faults: FaultPlan,
}

impl<'a> WikiApi<'a> {
    /// Opens the API for one wiki source.
    pub fn open(
        corpus: &'a Corpus,
        source: SourceId,
        now: Timestamp,
    ) -> Result<Self, WrapperError> {
        match corpus.source(source) {
            Ok(s) if s.kind == SourceKind::Wiki => Ok(WikiApi {
                corpus,
                source,
                bucket: TokenBucket::new(50, 1_000, now),
                faults: FaultPlan::none(),
            }),
            _ => Err(WrapperError::UnknownSource(source)),
        }
    }

    /// Installs a fault-injection plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Lists articles with offset/limit; also returns the total.
    pub fn articles(
        &mut self,
        now: Timestamp,
        offset: usize,
        limit: usize,
    ) -> Result<(Vec<ArticleRecord>, usize), WrapperError> {
        self.bucket.try_take(now).map_err(WrapperError::from)?;
        if self.faults.should_fail() {
            return Err(WrapperError::Transient("wiki: replication lag"));
        }
        let all = self.corpus.discussions_of_source(self.source);
        let total = all.len();
        if offset > total {
            return Err(WrapperError::BadCursor(format!("offset {offset}")));
        }
        let slice = &all[offset..(offset + limit).min(total)];
        let articles = slice
            .iter()
            .map(|&d| self.render(d))
            .collect::<Result<_, _>>()?;
        Ok((articles, total))
    }

    fn render(&self, id: DiscussionId) -> Result<ArticleRecord, WrapperError> {
        let d = self.corpus.discussion(id)?;
        let post = self.corpus.post(d.root_post)?;
        let curator = self.corpus.user(d.opened_by)?;
        let revisions = self
            .corpus
            .comments_of_discussion(id)
            .iter()
            .map(|&cid| {
                let c = self.corpus.comment(cid)?;
                let editor = self.corpus.user(c.author)?;
                Ok(RevisionRecord {
                    editor: editor.handle.clone(),
                    edited_day: c.published.days() as u32,
                    note: c.body.clone(),
                })
            })
            .collect::<Result<_, WrapperError>>()?;
        Ok(ArticleRecord {
            slug: slug_for(&d.title, id),
            heading: d.title.clone(),
            wikitext: format!("== {} ==\n{}", d.title, post.body),
            curator: curator.handle.clone(),
            created_day: d.opened_at.days() as u32,
            protected: d.closed,
            revisions,
        })
    }
}

/// Builds the slug for an article title + id.
pub fn slug_for(title: &str, id: DiscussionId) -> String {
    let base: String = title
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect();
    format!("{}--{}", base.trim_matches('-'), id.raw())
}

/// Extracts the discussion id from an article slug.
pub fn discussion_of_slug(slug: &str) -> Result<DiscussionId, WrapperError> {
    slug.rsplit_once("--")
        .and_then(|(_, n)| n.parse::<u32>().ok())
        .map(DiscussionId::new)
        .ok_or_else(|| WrapperError::MappingFailed {
            what: "wiki slug",
            raw: slug.to_owned(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs_model::{AccountKind, CorpusBuilder};

    fn wiki_corpus() -> (Corpus, SourceId) {
        let mut b = CorpusBuilder::new();
        let cat = b.add_category("museums");
        let w = b.add_source(SourceKind::Wiki, "milanopedia", Timestamp::EPOCH);
        let u = b.add_user("curator", AccountKind::Person, Timestamp::EPOCH);
        let e = b.add_user("editor", AccountKind::Person, Timestamp::EPOCH);
        for i in 0..4u64 {
            let (d, _) = b.add_discussion_with_post(
                w,
                cat,
                format!("Museum Guide {i}"),
                u,
                Timestamp::from_days(i),
                format!("article body {i}"),
                vec![],
                None,
            );
            b.add_comment(
                d,
                e,
                format!("fixed typos {i}"),
                Timestamp::from_days(i + 1),
            );
        }
        (b.build(), w)
    }

    #[test]
    fn articles_render_with_revisions() {
        let (corpus, w) = wiki_corpus();
        let now = Timestamp::from_days(30);
        let mut api = WikiApi::open(&corpus, w, now).unwrap();
        let (articles, total) = api.articles(now, 0, 10).unwrap();
        assert_eq!(total, 4);
        assert_eq!(articles.len(), 4);
        let a = &articles[0];
        assert_eq!(a.heading, "Museum Guide 0");
        assert!(a.wikitext.starts_with("== "));
        assert_eq!(a.revisions.len(), 1);
        assert_eq!(a.revisions[0].editor, "editor");
        assert!(!a.protected);
    }

    #[test]
    fn slug_roundtrip() {
        let id = DiscussionId::new(17);
        let slug = slug_for("Duomo Tips!", id);
        assert_eq!(slug, "duomo-tips---17".replace("---", "--").as_str());
        assert_eq!(discussion_of_slug(&slug).unwrap(), id);
        assert!(discussion_of_slug("no-id-here").is_err());
    }

    #[test]
    fn offset_limit_pagination() {
        let (corpus, w) = wiki_corpus();
        let now = Timestamp::from_days(30);
        let mut api = WikiApi::open(&corpus, w, now).unwrap();
        let (first, _) = api.articles(now, 0, 2).unwrap();
        let (second, _) = api.articles(now, 2, 2).unwrap();
        assert_eq!(first.len(), 2);
        assert_eq!(second.len(), 2);
        assert_ne!(first[0].slug, second[0].slug);
        assert!(api.articles(now, 99, 2).is_err());
    }

    #[test]
    fn non_wiki_is_rejected() {
        let mut b = CorpusBuilder::new();
        b.add_category("c");
        let blog = b.add_source(SourceKind::Blog, "b", Timestamp::EPOCH);
        let corpus = b.build();
        assert!(WikiApi::open(&corpus, blog, Timestamp::EPOCH).is_err());
    }
}
