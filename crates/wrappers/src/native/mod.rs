//! The five native source APIs.
//!
//! Each module mimics the dialect of one platform family circa the
//! paper's era. They are *deliberately incompatible*: different
//! record shapes, id schemes (permalinks vs thread numbers vs
//! snowflake ids vs venue codes vs slugs), date encodings (pseudo-ISO
//! strings vs epoch seconds vs epoch milliseconds vs day ordinals)
//! and pagination contracts (page numbers vs offset/limit vs cursors).
//! The wrapper layer in [`crate::service`] exists to absorb exactly
//! this heterogeneity.

pub mod blog;
pub mod forum;
pub mod microblog;
pub mod review;
pub mod wiki;
