//! Crawl-side metrics: per-source fetch latency and sweep counters.
//!
//! [`CrawlMetrics`] owns the crawl path's instruments:
//!
//! * `crawl_fetch_ns` — every `DataService::fetch` round-trip, both
//!   as one unlabeled aggregate and per source
//!   (`crawl_fetch_ns{source="…"}`, registered lazily the first time
//!   a source is crawled);
//! * `crawl_pages_total` / `crawl_items_total` — pages fetched and
//!   items observed;
//! * `crawl_rate_denials_total` — rate-limit waits taken;
//! * `crawl_retries_total` — transient-failure retries;
//! * `crawl_sweep_ns` — wall clock of a whole multi-source sweep
//!   (sequential or parallel), recorded for failed sweeps too.
//!
//! The handles are lock-free; the registry mutex is only touched
//! when a *new* source's fetch histogram is first registered
//! (once per source per crawl call, not per fetch). An
//! `Arc<CrawlMetrics>` is shared freely with parallel sweep workers
//! — recording from N threads is the design point. Per-fetch
//! latencies are real wall-clock nanoseconds from the registry's
//! [`TelemetryClock`](obs_telemetry::TelemetryClock) — *not* the
//! simulated [`Clock`](obs_model::Clock) the crawler advances across
//! rate-limit waits — so they measure what the process actually
//! spent, which is what a latency decorator inflates and a parallel
//! sweep overlaps.

use obs_model::SourceId;
use obs_telemetry::{Counter, Histogram, Registry, Stopwatch};
use std::sync::Arc;

/// Lock-free instrument handles for the crawl path.
#[derive(Debug, Clone)]
pub struct CrawlMetrics {
    registry: Arc<Registry>,
    fetch_ns: Histogram,
    pages: Counter,
    items: Counter,
    rate_denials: Counter,
    retries: Counter,
    sweep_ns: Histogram,
}

impl CrawlMetrics {
    /// Registers the crawl instruments in `registry`.
    pub fn new(registry: &Arc<Registry>) -> CrawlMetrics {
        CrawlMetrics {
            registry: Arc::clone(registry),
            fetch_ns: registry.histogram("crawl_fetch_ns"),
            pages: registry.counter("crawl_pages_total"),
            items: registry.counter("crawl_items_total"),
            rate_denials: registry.counter("crawl_rate_denials_total"),
            retries: registry.counter("crawl_retries_total"),
            sweep_ns: registry.histogram("crawl_sweep_ns"),
        }
    }

    /// A stopwatch on the registry clock.
    pub fn stopwatch(&self) -> Stopwatch {
        self.registry.stopwatch()
    }

    /// The per-source fetch-latency histogram for `source`,
    /// registering it on first use. Call once per crawl, not per
    /// fetch — this takes the registry lock.
    pub fn fetch_hist(&self, source: SourceId) -> Histogram {
        self.registry
            .histogram_with("crawl_fetch_ns", &[("source", &source.to_string())])
    }

    /// Records one fetch round-trip into the aggregate and the
    /// caller's per-source histogram.
    pub fn record_fetch(&self, per_source: &Histogram, ns: u64) {
        self.fetch_ns.record(ns);
        per_source.record(ns);
    }

    /// Counts a successfully fetched page.
    pub fn page_fetched(&self) {
        self.pages.inc();
    }

    /// Counts items observed by a finished crawl.
    pub fn items_observed(&self, n: u64) {
        self.items.add(n);
    }

    /// Counts a rate-limit wait.
    pub fn rate_denied(&self) {
        self.rate_denials.inc();
    }

    /// Counts a transient-failure retry.
    pub fn retried(&self) {
        self.retries.inc();
    }

    /// Records one sweep's wall clock.
    pub fn sweep_finished(&self, ns: u64) {
        self.sweep_ns.record(ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs_telemetry::ManualClock;

    #[test]
    fn fetch_records_into_aggregate_and_per_source() {
        let registry = Arc::new(Registry::with_clock(Arc::new(ManualClock::new())));
        let metrics = CrawlMetrics::new(&registry);
        let s7 = metrics.fetch_hist(SourceId::new(7));
        metrics.record_fetch(&s7, 120);
        metrics.record_fetch(&s7, 80);
        let s9 = metrics.fetch_hist(SourceId::new(9));
        metrics.record_fetch(&s9, 40);

        assert_eq!(metrics.fetch_ns.snapshot().count(), 3);
        assert_eq!(metrics.fetch_ns.snapshot().sum(), 240);
        assert_eq!(s7.snapshot().count(), 2);
        assert_eq!(s9.snapshot().sum(), 40);
        // Re-registration returns the same series.
        assert_eq!(metrics.fetch_hist(SourceId::new(7)).snapshot().count(), 2);
    }

    #[test]
    fn counters_expose_under_documented_names() {
        let registry = Arc::new(Registry::new());
        let metrics = CrawlMetrics::new(&registry);
        metrics.page_fetched();
        metrics.items_observed(12);
        metrics.rate_denied();
        metrics.retried();
        metrics.sweep_finished(1_000);
        let text = registry.render_text();
        for needle in [
            "crawl_pages_total 1",
            "crawl_items_total 12",
            "crawl_rate_denials_total 1",
            "crawl_retries_total 1",
            "crawl_sweep_ns_count 1",
            "crawl_fetch_ns_count 0",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }
}
