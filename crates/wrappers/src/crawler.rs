//! The incremental crawl driver.
//!
//! Drives a [`DataService`] to exhaustion while honouring rate limits
//! (waiting on the simulation clock) and retrying transient failures
//! with exponential backoff. Supports incremental re-crawls through a
//! per-source high-water mark, which is how the paper's platform kept
//! its source snapshots fresh without re-reading history.

use crate::error::WrapperError;
use crate::metrics::CrawlMetrics;
use crate::observation::SourceObservation;
use crate::service::{Cursor, DataService};
use obs_model::{Clock, CorpusDelta, Duration, SourceId, Timestamp};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-source incremental-crawl cursors: the publish instant of the
/// newest item each source has ever yielded. A tick loop keeps one
/// of these across ticks so every [`Crawler::crawl_tick`] call only
/// surfaces content the loop has not seen yet.
///
/// The mark is also the unit of crawl-side atomicity: when a tick's
/// delta fails to persist, the mark is rolled back to its pre-tick
/// reading so the unpersisted content stays observable for a retry.
///
/// ```
/// use obs_model::{SourceId, Timestamp};
/// use obs_wrappers::HighWaterMarks;
///
/// let mut marks = HighWaterMarks::new();
/// let source = SourceId::new(7);
///
/// // A tick observed content up to day 3…
/// let before = marks.since(source);
/// marks.advance(source, Timestamp::from_days(3));
/// assert_eq!(marks.since(source), Some(Timestamp::from_days(3)));
///
/// // …but persisting it failed: roll back so a retry re-observes.
/// marks.rollback(source, before);
/// assert_eq!(marks.since(source), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HighWaterMarks {
    marks: HashMap<SourceId, Timestamp>,
}

impl HighWaterMarks {
    /// No source observed yet.
    pub fn new() -> HighWaterMarks {
        HighWaterMarks::default()
    }

    /// The high-water mark of a source, if it has one.
    pub fn since(&self, source: SourceId) -> Option<Timestamp> {
        self.marks.get(&source).copied()
    }

    /// Raises a source's mark to `observed` (never lowers it).
    pub fn advance(&mut self, source: SourceId, observed: Timestamp) {
        let mark = self.marks.entry(source).or_insert(observed);
        if observed > *mark {
            *mark = observed;
        }
    }

    /// Restores a source's mark to an earlier reading of
    /// [`HighWaterMarks::since`] — the failure-path primitive. When a
    /// tick crawls (advancing the mark) but then fails to persist
    /// what it observed, rolling the mark back is what lets a retry
    /// re-observe the otherwise-lost items.
    pub fn rollback(&mut self, source: SourceId, to: Option<Timestamp>) {
        match to {
            Some(mark) => {
                self.marks.insert(source, mark);
            }
            None => {
                self.marks.remove(&source);
            }
        }
    }

    /// Rolls the listed sources back to their readings in `baseline`
    /// — the batched form of [`HighWaterMarks::rollback`], for
    /// persistence layers with **per-partition** failure domains. A
    /// sharded service that commits a sweep's deltas shard by shard
    /// rolls back only the sources routed to the shards that refused,
    /// leaving the marks of successfully committed sources advanced.
    ///
    /// ```
    /// use obs_model::{SourceId, Timestamp};
    /// use obs_wrappers::HighWaterMarks;
    ///
    /// let mut marks = HighWaterMarks::new();
    /// marks.advance(SourceId::new(1), Timestamp::from_days(1));
    /// let baseline = marks.clone();
    ///
    /// // A sweep advances two sources, but source 1 and 2 landed in
    /// // a shard whose commit failed…
    /// marks.advance(SourceId::new(1), Timestamp::from_days(5));
    /// marks.advance(SourceId::new(2), Timestamp::from_days(5));
    ///
    /// // …so exactly those roll back to their pre-sweep readings.
    /// marks.rollback_many([SourceId::new(1), SourceId::new(2)], &baseline);
    /// assert_eq!(marks.since(SourceId::new(1)), Some(Timestamp::from_days(1)));
    /// assert_eq!(marks.since(SourceId::new(2)), None);
    /// ```
    pub fn rollback_many(
        &mut self,
        sources: impl IntoIterator<Item = SourceId>,
        baseline: &HighWaterMarks,
    ) {
        for source in sources {
            self.rollback(source, baseline.since(source));
        }
    }

    /// Number of sources with a mark.
    pub fn len(&self) -> usize {
        self.marks.len()
    }

    /// Whether no source has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.marks.is_empty()
    }
}

/// Crawl policy.
///
/// ```
/// use obs_wrappers::{Crawler, CrawlerConfig};
///
/// // A sweep that fans per-source crawls out across 4 workers.
/// let crawler = Crawler::new(CrawlerConfig {
///     workers: 4,
///     ..CrawlerConfig::default()
/// });
/// assert_eq!(crawler.config().workers, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrawlerConfig {
    /// Maximum consecutive retries of a transient failure before
    /// giving up.
    pub max_retries: u32,
    /// Base backoff after a transient failure, in simulated seconds;
    /// doubles per consecutive retry.
    pub backoff_secs: u64,
    /// Hard cap on fetched pages (runaway-cursor guard).
    pub max_pages: usize,
    /// Worker threads a [`Crawler::crawl_sweep`] fans per-source
    /// crawls across. `1` (the default) keeps the sweep sequential;
    /// higher counts split the service list into contiguous chunks,
    /// one scoped thread each. The burst a sweep returns is
    /// byte-for-byte identical either way — see
    /// [`Crawler::crawl_sweep`] for the determinism contract.
    pub workers: usize,
}

impl Default for CrawlerConfig {
    fn default() -> Self {
        CrawlerConfig {
            max_retries: 5,
            backoff_secs: 30,
            max_pages: 100_000,
            workers: 1,
        }
    }
}

/// What a crawl did, for logs and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CrawlReport {
    /// Pages fetched successfully.
    pub pages: usize,
    /// Items collected.
    pub items: usize,
    /// Transient-failure retries performed.
    pub retries: u32,
    /// Rate-limit waits performed.
    pub rate_limit_waits: u32,
    /// Total simulated seconds spent waiting.
    pub waited_secs: u64,
}

impl CrawlReport {
    /// Folds another report's counters into this one (sweep
    /// aggregation).
    pub fn absorb(&mut self, other: CrawlReport) {
        self.pages += other.pages;
        self.items += other.items;
        self.retries += other.retries;
        self.rate_limit_waits += other.rate_limit_waits;
        self.waited_secs += other.waited_secs;
    }
}

/// What a multi-source sweep did, for logs and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepReport {
    /// Services crawled.
    pub sources: usize,
    /// Services whose tick yielded fresh (non-empty) content.
    pub fresh_sources: usize,
    /// Aggregate of every per-source crawl report.
    pub crawl: CrawlReport,
}

/// The crawl driver.
#[derive(Debug, Clone, Default)]
pub struct Crawler {
    config: CrawlerConfig,
    metrics: Option<Arc<CrawlMetrics>>,
}

impl Crawler {
    /// Creates a driver with the given policy.
    pub fn new(config: CrawlerConfig) -> Self {
        Crawler {
            config,
            metrics: None,
        }
    }

    /// Attaches crawl metrics: every subsequent crawl records
    /// per-fetch latency (aggregate + per source), page/item
    /// counts, rate denials, retries and sweep wall clock into the
    /// metrics' registry. Parallel sweep workers share the same
    /// handles — recording is lock-free.
    pub fn with_metrics(mut self, metrics: Arc<CrawlMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The policy this driver runs under.
    pub fn config(&self) -> &CrawlerConfig {
        &self.config
    }

    /// Fully crawls a service, advancing `clock` across waits.
    pub fn crawl(
        &self,
        service: &mut dyn DataService,
        clock: &mut Clock,
    ) -> Result<(SourceObservation, CrawlReport), WrapperError> {
        self.crawl_since(service, clock, None)
    }

    /// Crawls only items published strictly after `since` (the
    /// incremental mode). The full pagination is still walked — the
    /// native APIs don't support server-side time filters, exactly
    /// like their real counterparts mostly didn't — but the
    /// observation contains only fresh items.
    pub fn crawl_since(
        &self,
        service: &mut dyn DataService,
        clock: &mut Clock,
        since: Option<Timestamp>,
    ) -> Result<(SourceObservation, CrawlReport), WrapperError> {
        let mut report = CrawlReport::default();
        let mut items = Vec::new();
        let mut cursor: Option<Cursor> = None;
        let mut consecutive_retries = 0u32;
        // Register the per-source fetch histogram once per crawl,
        // not per fetch — only this line can take the registry lock.
        let timing = self
            .metrics
            .as_deref()
            .map(|m| (m, m.fetch_hist(service.descriptor().source)));

        while report.pages < self.config.max_pages {
            // Every fetch outcome is timed — a rate denial or a
            // transient failure costs a round-trip too.
            let fetched = match &timing {
                Some((m, per_source)) => {
                    let mut watch = m.stopwatch();
                    let fetched = service.fetch(clock.now(), cursor);
                    m.record_fetch(per_source, watch.lap_ns());
                    fetched
                }
                None => service.fetch(clock.now(), cursor),
            };
            match fetched {
                Ok(page) => {
                    consecutive_retries = 0;
                    report.pages += 1;
                    if let Some((m, _)) = &timing {
                        m.page_fetched();
                    }
                    for item in page.items {
                        if since.is_none_or(|s| item.published > s) {
                            items.push(item);
                        }
                    }
                    match page.next {
                        Some(next) => cursor = Some(next),
                        None => break,
                    }
                }
                Err(WrapperError::RateLimited { retry_after_secs }) => {
                    report.rate_limit_waits += 1;
                    report.waited_secs += retry_after_secs;
                    if let Some((m, _)) = &timing {
                        m.rate_denied();
                    }
                    clock.advance(Duration(retry_after_secs.max(1)));
                }
                Err(e @ WrapperError::Transient(_)) => {
                    if consecutive_retries >= self.config.max_retries {
                        return Err(e);
                    }
                    let backoff = self.config.backoff_secs << consecutive_retries;
                    consecutive_retries += 1;
                    report.retries += 1;
                    report.waited_secs += backoff;
                    if let Some((m, _)) = &timing {
                        m.retried();
                    }
                    clock.advance(Duration(backoff));
                }
                Err(fatal) => return Err(fatal),
            }
        }

        report.items = items.len();
        if let Some((m, _)) = &timing {
            m.items_observed(items.len() as u64);
        }
        Ok((
            SourceObservation {
                source: service.descriptor().source,
                items,
            },
            report,
        ))
    }

    /// One incremental crawl *tick*: crawls items published strictly
    /// after `since` and returns them as the [`CorpusDelta`] they
    /// imply, ready for
    /// `SearchEngine::apply_delta` /
    /// `InvertedIndex::apply_delta` — the path that keeps a live
    /// index fresh without a rebuild.
    ///
    /// The delta's document text is what the wrappers observed: body
    /// plus tags, without the discussion title (the uniform item
    /// model carries none). When exact parity with a from-scratch
    /// corpus build matters, re-derive the text for the observed post
    /// ids with `CorpusDelta::for_posts` — see
    /// `examples/live_index.rs`.
    pub fn crawl_delta(
        &self,
        service: &mut dyn DataService,
        clock: &mut Clock,
        since: Option<Timestamp>,
    ) -> Result<(CorpusDelta, CrawlReport), WrapperError> {
        let (observation, report) = self.crawl_since(service, clock, since)?;
        Ok((observation.to_delta(), report))
    }

    /// One tick of a *stateful* crawl loop: crawls the service since
    /// its recorded high-water mark, advances the mark to the newest
    /// item observed, and returns the [`CorpusDelta`] the tick
    /// implies. Calling this repeatedly with the same `marks` yields
    /// each piece of content exactly once — the contract a journaled
    /// serving layer needs (re-observing an item would re-journal
    /// and double-count it).
    pub fn crawl_tick(
        &self,
        service: &mut dyn DataService,
        clock: &mut Clock,
        marks: &mut HighWaterMarks,
    ) -> Result<(CorpusDelta, CrawlReport), WrapperError> {
        let source = service.descriptor().source;
        let (observation, report) = self.crawl_since(service, clock, marks.since(source))?;
        if let Some(newest) = observation.items.iter().map(|i| i.published).max() {
            marks.advance(source, newest);
        }
        Ok((observation.to_delta(), report))
    }

    /// One sweep over *every* registered service: a
    /// [`Crawler::crawl_tick`] per service, returning the non-empty
    /// per-source deltas of the whole burst (in service order) plus
    /// an aggregate [`SweepReport`]. This is the producer side of
    /// group-commit ingestion — the caller persists the burst under
    /// one fsync and applies it in one amortized pass (one index
    /// detach, one signal re-blend; see
    /// `SearchEngine::apply_deltas`), or folds it into a single
    /// shippable delta with
    /// [`CorpusDelta::coalesce`](obs_model::CorpusDelta::coalesce).
    ///
    /// With [`CrawlerConfig::workers`] > 1 the per-source crawls fan
    /// out across that many scoped worker threads (each service is
    /// handed to exactly one worker), and the results are joined
    /// back **in service order**. Parallel and sequential sweeps are
    /// equivalent down to the byte: the native APIs serve content
    /// independently of the polling instant (only rate metering
    /// reads the clock, and every bucket starts full), so each
    /// worker crawling on a private clock observes exactly the items
    /// the sequential sweep would have, and the slot-ordered join
    /// reassembles the identical burst. The workspace property suite
    /// pins this down to byte-identical journals and bit-identical
    /// BM25 maps.
    ///
    /// All-or-nothing on the crawl side too: if any service's tick
    /// fails, no high-water mark moves — the sequential path rolls
    /// back every mark it had advanced, and the parallel path only
    /// advances marks after every worker has succeeded. None of the
    /// burst was persisted, so all of it must stay observable for
    /// the retry. A worker that *panics* cannot poison the others:
    /// workers share no mutable state, every sibling is joined
    /// before the panic is resumed on the caller's thread, and the
    /// marks are untouched.
    ///
    /// Two caveats on the *failure* path (the success path is
    /// byte-deterministic regardless): when exactly one service
    /// fails, the parallel sweep returns precisely the error the
    /// sequential sweep would have returned; with several failing at
    /// once, which one is surfaced depends on worker timing (once a
    /// failure is observed, siblings stop starting new crawls rather
    /// than finish doomed work). And per-service *internal* state
    /// after a failed sweep — token-bucket levels, fault-plan
    /// counters — is unspecified: a parallel sweep may have crawled
    /// services a sequential sweep would never have reached.
    /// Equivalence is defined over the sweep's outputs: burst,
    /// marks, reports, and (single-failure) error.
    ///
    /// Clock accounting differs between the two modes in the one way
    /// parallelism is the point: the sequential sweep advances
    /// `clock` by the *sum* of every service's simulated waits,
    /// while the parallel sweep advances it by the *maximum* over
    /// workers — concurrent waits overlap. (On a failed parallel
    /// sweep the clock is left at the sweep start.) The per-source
    /// [`CrawlReport`]s, and therefore the aggregate
    /// [`SweepReport`], are identical in both modes *when every
    /// token bucket is full at the sweep start* — a freshly-opened
    /// service list, or persistent services given enough simulated
    /// idle time to refill. Across back-to-back sweeps over
    /// persistent, still-depleted services the two modes enter the
    /// next sweep at different simulated instants (sum vs max), so
    /// the *wait accounting* (`rate_limit_waits`, `waited_secs`) may
    /// diverge; the burst, marks and journal bytes are identical
    /// regardless, because rate denials never change which items a
    /// crawl ultimately observes.
    pub fn crawl_sweep(
        &self,
        services: &mut [Box<dyn DataService + '_>],
        clock: &mut Clock,
        marks: &mut HighWaterMarks,
    ) -> Result<(Vec<CorpusDelta>, SweepReport), WrapperError> {
        // A sweep with two services over the same source only works
        // sequentially (the first tick's mark advance is what makes
        // the second tick empty; workers pre-read the marks and
        // would observe the backlog twice). Registries register a
        // source once, so this is a degenerate input — but byte
        // equivalence must hold for it too.
        let mut seen = std::collections::HashSet::new();
        let distinct = services.iter().all(|s| seen.insert(s.descriptor().source));
        // Sweep wall clock is recorded for failed sweeps too: an
        // operator watching `crawl_sweep_ns` p99 wants to see the
        // cost of retried sweeps, not just the ones that landed.
        let mut watch = self.metrics.as_deref().map(CrawlMetrics::stopwatch);
        let outcome = if self.config.workers <= 1 || services.len() <= 1 || !distinct {
            self.crawl_sweep_sequential(services, clock, marks)
        } else {
            self.crawl_sweep_parallel(services, clock, marks)
        };
        if let (Some(m), Some(w)) = (self.metrics.as_deref(), watch.as_mut()) {
            m.sweep_finished(w.lap_ns());
        }
        outcome
    }

    fn crawl_sweep_sequential(
        &self,
        services: &mut [Box<dyn DataService + '_>],
        clock: &mut Clock,
        marks: &mut HighWaterMarks,
    ) -> Result<(Vec<CorpusDelta>, SweepReport), WrapperError> {
        let mut deltas = Vec::new();
        let mut sweep = SweepReport::default();
        // The sweep is the only writer of `marks` while it runs, so
        // a pre-sweep copy restores every participating source's
        // cursor in one assignment.
        let pre_sweep = marks.clone();
        for service in services.iter_mut() {
            match self.crawl_tick(service.as_mut(), clock, marks) {
                Ok((delta, report)) => {
                    sweep.sources += 1;
                    sweep.crawl.absorb(report);
                    if !delta.is_empty() {
                        sweep.fresh_sources += 1;
                        deltas.push(delta);
                    }
                }
                Err(e) => {
                    *marks = pre_sweep;
                    return Err(e);
                }
            }
        }
        Ok((deltas, sweep))
    }

    fn crawl_sweep_parallel(
        &self,
        services: &mut [Box<dyn DataService + '_>],
        clock: &mut Clock,
        marks: &mut HighWaterMarks,
    ) -> Result<(Vec<CorpusDelta>, SweepReport), WrapperError> {
        // Pre-read every mark on the caller's thread: the workers
        // never touch the shared `marks`, so a failure anywhere
        // leaves them untouched by construction.
        let sinces: Vec<Option<Timestamp>> = services
            .iter()
            .map(|s| marks.since(s.descriptor().source))
            .collect();
        let start = clock.now();
        let workers = self.config.workers.min(services.len());
        let chunk_len = services.len().div_ceil(workers);
        // Workers share this one clone by reference (`&Crawler` is
        // `Copy` into the move closures), so an attached
        // `CrawlMetrics` is shared too, not duplicated per worker.
        let crawler = self.clone();
        let crawler = &crawler;

        // One worker per contiguous chunk of services. Results come
        // back through the join handles — workers share no mutable
        // state, so a panicking or failing worker cannot poison a
        // sibling. The failure flag is advisory: once any worker
        // fails, siblings stop *starting* services (the sweep is
        // doomed, so further crawls are wasted work and — behind a
        // latency decorator — wasted wall clock). Services a worker
        // already started or skipped may still end up with different
        // bucket/fault-counter state than a sequential sweep would
        // have left, which is why equivalence is defined over the
        // sweep's *outputs* (burst, marks, error), and why callers
        // that retry after a failure should treat per-service
        // internal state as unspecified.
        let failed = std::sync::atomic::AtomicBool::new(false);
        type Slot = Result<(SourceId, CorpusDelta, CrawlReport, Option<Timestamp>), WrapperError>;
        let joined: Vec<std::thread::Result<(Vec<Slot>, Timestamp)>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = services
                    .chunks_mut(chunk_len)
                    .zip(sinces.chunks(chunk_len))
                    .map(|(chunk, chunk_sinces)| {
                        let failed = &failed;
                        scope.spawn(move || {
                            let mut local = Clock::starting_at(start);
                            let mut slots: Vec<Slot> = Vec::with_capacity(chunk.len());
                            for (service, &since) in chunk.iter_mut().zip(chunk_sinces) {
                                if failed.load(std::sync::atomic::Ordering::Relaxed) {
                                    break;
                                }
                                let source = service.descriptor().source;
                                match crawler.crawl_since(service.as_mut(), &mut local, since) {
                                    Ok((observation, report)) => {
                                        let newest =
                                            observation.items.iter().map(|i| i.published).max();
                                        slots.push(Ok((
                                            source,
                                            observation.to_delta(),
                                            report,
                                            newest,
                                        )));
                                    }
                                    Err(e) => {
                                        // The sequential sweep stops at
                                        // its first failing service;
                                        // this chunk does too.
                                        failed.store(true, std::sync::atomic::Ordering::Relaxed);
                                        slots.push(Err(e));
                                        break;
                                    }
                                }
                            }
                            (slots, local.now())
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join()).collect()
            });

        // Every worker is joined by now; only then is a panic
        // resumed, so no sibling was abandoned mid-crawl.
        let mut chunks = Vec::with_capacity(joined.len());
        for outcome in joined {
            match outcome {
                Ok(chunk) => chunks.push(chunk),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }

        // Slot-ordered join: chunks are contiguous, so draining them
        // in spawn order reassembles the burst in service order —
        // exactly the sequential sweep's output. Marks advance only
        // after the whole scan proves failure-free; the first error
        // in service order (the one the sequential sweep would have
        // hit first among the services it reached) is returned with
        // the marks and the clock untouched.
        let mut deltas = Vec::new();
        let mut sweep = SweepReport::default();
        let mut advances = Vec::new();
        let mut end = start;
        for (slots, worker_end) in chunks {
            if worker_end > end {
                end = worker_end;
            }
            for slot in slots {
                let (source, delta, report, newest) = slot?;
                sweep.sources += 1;
                sweep.crawl.absorb(report);
                if let Some(newest) = newest {
                    advances.push((source, newest));
                }
                if !delta.is_empty() {
                    sweep.fresh_sources += 1;
                    deltas.push(delta);
                }
            }
        }
        for (source, newest) in advances {
            marks.advance(source, newest);
        }
        // Parallel wall-clock semantics: concurrent simulated waits
        // overlap, so the sweep costs the slowest worker, not the
        // sum of all of them.
        if end > start {
            clock.advance(end.since(start));
        }
        Ok((deltas, sweep))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::native::blog::{BlogApi, PAGE_SIZE};
    use crate::rate::TokenBucket;
    use crate::service::{service_for, BlogService};
    use obs_model::SourceKind;
    use obs_synth::{World, WorldConfig};

    fn world() -> World {
        World::generate(WorldConfig::small(202))
    }

    #[test]
    fn full_crawl_matches_ground_truth() {
        let w = world();
        let crawler = Crawler::default();
        for s in w.corpus.sources() {
            let mut clock = Clock::starting_at(w.now);
            let mut service = service_for(&w.corpus, s.id, w.now).unwrap();
            let (obs, report) = crawler.crawl(service.as_mut(), &mut clock).unwrap();
            let expected: usize = w
                .corpus
                .discussions_of_source(s.id)
                .iter()
                .map(|&d| 1 + w.corpus.comments_of_discussion(d).len())
                .sum();
            assert_eq!(obs.len(), expected);
            assert_eq!(report.items, expected);
            assert!(report.pages >= 1);
        }
    }

    #[test]
    fn incremental_crawl_filters_old_items() {
        let w = world();
        let crawler = Crawler::default();
        let s = w
            .corpus
            .sources()
            .iter()
            .find(|s| !w.corpus.discussions_of_source(s.id).is_empty())
            .unwrap();
        let mut clock = Clock::starting_at(w.now);
        let mut service = service_for(&w.corpus, s.id, w.now).unwrap();
        let (full, _) = crawler.crawl(service.as_mut(), &mut clock).unwrap();

        let midpoint = Timestamp(w.now.seconds() / 2);
        let mut service2 = service_for(&w.corpus, s.id, w.now).unwrap();
        let mut clock2 = Clock::starting_at(w.now);
        let (fresh, _) = crawler
            .crawl_since(service2.as_mut(), &mut clock2, Some(midpoint))
            .unwrap();

        assert!(fresh.len() <= full.len());
        for item in &fresh.items {
            assert!(item.published > midpoint);
        }
        // Old + fresh partition the full crawl.
        let old = full
            .items
            .iter()
            .filter(|i| i.published <= midpoint)
            .count();
        assert_eq!(old + fresh.len(), full.len());
    }

    #[test]
    fn crawl_delta_carries_fresh_posts_and_engagement() {
        let w = world();
        let crawler = Crawler::default();
        let s = w
            .corpus
            .sources()
            .iter()
            .find(|s| !w.corpus.discussions_of_source(s.id).is_empty())
            .unwrap();
        let mut clock = Clock::starting_at(w.now);
        let mut service = service_for(&w.corpus, s.id, w.now).unwrap();
        let (delta, report) = crawler
            .crawl_delta(service.as_mut(), &mut clock, None)
            .unwrap();
        let discussions = w.corpus.discussions_of_source(s.id).len();
        let comments: usize = w
            .corpus
            .discussions_of_source(s.id)
            .iter()
            .map(|&d| w.corpus.comments_of_discussion(d).len())
            .sum();
        assert_eq!(delta.added.len(), discussions);
        assert!(delta.removed.is_empty());
        assert_eq!(report.items, discussions + comments);
        // Engagement folds into a single per-source entry.
        assert_eq!(delta.engagement.len(), 1);
        assert_eq!(delta.engagement[0].source, s.id);
        assert_eq!(delta.engagement[0].discussions, discussions as i64);
        assert_eq!(delta.engagement[0].comments, comments as i64);
        // Every added doc carries indexable text.
        for d in &delta.added {
            assert_eq!(d.source, s.id);
            assert!(!d.text.is_empty());
        }
    }

    #[test]
    fn crawl_delta_since_midpoint_is_a_subset() {
        let w = world();
        let crawler = Crawler::default();
        let s = w
            .corpus
            .sources()
            .iter()
            .find(|s| !w.corpus.discussions_of_source(s.id).is_empty())
            .unwrap();
        let mut clock = Clock::starting_at(w.now);
        let mut service = service_for(&w.corpus, s.id, w.now).unwrap();
        let (full, _) = crawler
            .crawl_delta(service.as_mut(), &mut clock, None)
            .unwrap();
        let midpoint = Timestamp(w.now.seconds() / 2);
        let mut clock2 = Clock::starting_at(w.now);
        let mut service2 = service_for(&w.corpus, s.id, w.now).unwrap();
        let (fresh, _) = crawler
            .crawl_delta(service2.as_mut(), &mut clock2, Some(midpoint))
            .unwrap();
        assert!(fresh.added.len() <= full.added.len());
        for d in &fresh.added {
            assert!(
                full.added.iter().any(|f| f.post == d.post),
                "{} not in the full delta",
                d.post
            );
        }
    }

    #[test]
    fn crawl_tick_observes_each_item_exactly_once() {
        let w = world();
        let crawler = Crawler::default();
        let s = w
            .corpus
            .sources()
            .iter()
            .find(|s| !w.corpus.discussions_of_source(s.id).is_empty())
            .unwrap();
        let mut marks = HighWaterMarks::new();
        assert!(marks.is_empty());

        // First tick sees the whole source…
        let mut clock = Clock::starting_at(w.now);
        let mut service = service_for(&w.corpus, s.id, w.now).unwrap();
        let (first, _) = crawler
            .crawl_tick(service.as_mut(), &mut clock, &mut marks)
            .unwrap();
        assert!(!first.is_empty());
        assert_eq!(marks.len(), 1);
        let mark = marks.since(s.id).expect("mark recorded");

        // …the second tick, nothing new (no content was published in
        // between), and the mark stays put.
        let mut service2 = service_for(&w.corpus, s.id, w.now).unwrap();
        let (second, _) = crawler
            .crawl_tick(service2.as_mut(), &mut clock, &mut marks)
            .unwrap();
        assert!(second.is_empty(), "tick 2 re-observed content");
        assert_eq!(marks.since(s.id), Some(mark));
    }

    #[test]
    fn high_water_marks_never_regress() {
        let mut marks = HighWaterMarks::new();
        let s = obs_model::SourceId::new(3);
        marks.advance(s, Timestamp::from_days(10));
        marks.advance(s, Timestamp::from_days(4));
        assert_eq!(marks.since(s), Some(Timestamp::from_days(10)));
        marks.advance(s, Timestamp::from_days(12));
        assert_eq!(marks.since(s), Some(Timestamp::from_days(12)));
        assert_eq!(marks.since(obs_model::SourceId::new(9)), None);
    }

    #[test]
    fn rollback_restores_a_previous_reading() {
        let mut marks = HighWaterMarks::new();
        let s = obs_model::SourceId::new(3);

        // Roll back to an earlier mark after a failed persist.
        marks.advance(s, Timestamp::from_days(10));
        let before = marks.since(s);
        marks.advance(s, Timestamp::from_days(20));
        marks.rollback(s, before);
        assert_eq!(marks.since(s), Some(Timestamp::from_days(10)));

        // Roll back to "never observed".
        marks.rollback(s, None);
        assert_eq!(marks.since(s), None);
        assert!(marks.is_empty());
    }

    #[test]
    fn transient_faults_are_retried_to_success() {
        // A content-heavy world so the blog spans several pages and
        // the every-2nd-call fault plan is guaranteed to fire.
        let w = World::generate(WorldConfig {
            mean_discussions_per_source: 40.0,
            ..WorldConfig::small(202)
        });
        let blog = w
            .corpus
            .sources()
            .iter()
            .filter(|s| s.kind == SourceKind::Blog)
            .max_by_key(|s| w.corpus.discussions_of_source(s.id).len())
            .expect("a blog");
        assert!(
            w.corpus.discussions_of_source(blog.id).len() > 10,
            "blog must span multiple pages"
        );
        let api = BlogApi::open(&w.corpus, blog.id, w.now)
            .unwrap()
            .with_faults(FaultPlan::every(2));
        let mut service = BlogService::open(&w.corpus, blog.id, w.now)
            .unwrap()
            .with_api(api);
        let mut clock = Clock::starting_at(w.now);
        let crawler = Crawler::default();
        let (obs, report) = crawler.crawl(&mut service, &mut clock).unwrap();
        assert!(report.retries > 0, "faults must have been retried");
        assert!(!obs.is_empty());
    }

    #[test]
    fn persistent_faults_exhaust_retries() {
        let w = world();
        let blog = w
            .corpus
            .sources()
            .iter()
            .find(|s| s.kind == SourceKind::Blog)
            .expect("a blog");
        let api = BlogApi::open(&w.corpus, blog.id, w.now)
            .unwrap()
            .with_faults(FaultPlan::every(1)); // always fail
        let mut service = BlogService::open(&w.corpus, blog.id, w.now)
            .unwrap()
            .with_api(api);
        let mut clock = Clock::starting_at(w.now);
        let crawler = Crawler::new(CrawlerConfig {
            max_retries: 3,
            ..CrawlerConfig::default()
        });
        let err = crawler.crawl(&mut service, &mut clock).unwrap_err();
        assert!(matches!(err, WrapperError::Transient(_)));
    }

    #[test]
    fn zero_rate_service_fails_fast_instead_of_waiting_forever() {
        // Regression: `TokenBucket::try_take` used to encode "never
        // refills" as a u64::MAX wait; the crawler advanced its
        // clock by that wait, overflowing Timestamp arithmetic. A
        // zero-rate service must surface a hard error instead.
        let w = World::generate(WorldConfig {
            mean_discussions_per_source: 40.0,
            ..WorldConfig::small(202)
        });
        let blog = w
            .corpus
            .sources()
            .iter()
            .filter(|s| s.kind == SourceKind::Blog)
            .max_by_key(|s| w.corpus.discussions_of_source(s.id).len())
            .expect("a blog");
        assert!(
            w.corpus.discussions_of_source(blog.id).len() > PAGE_SIZE,
            "blog must need more fetches than the one-token burst"
        );
        let api = BlogApi::open(&w.corpus, blog.id, w.now)
            .unwrap()
            .with_rate_limit(TokenBucket::new(1, 0, w.now));
        let mut service = BlogService::open(&w.corpus, blog.id, w.now)
            .unwrap()
            .with_api(api);
        let mut clock = Clock::starting_at(w.now);
        let crawler = Crawler::default();
        let err = crawler.crawl(&mut service, &mut clock).unwrap_err();
        assert_eq!(err, WrapperError::RateLimitExhausted);
        assert!(!err.is_retryable());
        // No simulated time was burned "waiting out" a limit that
        // never lifts.
        assert_eq!(clock.now(), w.now);
    }

    #[test]
    fn crawl_sweep_ticks_every_service_exactly_once() {
        let w = world();
        let crawler = Crawler::default();
        let mut marks = HighWaterMarks::new();
        let mut services: Vec<Box<dyn DataService + '_>> = w
            .corpus
            .sources()
            .iter()
            .map(|s| service_for(&w.corpus, s.id, w.now).unwrap())
            .collect();
        let mut clock = Clock::starting_at(w.now);
        let (deltas, sweep) = crawler
            .crawl_sweep(&mut services, &mut clock, &mut marks)
            .unwrap();
        assert_eq!(sweep.sources, w.corpus.sources().len());
        assert_eq!(sweep.fresh_sources, deltas.len());
        assert!(deltas.iter().all(|d| !d.is_empty()));
        // The burst covers the whole corpus: one added doc per
        // discussion, across all sources.
        let total_added: usize = deltas.iter().map(|d| d.added.len()).sum();
        let expected: usize = w
            .corpus
            .sources()
            .iter()
            .map(|s| w.corpus.discussions_of_source(s.id).len())
            .sum();
        assert_eq!(total_added, expected);

        // A second sweep observes nothing new anywhere.
        let (again, sweep2) = crawler
            .crawl_sweep(&mut services, &mut clock, &mut marks)
            .unwrap();
        assert!(again.is_empty());
        assert_eq!(sweep2.fresh_sources, 0);
        assert_eq!(sweep2.sources, w.corpus.sources().len());
    }

    #[test]
    fn failed_sweep_rolls_back_every_advanced_mark() {
        let w = world();
        let blogs: Vec<_> = w
            .corpus
            .sources()
            .iter()
            .filter(|s| {
                s.kind == SourceKind::Blog && !w.corpus.discussions_of_source(s.id).is_empty()
            })
            .collect();
        assert!(blogs.len() >= 2, "world needs two content-bearing blogs");
        let (good, bad) = (blogs[0].id, blogs[1].id);

        let bad_api = BlogApi::open(&w.corpus, bad, w.now)
            .unwrap()
            .with_faults(FaultPlan::every(1)); // always fail
        let mut services: Vec<Box<dyn DataService + '_>> = vec![
            service_for(&w.corpus, good, w.now).unwrap(),
            Box::new(
                BlogService::open(&w.corpus, bad, w.now)
                    .unwrap()
                    .with_api(bad_api),
            ),
        ];
        let crawler = Crawler::new(CrawlerConfig {
            max_retries: 2,
            ..CrawlerConfig::default()
        });
        let mut marks = HighWaterMarks::new();
        let mut clock = Clock::starting_at(w.now);
        let err = crawler
            .crawl_sweep(&mut services, &mut clock, &mut marks)
            .unwrap_err();
        assert!(matches!(err, WrapperError::Transient(_)));
        // The good service's tick advanced its mark before the bad
        // one failed; nothing of the sweep was persisted, so the
        // whole burst must stay observable for a retry.
        assert!(marks.is_empty(), "marks survived a failed sweep: {marks:?}");
    }

    #[test]
    fn parallel_sweep_burst_is_identical_to_sequential() {
        let w = world();
        let sequential = Crawler::default();
        for workers in [2, 3, 8, 64] {
            let parallel = Crawler::new(CrawlerConfig {
                workers,
                ..CrawlerConfig::default()
            });

            let mut seq_services: Vec<Box<dyn DataService + '_>> = w
                .corpus
                .sources()
                .iter()
                .map(|s| service_for(&w.corpus, s.id, w.now).unwrap())
                .collect();
            let mut seq_marks = HighWaterMarks::new();
            let mut seq_clock = Clock::starting_at(w.now);
            let (seq_deltas, seq_report) = sequential
                .crawl_sweep(&mut seq_services, &mut seq_clock, &mut seq_marks)
                .unwrap();

            let mut par_services: Vec<Box<dyn DataService + '_>> = w
                .corpus
                .sources()
                .iter()
                .map(|s| service_for(&w.corpus, s.id, w.now).unwrap())
                .collect();
            let mut par_marks = HighWaterMarks::new();
            let mut par_clock = Clock::starting_at(w.now);
            let (par_deltas, par_report) = parallel
                .crawl_sweep(&mut par_services, &mut par_clock, &mut par_marks)
                .unwrap();

            // Same burst in the same order, same aggregate report,
            // same post-sweep marks — worker count is invisible in
            // everything but wall clock.
            assert_eq!(seq_deltas, par_deltas, "workers = {workers}");
            assert_eq!(seq_report, par_report, "workers = {workers}");
            assert_eq!(seq_marks, par_marks, "workers = {workers}");

            // A second parallel sweep observes nothing new.
            let (again, report2) = parallel
                .crawl_sweep(&mut par_services, &mut par_clock, &mut par_marks)
                .unwrap();
            assert!(again.is_empty());
            assert_eq!(report2.fresh_sources, 0);
        }
    }

    #[test]
    fn duplicate_source_services_keep_sequential_semantics_at_any_worker_count() {
        // Two services over the same source: only the first may
        // yield content (its tick advances the shared mark). A
        // parallel sweep pre-reads marks and would observe the
        // backlog twice, so it must detect the duplicate and fall
        // back to the sequential path.
        let w = world();
        let s = w
            .corpus
            .sources()
            .iter()
            .find(|s| !w.corpus.discussions_of_source(s.id).is_empty())
            .unwrap();
        for workers in [1, 4] {
            let mut services: Vec<Box<dyn DataService + '_>> = vec![
                service_for(&w.corpus, s.id, w.now).unwrap(),
                service_for(&w.corpus, s.id, w.now).unwrap(),
            ];
            let crawler = Crawler::new(CrawlerConfig {
                workers,
                ..CrawlerConfig::default()
            });
            let mut marks = HighWaterMarks::new();
            let mut clock = Clock::starting_at(w.now);
            let (deltas, sweep) = crawler
                .crawl_sweep(&mut services, &mut clock, &mut marks)
                .unwrap();
            assert_eq!(
                deltas.len(),
                1,
                "workers = {workers}: the duplicate service re-observed the backlog"
            );
            assert_eq!(sweep.sources, 2);
            assert_eq!(sweep.fresh_sources, 1);
        }
    }

    #[test]
    fn failed_parallel_sweep_advances_no_mark() {
        let w = world();
        let blogs: Vec<_> = w
            .corpus
            .sources()
            .iter()
            .filter(|s| {
                s.kind == SourceKind::Blog && !w.corpus.discussions_of_source(s.id).is_empty()
            })
            .collect();
        assert!(blogs.len() >= 2, "world needs two content-bearing blogs");
        let (good, bad) = (blogs[0].id, blogs[1].id);

        let bad_api = BlogApi::open(&w.corpus, bad, w.now)
            .unwrap()
            .with_faults(FaultPlan::every(1)); // always fail
        let mut services: Vec<Box<dyn DataService + '_>> = vec![
            service_for(&w.corpus, good, w.now).unwrap(),
            Box::new(
                BlogService::open(&w.corpus, bad, w.now)
                    .unwrap()
                    .with_api(bad_api),
            ),
        ];
        let crawler = Crawler::new(CrawlerConfig {
            max_retries: 2,
            workers: 2,
            ..CrawlerConfig::default()
        });
        let mut marks = HighWaterMarks::new();
        let mut clock = Clock::starting_at(w.now);
        let err = crawler
            .crawl_sweep(&mut services, &mut clock, &mut marks)
            .unwrap_err();
        assert!(matches!(err, WrapperError::Transient(_)));
        // The good service's worker crawled to completion, but marks
        // only advance after every worker succeeds: nothing of the
        // burst was persisted, so all of it stays observable.
        assert!(marks.is_empty(), "marks survived a failed sweep: {marks:?}");
        // The failed sweep leaves the clock at the sweep start.
        assert_eq!(clock.now(), w.now);
    }

    /// A service whose fetch panics — a worker crash, not an error.
    struct PanickingService {
        descriptor: crate::service::ServiceDescriptor,
    }

    impl DataService for PanickingService {
        fn descriptor(&self) -> &crate::service::ServiceDescriptor {
            &self.descriptor
        }

        fn fetch(
            &mut self,
            _now: Timestamp,
            _cursor: Option<Cursor>,
        ) -> Result<crate::service::Page, WrapperError> {
            panic!("worker crash injected by test");
        }
    }

    #[test]
    fn panicked_worker_is_resumed_after_siblings_join_and_marks_stay_put() {
        let w = world();
        let mut services: Vec<Box<dyn DataService + '_>> = w
            .corpus
            .sources()
            .iter()
            .map(|s| service_for(&w.corpus, s.id, w.now).unwrap())
            .collect();
        services.push(Box::new(PanickingService {
            descriptor: crate::service::ServiceDescriptor {
                // A source id no real service in the sweep wraps —
                // a duplicate would route the sweep down the
                // sequential path.
                source: SourceId::new(9_999),
                kind: SourceKind::Blog,
                name: "doomed".to_owned(),
            },
        }));
        let crawler = Crawler::new(CrawlerConfig {
            workers: 4,
            ..CrawlerConfig::default()
        });
        let mut marks = HighWaterMarks::new();
        let mut clock = Clock::starting_at(w.now);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crawler.crawl_sweep(&mut services, &mut clock, &mut marks)
        }));
        // The panic propagates to the caller (after every sibling
        // worker was joined), and no mark moved.
        assert!(outcome.is_err(), "worker panic must surface");
        assert!(marks.is_empty(), "marks survived a panicked sweep");
    }

    #[test]
    fn metrics_record_fetches_items_and_sweeps() {
        let w = world();
        let registry = Arc::new(obs_telemetry::Registry::new());
        let metrics = Arc::new(crate::metrics::CrawlMetrics::new(&registry));
        let crawler = Crawler::new(CrawlerConfig {
            workers: 3,
            ..CrawlerConfig::default()
        })
        .with_metrics(Arc::clone(&metrics));

        let mut services: Vec<Box<dyn DataService + '_>> = w
            .corpus
            .sources()
            .iter()
            .map(|s| service_for(&w.corpus, s.id, w.now).unwrap())
            .collect();
        let mut marks = HighWaterMarks::new();
        let mut clock = Clock::starting_at(w.now);
        let (_, sweep) = crawler
            .crawl_sweep(&mut services, &mut clock, &mut marks)
            .unwrap();

        let text = registry.render_text();
        assert!(
            text.contains(&format!("crawl_pages_total {}", sweep.crawl.pages)),
            "page counter mismatch in:\n{text}"
        );
        assert!(
            text.contains(&format!("crawl_items_total {}", sweep.crawl.items)),
            "item counter mismatch in:\n{text}"
        );
        // Every fetch was timed: at least one round-trip per page,
        // in the aggregate and split per source.
        let json = registry.to_json();
        let fetches = json
            .get("crawl_fetch_ns")
            .and_then(|h| h.get("count"))
            .and_then(|c| c.as_u64())
            .unwrap();
        assert!(fetches >= sweep.crawl.pages as u64);
        assert!(text.contains("crawl_fetch_ns{source="));
        assert!(text.contains("crawl_sweep_ns_count 1"));

        // An uninstrumented crawler leaves a fresh registry silent.
        let silent = Arc::new(obs_telemetry::Registry::new());
        assert_eq!(silent.render_text(), "");
    }

    #[test]
    fn rate_limits_advance_the_clock_not_fail() {
        let w = World::generate(WorldConfig {
            mean_discussions_per_source: 60.0,
            ..WorldConfig::small(203)
        });
        let blog = w
            .corpus
            .sources()
            .iter()
            .filter(|s| s.kind == SourceKind::Blog)
            .max_by_key(|s| w.corpus.discussions_of_source(s.id).len())
            .expect("a blog");
        let mut clock = Clock::starting_at(w.now);
        let mut service = service_for(&w.corpus, blog.id, w.now).unwrap();
        let crawler = Crawler::default();
        let (_, report) = crawler.crawl(service.as_mut(), &mut clock).unwrap();
        // A large blog needs > 30 pages, which exceeds the burst.
        if report.pages > 30 {
            assert!(report.rate_limit_waits > 0);
            assert!(clock.now() > w.now);
        }
    }
}
