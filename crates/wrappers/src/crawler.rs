//! The incremental crawl driver.
//!
//! Drives a [`DataService`] to exhaustion while honouring rate limits
//! (waiting on the simulation clock) and retrying transient failures
//! with exponential backoff. Supports incremental re-crawls through a
//! per-source high-water mark, which is how the paper's platform kept
//! its source snapshots fresh without re-reading history.

use crate::error::WrapperError;
use crate::observation::SourceObservation;
use crate::service::{Cursor, DataService};
use obs_model::{Clock, CorpusDelta, Duration, SourceId, Timestamp};
use std::collections::HashMap;

/// Per-source incremental-crawl cursors: the publish instant of the
/// newest item each source has ever yielded. A tick loop keeps one
/// of these across ticks so every [`Crawler::crawl_tick`] call only
/// surfaces content the loop has not seen yet.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HighWaterMarks {
    marks: HashMap<SourceId, Timestamp>,
}

impl HighWaterMarks {
    /// No source observed yet.
    pub fn new() -> HighWaterMarks {
        HighWaterMarks::default()
    }

    /// The high-water mark of a source, if it has one.
    pub fn since(&self, source: SourceId) -> Option<Timestamp> {
        self.marks.get(&source).copied()
    }

    /// Raises a source's mark to `observed` (never lowers it).
    pub fn advance(&mut self, source: SourceId, observed: Timestamp) {
        let mark = self.marks.entry(source).or_insert(observed);
        if observed > *mark {
            *mark = observed;
        }
    }

    /// Restores a source's mark to an earlier reading of
    /// [`HighWaterMarks::since`] — the failure-path primitive. When a
    /// tick crawls (advancing the mark) but then fails to persist
    /// what it observed, rolling the mark back is what lets a retry
    /// re-observe the otherwise-lost items.
    pub fn rollback(&mut self, source: SourceId, to: Option<Timestamp>) {
        match to {
            Some(mark) => {
                self.marks.insert(source, mark);
            }
            None => {
                self.marks.remove(&source);
            }
        }
    }

    /// Number of sources with a mark.
    pub fn len(&self) -> usize {
        self.marks.len()
    }

    /// Whether no source has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.marks.is_empty()
    }
}

/// Crawl policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrawlerConfig {
    /// Maximum consecutive retries of a transient failure before
    /// giving up.
    pub max_retries: u32,
    /// Base backoff after a transient failure, in simulated seconds;
    /// doubles per consecutive retry.
    pub backoff_secs: u64,
    /// Hard cap on fetched pages (runaway-cursor guard).
    pub max_pages: usize,
}

impl Default for CrawlerConfig {
    fn default() -> Self {
        CrawlerConfig {
            max_retries: 5,
            backoff_secs: 30,
            max_pages: 100_000,
        }
    }
}

/// What a crawl did, for logs and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CrawlReport {
    /// Pages fetched successfully.
    pub pages: usize,
    /// Items collected.
    pub items: usize,
    /// Transient-failure retries performed.
    pub retries: u32,
    /// Rate-limit waits performed.
    pub rate_limit_waits: u32,
    /// Total simulated seconds spent waiting.
    pub waited_secs: u64,
}

impl CrawlReport {
    /// Folds another report's counters into this one (sweep
    /// aggregation).
    pub fn absorb(&mut self, other: CrawlReport) {
        self.pages += other.pages;
        self.items += other.items;
        self.retries += other.retries;
        self.rate_limit_waits += other.rate_limit_waits;
        self.waited_secs += other.waited_secs;
    }
}

/// What a multi-source sweep did, for logs and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepReport {
    /// Services crawled.
    pub sources: usize,
    /// Services whose tick yielded fresh (non-empty) content.
    pub fresh_sources: usize,
    /// Aggregate of every per-source crawl report.
    pub crawl: CrawlReport,
}

/// The crawl driver.
#[derive(Debug, Clone, Copy, Default)]
pub struct Crawler {
    config: CrawlerConfig,
}

impl Crawler {
    /// Creates a driver with the given policy.
    pub fn new(config: CrawlerConfig) -> Self {
        Crawler { config }
    }

    /// Fully crawls a service, advancing `clock` across waits.
    pub fn crawl(
        &self,
        service: &mut dyn DataService,
        clock: &mut Clock,
    ) -> Result<(SourceObservation, CrawlReport), WrapperError> {
        self.crawl_since(service, clock, None)
    }

    /// Crawls only items published strictly after `since` (the
    /// incremental mode). The full pagination is still walked — the
    /// native APIs don't support server-side time filters, exactly
    /// like their real counterparts mostly didn't — but the
    /// observation contains only fresh items.
    pub fn crawl_since(
        &self,
        service: &mut dyn DataService,
        clock: &mut Clock,
        since: Option<Timestamp>,
    ) -> Result<(SourceObservation, CrawlReport), WrapperError> {
        let mut report = CrawlReport::default();
        let mut items = Vec::new();
        let mut cursor: Option<Cursor> = None;
        let mut consecutive_retries = 0u32;

        while report.pages < self.config.max_pages {
            match service.fetch(clock.now(), cursor) {
                Ok(page) => {
                    consecutive_retries = 0;
                    report.pages += 1;
                    for item in page.items {
                        if since.is_none_or(|s| item.published > s) {
                            items.push(item);
                        }
                    }
                    match page.next {
                        Some(next) => cursor = Some(next),
                        None => break,
                    }
                }
                Err(WrapperError::RateLimited { retry_after_secs }) => {
                    report.rate_limit_waits += 1;
                    report.waited_secs += retry_after_secs;
                    clock.advance(Duration(retry_after_secs.max(1)));
                }
                Err(e @ WrapperError::Transient(_)) => {
                    if consecutive_retries >= self.config.max_retries {
                        return Err(e);
                    }
                    let backoff = self.config.backoff_secs << consecutive_retries;
                    consecutive_retries += 1;
                    report.retries += 1;
                    report.waited_secs += backoff;
                    clock.advance(Duration(backoff));
                }
                Err(fatal) => return Err(fatal),
            }
        }

        report.items = items.len();
        Ok((
            SourceObservation {
                source: service.descriptor().source,
                items,
            },
            report,
        ))
    }

    /// One incremental crawl *tick*: crawls items published strictly
    /// after `since` and returns them as the [`CorpusDelta`] they
    /// imply, ready for
    /// `SearchEngine::apply_delta` /
    /// `InvertedIndex::apply_delta` — the path that keeps a live
    /// index fresh without a rebuild.
    ///
    /// The delta's document text is what the wrappers observed: body
    /// plus tags, without the discussion title (the uniform item
    /// model carries none). When exact parity with a from-scratch
    /// corpus build matters, re-derive the text for the observed post
    /// ids with `CorpusDelta::for_posts` — see
    /// `examples/live_index.rs`.
    pub fn crawl_delta(
        &self,
        service: &mut dyn DataService,
        clock: &mut Clock,
        since: Option<Timestamp>,
    ) -> Result<(CorpusDelta, CrawlReport), WrapperError> {
        let (observation, report) = self.crawl_since(service, clock, since)?;
        Ok((observation.to_delta(), report))
    }

    /// One tick of a *stateful* crawl loop: crawls the service since
    /// its recorded high-water mark, advances the mark to the newest
    /// item observed, and returns the [`CorpusDelta`] the tick
    /// implies. Calling this repeatedly with the same `marks` yields
    /// each piece of content exactly once — the contract a journaled
    /// serving layer needs (re-observing an item would re-journal
    /// and double-count it).
    pub fn crawl_tick(
        &self,
        service: &mut dyn DataService,
        clock: &mut Clock,
        marks: &mut HighWaterMarks,
    ) -> Result<(CorpusDelta, CrawlReport), WrapperError> {
        let source = service.descriptor().source;
        let (observation, report) = self.crawl_since(service, clock, marks.since(source))?;
        if let Some(newest) = observation.items.iter().map(|i| i.published).max() {
            marks.advance(source, newest);
        }
        Ok((observation.to_delta(), report))
    }

    /// One sweep over *every* registered service: a
    /// [`Crawler::crawl_tick`] per service, returning the non-empty
    /// per-source deltas of the whole burst (in service order) plus
    /// an aggregate [`SweepReport`]. This is the producer side of
    /// group-commit ingestion — the caller persists the burst under
    /// one fsync and applies it in one amortized pass (one index
    /// detach, one signal re-blend; see
    /// `SearchEngine::apply_deltas`), or folds it into a single
    /// shippable delta with
    /// [`CorpusDelta::coalesce`](obs_model::CorpusDelta::coalesce).
    ///
    /// All-or-nothing on the crawl side too: if any service's tick
    /// fails, every high-water mark the sweep already advanced is
    /// rolled back — none of the burst was persisted, so all of it
    /// must stay observable for the retry.
    pub fn crawl_sweep(
        &self,
        services: &mut [Box<dyn DataService + '_>],
        clock: &mut Clock,
        marks: &mut HighWaterMarks,
    ) -> Result<(Vec<CorpusDelta>, SweepReport), WrapperError> {
        let mut deltas = Vec::new();
        let mut sweep = SweepReport::default();
        // The sweep is the only writer of `marks` while it runs, so
        // a pre-sweep copy restores every participating source's
        // cursor in one assignment.
        let pre_sweep = marks.clone();
        for service in services.iter_mut() {
            match self.crawl_tick(service.as_mut(), clock, marks) {
                Ok((delta, report)) => {
                    sweep.sources += 1;
                    sweep.crawl.absorb(report);
                    if !delta.is_empty() {
                        sweep.fresh_sources += 1;
                        deltas.push(delta);
                    }
                }
                Err(e) => {
                    *marks = pre_sweep;
                    return Err(e);
                }
            }
        }
        Ok((deltas, sweep))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::native::blog::{BlogApi, PAGE_SIZE};
    use crate::rate::TokenBucket;
    use crate::service::{service_for, BlogService};
    use obs_model::SourceKind;
    use obs_synth::{World, WorldConfig};

    fn world() -> World {
        World::generate(WorldConfig::small(202))
    }

    #[test]
    fn full_crawl_matches_ground_truth() {
        let w = world();
        let crawler = Crawler::default();
        for s in w.corpus.sources() {
            let mut clock = Clock::starting_at(w.now);
            let mut service = service_for(&w.corpus, s.id, w.now).unwrap();
            let (obs, report) = crawler.crawl(service.as_mut(), &mut clock).unwrap();
            let expected: usize = w
                .corpus
                .discussions_of_source(s.id)
                .iter()
                .map(|&d| 1 + w.corpus.comments_of_discussion(d).len())
                .sum();
            assert_eq!(obs.len(), expected);
            assert_eq!(report.items, expected);
            assert!(report.pages >= 1);
        }
    }

    #[test]
    fn incremental_crawl_filters_old_items() {
        let w = world();
        let crawler = Crawler::default();
        let s = w
            .corpus
            .sources()
            .iter()
            .find(|s| !w.corpus.discussions_of_source(s.id).is_empty())
            .unwrap();
        let mut clock = Clock::starting_at(w.now);
        let mut service = service_for(&w.corpus, s.id, w.now).unwrap();
        let (full, _) = crawler.crawl(service.as_mut(), &mut clock).unwrap();

        let midpoint = Timestamp(w.now.seconds() / 2);
        let mut service2 = service_for(&w.corpus, s.id, w.now).unwrap();
        let mut clock2 = Clock::starting_at(w.now);
        let (fresh, _) = crawler
            .crawl_since(service2.as_mut(), &mut clock2, Some(midpoint))
            .unwrap();

        assert!(fresh.len() <= full.len());
        for item in &fresh.items {
            assert!(item.published > midpoint);
        }
        // Old + fresh partition the full crawl.
        let old = full
            .items
            .iter()
            .filter(|i| i.published <= midpoint)
            .count();
        assert_eq!(old + fresh.len(), full.len());
    }

    #[test]
    fn crawl_delta_carries_fresh_posts_and_engagement() {
        let w = world();
        let crawler = Crawler::default();
        let s = w
            .corpus
            .sources()
            .iter()
            .find(|s| !w.corpus.discussions_of_source(s.id).is_empty())
            .unwrap();
        let mut clock = Clock::starting_at(w.now);
        let mut service = service_for(&w.corpus, s.id, w.now).unwrap();
        let (delta, report) = crawler
            .crawl_delta(service.as_mut(), &mut clock, None)
            .unwrap();
        let discussions = w.corpus.discussions_of_source(s.id).len();
        let comments: usize = w
            .corpus
            .discussions_of_source(s.id)
            .iter()
            .map(|&d| w.corpus.comments_of_discussion(d).len())
            .sum();
        assert_eq!(delta.added.len(), discussions);
        assert!(delta.removed.is_empty());
        assert_eq!(report.items, discussions + comments);
        // Engagement folds into a single per-source entry.
        assert_eq!(delta.engagement.len(), 1);
        assert_eq!(delta.engagement[0].source, s.id);
        assert_eq!(delta.engagement[0].discussions, discussions as i64);
        assert_eq!(delta.engagement[0].comments, comments as i64);
        // Every added doc carries indexable text.
        for d in &delta.added {
            assert_eq!(d.source, s.id);
            assert!(!d.text.is_empty());
        }
    }

    #[test]
    fn crawl_delta_since_midpoint_is_a_subset() {
        let w = world();
        let crawler = Crawler::default();
        let s = w
            .corpus
            .sources()
            .iter()
            .find(|s| !w.corpus.discussions_of_source(s.id).is_empty())
            .unwrap();
        let mut clock = Clock::starting_at(w.now);
        let mut service = service_for(&w.corpus, s.id, w.now).unwrap();
        let (full, _) = crawler
            .crawl_delta(service.as_mut(), &mut clock, None)
            .unwrap();
        let midpoint = Timestamp(w.now.seconds() / 2);
        let mut clock2 = Clock::starting_at(w.now);
        let mut service2 = service_for(&w.corpus, s.id, w.now).unwrap();
        let (fresh, _) = crawler
            .crawl_delta(service2.as_mut(), &mut clock2, Some(midpoint))
            .unwrap();
        assert!(fresh.added.len() <= full.added.len());
        for d in &fresh.added {
            assert!(
                full.added.iter().any(|f| f.post == d.post),
                "{} not in the full delta",
                d.post
            );
        }
    }

    #[test]
    fn crawl_tick_observes_each_item_exactly_once() {
        let w = world();
        let crawler = Crawler::default();
        let s = w
            .corpus
            .sources()
            .iter()
            .find(|s| !w.corpus.discussions_of_source(s.id).is_empty())
            .unwrap();
        let mut marks = HighWaterMarks::new();
        assert!(marks.is_empty());

        // First tick sees the whole source…
        let mut clock = Clock::starting_at(w.now);
        let mut service = service_for(&w.corpus, s.id, w.now).unwrap();
        let (first, _) = crawler
            .crawl_tick(service.as_mut(), &mut clock, &mut marks)
            .unwrap();
        assert!(!first.is_empty());
        assert_eq!(marks.len(), 1);
        let mark = marks.since(s.id).expect("mark recorded");

        // …the second tick, nothing new (no content was published in
        // between), and the mark stays put.
        let mut service2 = service_for(&w.corpus, s.id, w.now).unwrap();
        let (second, _) = crawler
            .crawl_tick(service2.as_mut(), &mut clock, &mut marks)
            .unwrap();
        assert!(second.is_empty(), "tick 2 re-observed content");
        assert_eq!(marks.since(s.id), Some(mark));
    }

    #[test]
    fn high_water_marks_never_regress() {
        let mut marks = HighWaterMarks::new();
        let s = obs_model::SourceId::new(3);
        marks.advance(s, Timestamp::from_days(10));
        marks.advance(s, Timestamp::from_days(4));
        assert_eq!(marks.since(s), Some(Timestamp::from_days(10)));
        marks.advance(s, Timestamp::from_days(12));
        assert_eq!(marks.since(s), Some(Timestamp::from_days(12)));
        assert_eq!(marks.since(obs_model::SourceId::new(9)), None);
    }

    #[test]
    fn rollback_restores_a_previous_reading() {
        let mut marks = HighWaterMarks::new();
        let s = obs_model::SourceId::new(3);

        // Roll back to an earlier mark after a failed persist.
        marks.advance(s, Timestamp::from_days(10));
        let before = marks.since(s);
        marks.advance(s, Timestamp::from_days(20));
        marks.rollback(s, before);
        assert_eq!(marks.since(s), Some(Timestamp::from_days(10)));

        // Roll back to "never observed".
        marks.rollback(s, None);
        assert_eq!(marks.since(s), None);
        assert!(marks.is_empty());
    }

    #[test]
    fn transient_faults_are_retried_to_success() {
        // A content-heavy world so the blog spans several pages and
        // the every-2nd-call fault plan is guaranteed to fire.
        let w = World::generate(WorldConfig {
            mean_discussions_per_source: 40.0,
            ..WorldConfig::small(202)
        });
        let blog = w
            .corpus
            .sources()
            .iter()
            .filter(|s| s.kind == SourceKind::Blog)
            .max_by_key(|s| w.corpus.discussions_of_source(s.id).len())
            .expect("a blog");
        assert!(
            w.corpus.discussions_of_source(blog.id).len() > 10,
            "blog must span multiple pages"
        );
        let api = BlogApi::open(&w.corpus, blog.id, w.now)
            .unwrap()
            .with_faults(FaultPlan::every(2));
        let mut service = BlogService::open(&w.corpus, blog.id, w.now)
            .unwrap()
            .with_api(api);
        let mut clock = Clock::starting_at(w.now);
        let crawler = Crawler::default();
        let (obs, report) = crawler.crawl(&mut service, &mut clock).unwrap();
        assert!(report.retries > 0, "faults must have been retried");
        assert!(!obs.is_empty());
    }

    #[test]
    fn persistent_faults_exhaust_retries() {
        let w = world();
        let blog = w
            .corpus
            .sources()
            .iter()
            .find(|s| s.kind == SourceKind::Blog)
            .expect("a blog");
        let api = BlogApi::open(&w.corpus, blog.id, w.now)
            .unwrap()
            .with_faults(FaultPlan::every(1)); // always fail
        let mut service = BlogService::open(&w.corpus, blog.id, w.now)
            .unwrap()
            .with_api(api);
        let mut clock = Clock::starting_at(w.now);
        let crawler = Crawler::new(CrawlerConfig {
            max_retries: 3,
            ..CrawlerConfig::default()
        });
        let err = crawler.crawl(&mut service, &mut clock).unwrap_err();
        assert!(matches!(err, WrapperError::Transient(_)));
    }

    #[test]
    fn zero_rate_service_fails_fast_instead_of_waiting_forever() {
        // Regression: `TokenBucket::try_take` used to encode "never
        // refills" as a u64::MAX wait; the crawler advanced its
        // clock by that wait, overflowing Timestamp arithmetic. A
        // zero-rate service must surface a hard error instead.
        let w = World::generate(WorldConfig {
            mean_discussions_per_source: 40.0,
            ..WorldConfig::small(202)
        });
        let blog = w
            .corpus
            .sources()
            .iter()
            .filter(|s| s.kind == SourceKind::Blog)
            .max_by_key(|s| w.corpus.discussions_of_source(s.id).len())
            .expect("a blog");
        assert!(
            w.corpus.discussions_of_source(blog.id).len() > PAGE_SIZE,
            "blog must need more fetches than the one-token burst"
        );
        let api = BlogApi::open(&w.corpus, blog.id, w.now)
            .unwrap()
            .with_rate_limit(TokenBucket::new(1, 0, w.now));
        let mut service = BlogService::open(&w.corpus, blog.id, w.now)
            .unwrap()
            .with_api(api);
        let mut clock = Clock::starting_at(w.now);
        let crawler = Crawler::default();
        let err = crawler.crawl(&mut service, &mut clock).unwrap_err();
        assert_eq!(err, WrapperError::RateLimitExhausted);
        assert!(!err.is_retryable());
        // No simulated time was burned "waiting out" a limit that
        // never lifts.
        assert_eq!(clock.now(), w.now);
    }

    #[test]
    fn crawl_sweep_ticks_every_service_exactly_once() {
        let w = world();
        let crawler = Crawler::default();
        let mut marks = HighWaterMarks::new();
        let mut services: Vec<Box<dyn DataService + '_>> = w
            .corpus
            .sources()
            .iter()
            .map(|s| service_for(&w.corpus, s.id, w.now).unwrap())
            .collect();
        let mut clock = Clock::starting_at(w.now);
        let (deltas, sweep) = crawler
            .crawl_sweep(&mut services, &mut clock, &mut marks)
            .unwrap();
        assert_eq!(sweep.sources, w.corpus.sources().len());
        assert_eq!(sweep.fresh_sources, deltas.len());
        assert!(deltas.iter().all(|d| !d.is_empty()));
        // The burst covers the whole corpus: one added doc per
        // discussion, across all sources.
        let total_added: usize = deltas.iter().map(|d| d.added.len()).sum();
        let expected: usize = w
            .corpus
            .sources()
            .iter()
            .map(|s| w.corpus.discussions_of_source(s.id).len())
            .sum();
        assert_eq!(total_added, expected);

        // A second sweep observes nothing new anywhere.
        let (again, sweep2) = crawler
            .crawl_sweep(&mut services, &mut clock, &mut marks)
            .unwrap();
        assert!(again.is_empty());
        assert_eq!(sweep2.fresh_sources, 0);
        assert_eq!(sweep2.sources, w.corpus.sources().len());
    }

    #[test]
    fn failed_sweep_rolls_back_every_advanced_mark() {
        let w = world();
        let blogs: Vec<_> = w
            .corpus
            .sources()
            .iter()
            .filter(|s| {
                s.kind == SourceKind::Blog && !w.corpus.discussions_of_source(s.id).is_empty()
            })
            .collect();
        assert!(blogs.len() >= 2, "world needs two content-bearing blogs");
        let (good, bad) = (blogs[0].id, blogs[1].id);

        let bad_api = BlogApi::open(&w.corpus, bad, w.now)
            .unwrap()
            .with_faults(FaultPlan::every(1)); // always fail
        let mut services: Vec<Box<dyn DataService + '_>> = vec![
            service_for(&w.corpus, good, w.now).unwrap(),
            Box::new(
                BlogService::open(&w.corpus, bad, w.now)
                    .unwrap()
                    .with_api(bad_api),
            ),
        ];
        let crawler = Crawler::new(CrawlerConfig {
            max_retries: 2,
            ..CrawlerConfig::default()
        });
        let mut marks = HighWaterMarks::new();
        let mut clock = Clock::starting_at(w.now);
        let err = crawler
            .crawl_sweep(&mut services, &mut clock, &mut marks)
            .unwrap_err();
        assert!(matches!(err, WrapperError::Transient(_)));
        // The good service's tick advanced its mark before the bad
        // one failed; nothing of the sweep was persisted, so the
        // whole burst must stay observable for a retry.
        assert!(marks.is_empty(), "marks survived a failed sweep: {marks:?}");
    }

    #[test]
    fn rate_limits_advance_the_clock_not_fail() {
        let w = World::generate(WorldConfig {
            mean_discussions_per_source: 60.0,
            ..WorldConfig::small(203)
        });
        let blog = w
            .corpus
            .sources()
            .iter()
            .filter(|s| s.kind == SourceKind::Blog)
            .max_by_key(|s| w.corpus.discussions_of_source(s.id).len())
            .expect("a blog");
        let mut clock = Clock::starting_at(w.now);
        let mut service = service_for(&w.corpus, blog.id, w.now).unwrap();
        let crawler = Crawler::default();
        let (_, report) = crawler.crawl(service.as_mut(), &mut clock).unwrap();
        // A large blog needs > 30 pages, which exceeds the burst.
        if report.pages > 30 {
            assert!(report.rate_limit_waits > 0);
            assert!(clock.now() > w.now);
        }
    }
}
