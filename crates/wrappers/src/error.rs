//! Wrapper-layer errors.

use crate::rate::RateDenied;
use obs_model::{ModelError, SourceId};

/// Errors surfaced by native APIs and wrappers.
#[derive(Debug, Clone, PartialEq)]
pub enum WrapperError {
    /// The caller exceeded the API's rate limit; retry after the
    /// given number of simulated seconds.
    RateLimited {
        /// Seconds until the bucket refills enough for one call.
        retry_after_secs: u64,
    },
    /// The API's rate budget is exhausted and never refills (a
    /// zero-rate service): no wait will help, so this is fatal for
    /// the crawl rather than a pacing hint.
    RateLimitExhausted,
    /// A transient failure (injected or simulated network flake);
    /// safe to retry.
    Transient(&'static str),
    /// The source id is not served by this API.
    UnknownSource(SourceId),
    /// The pagination cursor is malformed or stale.
    BadCursor(String),
    /// A native record could not be mapped into the uniform model.
    MappingFailed {
        /// What failed to map.
        what: &'static str,
        /// The offending raw value.
        raw: String,
    },
    /// The backing corpus contradicts itself (a post id with no
    /// record, a comment thread referencing a missing root): not
    /// retryable — the data, not the call, is broken.
    Inconsistent {
        /// What was missing or contradictory.
        what: &'static str,
        /// The offending identifier, rendered.
        raw: String,
    },
}

impl WrapperError {
    /// Whether a retry can succeed without caller-side changes.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            WrapperError::RateLimited { .. } | WrapperError::Transient(_)
        )
    }
}

/// A failed corpus lookup inside a wrapper is a data-integrity
/// problem, not a call problem: the native API held an id the model
/// cannot resolve.
impl From<ModelError> for WrapperError {
    fn from(err: ModelError) -> Self {
        let what = match err {
            ModelError::UnknownSource(_) => "source id with no record",
            ModelError::UnknownUser(_) => "user id with no record",
            ModelError::UnknownDiscussion(_) => "discussion id with no record",
            ModelError::UnknownPost(_) => "post id with no record",
            ModelError::UnknownComment(_) => "comment id with no record",
            ModelError::CrossDiscussionReply { .. } => "reply crossing discussions",
        };
        WrapperError::Inconsistent {
            what,
            raw: err.to_string(),
        }
    }
}

impl From<RateDenied> for WrapperError {
    fn from(denied: RateDenied) -> Self {
        match denied {
            RateDenied::RetryAfter(retry_after_secs) => {
                WrapperError::RateLimited { retry_after_secs }
            }
            RateDenied::Exhausted => WrapperError::RateLimitExhausted,
        }
    }
}

impl std::fmt::Display for WrapperError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WrapperError::RateLimited { retry_after_secs } => {
                write!(f, "rate limited; retry after {retry_after_secs}s")
            }
            WrapperError::RateLimitExhausted => {
                write!(f, "rate budget exhausted; the limit never refills")
            }
            WrapperError::Transient(what) => write!(f, "transient failure: {what}"),
            WrapperError::UnknownSource(id) => write!(f, "unknown source {id}"),
            WrapperError::BadCursor(c) => write!(f, "bad cursor {c:?}"),
            WrapperError::MappingFailed { what, raw } => {
                write!(f, "failed to map {what} from {raw:?}")
            }
            WrapperError::Inconsistent { what, raw } => {
                write!(f, "corpus inconsistency: {what} ({raw:?})")
            }
        }
    }
}

impl std::error::Error for WrapperError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability_classification() {
        assert!(WrapperError::RateLimited {
            retry_after_secs: 5
        }
        .is_retryable());
        assert!(WrapperError::Transient("flake").is_retryable());
        assert!(!WrapperError::RateLimitExhausted.is_retryable());
        assert!(!WrapperError::UnknownSource(SourceId::new(1)).is_retryable());
        assert!(!WrapperError::BadCursor("x".into()).is_retryable());
        assert!(!WrapperError::MappingFailed {
            what: "date",
            raw: "??".into()
        }
        .is_retryable());
        assert!(!WrapperError::Inconsistent {
            what: "post id with no record",
            raw: "p42".into()
        }
        .is_retryable());
    }

    #[test]
    fn rate_denials_map_to_the_right_errors() {
        assert_eq!(
            WrapperError::from(RateDenied::RetryAfter(7)),
            WrapperError::RateLimited {
                retry_after_secs: 7
            }
        );
        assert_eq!(
            WrapperError::from(RateDenied::Exhausted),
            WrapperError::RateLimitExhausted
        );
    }

    #[test]
    fn display_is_informative() {
        let e = WrapperError::MappingFailed {
            what: "date",
            raw: "not-a-date".into(),
        };
        assert!(e.to_string().contains("date"));
        assert!(e.to_string().contains("not-a-date"));
    }
}
