//! # obs-telemetry — lock-free metrics for the live serving stack
//!
//! The serving layer answers queries while content streams in; this
//! crate is how it *sees itself doing it*: counters, gauges and
//! latency histograms that are safe to update from the hottest path
//! — every recording operation is a handful of relaxed atomic
//! operations, no locks, no allocation, no panics — plus a registry
//! that names them and an exposition layer that renders them.
//!
//! * [`Counter`] / [`Gauge`] — one atomic cell behind a cloneable
//!   handle. Incrementing is a relaxed `fetch_add`.
//! * [`Histogram`] — a log-bucketed (HDR-style) latency/size
//!   distribution: 16 linear sub-buckets per power of two, values
//!   below 16 exact, relative quantile error bounded by 1/16
//!   (6.25%). Snapshots are mergeable and report nearest-rank
//!   p50/p90/p99 plus the exact observed max.
//! * [`Registry`] — names instruments (`name{label="value"}`),
//!   deduplicates registration, and snapshots every instrument for
//!   the dual exposition layer: Prometheus-style text
//!   ([`Registry::render_text`]) and a `serde_json` value dump
//!   ([`Registry::to_json`]).
//! * [`TelemetryClock`] — the injectable time source behind every
//!   [`Span`] / [`Stopwatch`]. Production uses [`RealClock`]
//!   (monotonic `Instant`); tests use [`ManualClock`]. Modules under
//!   a `lint:deterministic` tag never read a wall clock themselves:
//!   they call closure-timing helpers (or record pre-measured
//!   durations) owned by untagged code, so replay determinism and
//!   observability coexist — the `obs_lint` determinism pass keeps
//!   it that way.
//!
//! Recording never panics and never blocks: the registry's interior
//! mutex is touched only at *registration* time (and by snapshots),
//! and even there a poisoned lock is recovered, not propagated —
//! instruments hold plain atomics, so there is no broken invariant
//! to inherit.

#![warn(missing_docs)]

pub mod clock;
pub mod counter;
pub mod expose;
pub mod histogram;
pub mod registry;
pub mod span;

pub use clock::{ManualClock, RealClock, SharedClock, TelemetryClock};
pub use counter::{Counter, Gauge};
pub use expose::{render_text, to_json, MetricSnapshot, MetricValue};
pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::Registry;
pub use span::{Span, Stopwatch};
