//! Monotone counters and up/down gauges.
//!
//! Both are a single atomic cell behind an `Arc`, so handles are
//! cheap to clone and share across threads; the serving path records
//! with one relaxed RMW and never takes a lock.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing event counter (commits applied, items
/// observed, retries taken). Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A value that moves both ways (queue depth, live shard count).
/// Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to an absolute value.
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Moves the gauge by `delta` (negative to decrease).
    pub fn add(&self, delta: i64) {
        self.cell.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_shares() {
        let c = Counter::new();
        let shared = c.clone();
        c.inc();
        shared.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(shared.get(), 5);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
        g.add(5);
        assert_eq!(g.get(), 12);
    }

    #[test]
    fn counter_is_race_safe() {
        let c = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }
}
