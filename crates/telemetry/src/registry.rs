//! Named instrument registry.
//!
//! The registry is the *directory*, not the hot path: callers
//! register once at wiring time (`registry.histogram("query_ns")`),
//! keep the cloned lock-free handle, and record through the handle
//! forever after. The interior mutex is taken only at registration
//! and snapshot time. Registering the same `(name, labels)` pair
//! twice returns a handle to the same underlying instrument, so
//! independent components can share a series safely.
//!
//! Two deliberate non-panics (this crate sits under the same
//! panic-freedom lint as the serving crates):
//!
//! * a poisoned mutex is recovered with `into_inner` — instruments
//!   hold plain atomics, so there is no invariant a panicking peer
//!   could have broken half-way;
//! * re-registering a name under a *different* instrument kind
//!   returns a fresh detached instrument (recordable, but never
//!   exported) instead of panicking. That misuse is a wiring bug the
//!   exposition makes visible — the series goes missing — without
//!   ever taking down the serving path.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::clock::{RealClock, SharedClock};
use crate::counter::{Counter, Gauge};
use crate::expose::{MetricSnapshot, MetricValue};
use crate::histogram::Histogram;
use crate::span::Stopwatch;

/// One series key: instrument name plus sorted `(label, value)`
/// pairs.
type SeriesKey = (String, Vec<(String, String)>);

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A directory of named instruments sharing one injectable clock.
#[derive(Debug)]
pub struct Registry {
    clock: SharedClock,
    instruments: Mutex<BTreeMap<SeriesKey, Instrument>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Creates a registry on the production [`RealClock`].
    pub fn new() -> Self {
        Self::with_clock(Arc::new(RealClock::new()))
    }

    /// Creates a registry on an injected clock (tests use
    /// [`ManualClock`](crate::ManualClock)).
    pub fn with_clock(clock: SharedClock) -> Self {
        Self {
            clock,
            instruments: Mutex::new(BTreeMap::new()),
        }
    }

    /// The shared clock every span/stopwatch built from this
    /// registry reads.
    pub fn clock_handle(&self) -> SharedClock {
        Arc::clone(&self.clock)
    }

    /// Current reading of the registry clock, in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// A stopwatch started now on the registry clock.
    pub fn stopwatch(&self) -> Stopwatch {
        Stopwatch::start(self.clock_handle())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<SeriesKey, Instrument>> {
        match self.instruments.lock() {
            Ok(guard) => guard,
            // Instruments are plain atomics; a panicking registrant
            // cannot leave the map in a half-written state we care
            // about. Recover rather than propagate.
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn series_key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
        let mut owned: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        owned.sort();
        (name.to_string(), owned)
    }

    /// Registers (or retrieves) an unlabeled counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Registers (or retrieves) a counter with labels such as
    /// `[("shard", "3")]`.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = Self::series_key(name, labels);
        let mut map = self.lock();
        match map
            .entry(key)
            .or_insert_with(|| Instrument::Counter(Counter::new()))
        {
            Instrument::Counter(c) => c.clone(),
            // Kind mismatch: see the module docs — detached, never
            // exported, never a panic.
            _ => Counter::new(),
        }
    }

    /// Registers (or retrieves) an unlabeled gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Registers (or retrieves) a labeled gauge.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = Self::series_key(name, labels);
        let mut map = self.lock();
        match map
            .entry(key)
            .or_insert_with(|| Instrument::Gauge(Gauge::new()))
        {
            Instrument::Gauge(g) => g.clone(),
            _ => Gauge::new(),
        }
    }

    /// Registers (or retrieves) an unlabeled histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// Registers (or retrieves) a labeled histogram.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = Self::series_key(name, labels);
        let mut map = self.lock();
        match map
            .entry(key)
            .or_insert_with(|| Instrument::Histogram(Histogram::new()))
        {
            Instrument::Histogram(h) => h.clone(),
            _ => Histogram::new(),
        }
    }

    /// Snapshots every registered series, sorted by name then
    /// labels (the map is a `BTreeMap`, so output order is stable).
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let map = self.lock();
        map.iter()
            .map(|((name, labels), instrument)| MetricSnapshot {
                name: name.clone(),
                labels: labels.clone(),
                value: match instrument {
                    Instrument::Counter(c) => MetricValue::Counter(c.get()),
                    Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                    Instrument::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect()
    }

    /// Renders every series in the Prometheus-style text format.
    pub fn render_text(&self) -> String {
        crate::expose::render_text(&self.snapshot())
    }

    /// Renders every series as a `serde_json` value.
    pub fn to_json(&self) -> serde_json::Value {
        crate::expose::to_json(&self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn same_key_shares_the_instrument() {
        let registry = Registry::new();
        let a = registry.counter_with("hits", &[("shard", "0")]);
        let b = registry.counter_with("hits", &[("shard", "0")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let registry = Registry::new();
        let a = registry.counter_with("hits", &[("a", "1"), ("b", "2")]);
        let b = registry.counter_with("hits", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn different_labels_are_different_series() {
        let registry = Registry::new();
        let a = registry.counter_with("hits", &[("shard", "0")]);
        let b = registry.counter_with("hits", &[("shard", "1")]);
        a.inc();
        assert_eq!(b.get(), 0);
        assert_eq!(registry.snapshot().len(), 2);
    }

    #[test]
    fn kind_mismatch_detaches_instead_of_panicking() {
        let registry = Registry::new();
        let c = registry.counter("mixed");
        c.add(7);
        let h = registry.histogram("mixed");
        h.record(1); // goes nowhere visible, but must not panic
        let snaps = registry.snapshot();
        assert_eq!(snaps.len(), 1);
        assert!(matches!(snaps[0].value, MetricValue::Counter(7)));
    }

    #[test]
    fn injected_clock_drives_now_ns() {
        let clock = Arc::new(ManualClock::new());
        let registry = Registry::with_clock(clock.clone());
        assert_eq!(registry.now_ns(), 0);
        clock.advance(42);
        assert_eq!(registry.now_ns(), 42);
    }

    #[test]
    fn snapshot_order_is_stable() {
        let registry = Registry::new();
        registry.counter("zeta");
        registry.counter("alpha");
        registry.counter_with("alpha", &[("shard", "1")]);
        let names: Vec<String> = registry
            .snapshot()
            .into_iter()
            .map(|s| {
                let labels: Vec<String> =
                    s.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
                format!("{}[{}]", s.name, labels.join(","))
            })
            .collect();
        assert_eq!(names, ["alpha[]", "alpha[shard=1]", "zeta[]"]);
    }
}
