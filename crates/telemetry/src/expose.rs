//! Dual exposition: Prometheus-style text and `serde_json` values.
//!
//! Text format (one sample per line, stable order):
//!
//! ```text
//! live_commits_total 42
//! live_shard_commit_ns{shard="0",quantile="0.5"} 18432
//! live_shard_commit_ns{shard="0",quantile="0.9"} 24576
//! live_shard_commit_ns{shard="0",quantile="0.99"} 30720
//! live_shard_commit_ns_count{shard="0"} 128
//! live_shard_commit_ns_sum{shard="0"} 2359296
//! live_shard_commit_ns_max{shard="0"} 31044
//! ```
//!
//! Counters and gauges are one line; histograms expand to three
//! quantile samples plus `_count` / `_sum` / `_max`. Label keys and
//! values are emitted verbatim — instrument names and label values
//! in this workspace are code-chosen identifiers (shard indices,
//! source slugs), so no escaping layer is applied; callers must not
//! feed `"` or newlines into label values.
//!
//! The JSON form is an object keyed by the rendered series name;
//! histograms become `{count, sum, max, p50, p90, p99}` objects.

use serde_json::{json, Value};

use crate::histogram::HistogramSnapshot;

/// The value side of one registered series at snapshot time.
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Monotone counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(i64),
    /// Full histogram distribution.
    Histogram(HistogramSnapshot),
}

/// One registered series at snapshot time.
#[derive(Debug, Clone)]
pub struct MetricSnapshot {
    /// Instrument name, e.g. `live_ingest_stage_ns`.
    pub name: String,
    /// Sorted `(key, value)` label pairs, possibly empty.
    pub labels: Vec<(String, String)>,
    /// The captured value.
    pub value: MetricValue,
}

/// Renders `{k="v",...}` for the label set, with room to append
/// extra pairs (the quantile label); empty input with no extras
/// renders as nothing.
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Renders snapshots in the Prometheus-style text format described
/// in the module docs.
pub fn render_text(snapshots: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    for snap in snapshots {
        let plain = label_block(&snap.labels, None);
        match &snap.value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("{}{plain} {v}\n", snap.name));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("{}{plain} {v}\n", snap.name));
            }
            MetricValue::Histogram(h) => {
                for (q, v) in [("0.5", h.p50()), ("0.9", h.p90()), ("0.99", h.p99())] {
                    let labels = label_block(&snap.labels, Some(("quantile", q)));
                    out.push_str(&format!("{}{labels} {v}\n", snap.name));
                }
                out.push_str(&format!("{}_count{plain} {}\n", snap.name, h.count()));
                out.push_str(&format!("{}_sum{plain} {}\n", snap.name, h.sum()));
                out.push_str(&format!("{}_max{plain} {}\n", snap.name, h.max()));
            }
        }
    }
    out
}

/// Renders snapshots as one JSON object keyed by rendered series
/// name (`name{labels}`), values as described in the module docs.
pub fn to_json(snapshots: &[MetricSnapshot]) -> Value {
    let mut map = serde_json::Map::new();
    for snap in snapshots {
        let key = format!("{}{}", snap.name, label_block(&snap.labels, None));
        let value = match &snap.value {
            MetricValue::Counter(v) => json!(v),
            MetricValue::Gauge(v) => json!(v),
            MetricValue::Histogram(h) => json!({
                "count": h.count(),
                "sum": h.sum(),
                "max": h.max(),
                "p50": h.p50(),
                "p90": h.p90(),
                "p99": h.p99(),
            }),
        };
        map.insert(key, value);
    }
    Value::Object(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    fn sample_snapshots() -> Vec<MetricSnapshot> {
        let h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        vec![
            MetricSnapshot {
                name: "commits_total".into(),
                labels: vec![],
                value: MetricValue::Counter(42),
            },
            MetricSnapshot {
                name: "queue_depth".into(),
                labels: vec![("shard".into(), "1".into())],
                value: MetricValue::Gauge(-3),
            },
            MetricSnapshot {
                name: "commit_ns".into(),
                labels: vec![("shard".into(), "1".into())],
                value: MetricValue::Histogram(h.snapshot()),
            },
        ]
    }

    #[test]
    fn text_format_is_stable() {
        let text = render_text(&sample_snapshots());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "commits_total 42");
        assert_eq!(lines[1], "queue_depth{shard=\"1\"} -3");
        assert!(lines[2].starts_with("commit_ns{shard=\"1\",quantile=\"0.5\"} "));
        assert!(lines[4].starts_with("commit_ns{shard=\"1\",quantile=\"0.99\"} "));
        assert_eq!(lines[5], "commit_ns_count{shard=\"1\"} 3");
        assert_eq!(lines[6], "commit_ns_sum{shard=\"1\"} 60");
        assert_eq!(lines[7], "commit_ns_max{shard=\"1\"} 30");
        assert_eq!(lines.len(), 8);
    }

    #[test]
    fn json_format_carries_distribution_summary() {
        let value = to_json(&sample_snapshots());
        assert_eq!(value.get("commits_total"), Some(&serde_json::json!(42)));
        assert_eq!(
            value.get("queue_depth{shard=\"1\"}"),
            Some(&serde_json::json!(-3))
        );
        let hist = value.get("commit_ns{shard=\"1\"}").cloned().unwrap();
        assert_eq!(hist.get("count"), Some(&serde_json::json!(3)));
        assert_eq!(hist.get("sum"), Some(&serde_json::json!(60)));
        assert_eq!(hist.get("max"), Some(&serde_json::json!(30)));
    }
}
