//! Stage timers: spans and stopwatches.
//!
//! A [`Span`] times one region and records into one histogram — on
//! explicit [`finish`](Span::finish) or, failing that, on drop, so
//! an early `?` return still gets measured. A [`Stopwatch`] times a
//! *sequence* of stages with one clock read per boundary: each
//! [`lap_ns`](Stopwatch::lap_ns) returns the nanoseconds since the
//! previous lap, which the caller records into that stage's
//! histogram. Both read time only through the injected
//! [`TelemetryClock`](crate::TelemetryClock), so deterministic
//! tests can drive them by hand.

use crate::clock::SharedClock;
use crate::histogram::Histogram;

/// Times one region into one histogram; records exactly once, on
/// [`finish`](Span::finish) or on drop.
#[derive(Debug)]
pub struct Span {
    histogram: Histogram,
    clock: SharedClock,
    start: u64,
    finished: bool,
}

impl Span {
    /// Starts a span now on `clock`, recording into `histogram` when
    /// it ends.
    pub fn start(histogram: Histogram, clock: SharedClock) -> Self {
        let start = clock.now_ns();
        Self {
            histogram,
            clock,
            start,
            finished: false,
        }
    }

    /// Ends the span, records the elapsed nanoseconds, and returns
    /// them.
    pub fn finish(mut self) -> u64 {
        let elapsed = self.clock.now_ns().saturating_sub(self.start);
        self.histogram.record(elapsed);
        self.finished = true;
        elapsed
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.finished {
            let elapsed = self.clock.now_ns().saturating_sub(self.start);
            self.histogram.record(elapsed);
        }
    }
}

/// Times consecutive stages of a pipeline with one clock read per
/// stage boundary.
#[derive(Debug)]
pub struct Stopwatch {
    clock: SharedClock,
    last: u64,
}

impl Stopwatch {
    /// Starts a stopwatch now on `clock`.
    pub fn start(clock: SharedClock) -> Self {
        let last = clock.now_ns();
        Self { clock, last }
    }

    /// Nanoseconds since the previous lap (or since start), and
    /// resets the lap origin to now.
    pub fn lap_ns(&mut self) -> u64 {
        let now = self.clock.now_ns();
        let elapsed = now.saturating_sub(self.last);
        self.last = now;
        elapsed
    }

    /// Like [`lap_ns`](Stopwatch::lap_ns), but records the lap into
    /// `histogram` as well as returning it.
    pub fn lap_into(&mut self, histogram: &Histogram) -> u64 {
        let elapsed = self.lap_ns();
        histogram.record(elapsed);
        elapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use std::sync::Arc;

    #[test]
    fn span_records_on_finish() {
        let clock = Arc::new(ManualClock::new());
        let h = Histogram::new();
        let span = Span::start(h.clone(), clock.clone());
        clock.advance(1_500);
        assert_eq!(span.finish(), 1_500);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1);
        assert_eq!(snap.max(), 1_500);
    }

    #[test]
    fn span_records_on_drop() {
        let clock = Arc::new(ManualClock::new());
        let h = Histogram::new();
        {
            let _span = Span::start(h.clone(), clock.clone());
            clock.advance(700);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1);
        assert_eq!(snap.max(), 700);
    }

    #[test]
    fn stopwatch_laps_are_disjoint() {
        let clock = Arc::new(ManualClock::new());
        let mut watch = Stopwatch::start(clock.clone() as SharedClock);
        clock.advance(100);
        assert_eq!(watch.lap_ns(), 100);
        clock.advance(250);
        assert_eq!(watch.lap_ns(), 250);
        assert_eq!(watch.lap_ns(), 0);
    }

    #[test]
    fn lap_into_records_the_lap() {
        let clock = Arc::new(ManualClock::new());
        let h = Histogram::new();
        let mut watch = Stopwatch::start(clock.clone() as SharedClock);
        clock.advance(64);
        assert_eq!(watch.lap_into(&h), 64);
        assert_eq!(h.snapshot().sum(), 64);
    }
}
