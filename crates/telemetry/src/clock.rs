//! Injectable time sources for spans and stopwatches.
//!
//! Everything that measures a duration in this crate reads time
//! through [`TelemetryClock`], never from `Instant::now()` directly.
//! That buys two things: tests can drive time by hand with
//! [`ManualClock`], and modules tagged `// lint:deterministic` can
//! stay clean under `obs_lint` — the clock lives behind a trait
//! object owned by *untagged* code, so tagged modules record
//! durations that were measured elsewhere instead of naming a wall
//! clock themselves.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A shared, thread-safe clock handle as stored by the registry.
pub type SharedClock = Arc<dyn TelemetryClock>;

/// A monotonic nanosecond clock.
///
/// Implementations must be monotone non-decreasing per instance;
/// the absolute origin is arbitrary (only differences are
/// meaningful).
pub trait TelemetryClock: std::fmt::Debug + Send + Sync {
    /// Nanoseconds elapsed since this clock's arbitrary origin.
    fn now_ns(&self) -> u64;
}

/// The production clock: monotonic [`Instant`] anchored at
/// construction time.
#[derive(Debug, Clone)]
pub struct RealClock {
    origin: Instant,
}

impl RealClock {
    /// Creates a clock whose origin is "now".
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl TelemetryClock for RealClock {
    fn now_ns(&self) -> u64 {
        // ~584 years of nanoseconds fit in u64; saturate rather than
        // wrap if a process somehow outlives that.
        self.origin.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }
}

/// A hand-driven clock for deterministic tests: time moves only when
/// the test calls [`ManualClock::advance`] or [`ManualClock::set`].
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// Creates a clock frozen at nanosecond 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `ns` nanoseconds.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::Relaxed);
    }

    /// Jumps the clock to an absolute reading. Callers are expected
    /// to keep it monotone; the clock does not enforce it.
    pub fn set(&self, ns: u64) {
        self.now.store(ns, Ordering::Relaxed);
    }
}

impl TelemetryClock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotone() {
        let clock = RealClock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_moves_only_on_demand() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_ns(), 0);
        clock.advance(250);
        assert_eq!(clock.now_ns(), 250);
        clock.advance(50);
        assert_eq!(clock.now_ns(), 300);
        clock.set(1_000);
        assert_eq!(clock.now_ns(), 1_000);
    }

    #[test]
    fn manual_clock_is_usable_as_trait_object() {
        let clock: SharedClock = Arc::new(ManualClock::new());
        assert_eq!(clock.now_ns(), 0);
    }
}
