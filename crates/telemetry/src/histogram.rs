//! Log-bucketed latency/size histogram (HDR-style).
//!
//! Layout: values below 16 land in exact unit buckets; above that,
//! each power of two is split into 16 linear sub-buckets, so bucket
//! width is always `floor / 16` rounded down. Quantiles are
//! nearest-rank over bucket floors, which gives the documented
//! error bound used by the proptest oracle:
//!
//! > `reported <= exact <= reported + reported / 16`
//!
//! (integer division; values below 16 are exact). Relative error is
//! thus at most 1/16 = 6.25%. The observed maximum is tracked
//! exactly, outside the bucket grid.
//!
//! Recording is three relaxed atomic RMWs — no locks, no allocation
//! after construction — so writers on the serving path never
//! contend. Snapshots load each bucket atomically; a snapshot taken
//! during concurrent recording is a valid state *between* two
//! recordings per instrument (counts monotone across successive
//! snapshots), which is exactly what a scraper needs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// 16 exact unit buckets, then 16 sub-buckets for each power of two
/// from 2^4 through 2^63: 16 + 16 * 60 = 976.
const NUM_BUCKETS: usize = 976;

/// Index of the bucket holding `v`.
fn bucket_index(v: u64) -> usize {
    if v < 16 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize;
        let sub = ((v >> (msb - 4)) & 0xF) as usize;
        16 * (msb - 3) + sub
    }
}

/// Smallest value that lands in bucket `i` (what quantiles report).
fn bucket_floor(i: usize) -> u64 {
    if i < 16 {
        i as u64
    } else {
        let msb = i / 16 + 3;
        let sub = i % 16;
        ((16 + sub) as u64) << (msb - 4)
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A concurrent log-bucketed histogram. Cloning shares the
/// underlying buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(NUM_BUCKETS);
        buckets.resize_with(NUM_BUCKETS, AtomicU64::default);
        Self {
            core: Arc::new(HistogramCore {
                buckets,
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation. Lock-free: three relaxed RMWs.
    pub fn record(&self, v: u64) {
        let core = &self.core;
        if let Some(bucket) = core.buckets.get(bucket_index(v)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        core.sum.fetch_add(v, Ordering::Relaxed);
        core.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Captures the current distribution. See the module docs for
    /// the consistency contract under concurrent recording.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let core = &self.core;
        HistogramSnapshot {
            buckets: core
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: core.sum.load(Ordering::Relaxed),
            max: core.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable, mergeable point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no observations (identity for [`merge`]).
    ///
    /// [`merge`]: HistogramSnapshot::merge
    pub fn empty() -> Self {
        Self {
            buckets: vec![0; NUM_BUCKETS],
            sum: 0,
            max: 0,
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum observed value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Nearest-rank quantile for `q` in `[0, 1]`, reported as the
    /// floor of the bucket holding that rank (0 when empty). The
    /// true value is at most `reported + reported / 16`.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_floor(i);
            }
        }
        self.max
    }

    /// Median (nearest-rank, bucketed).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile (nearest-rank, bucketed).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile (nearest-rank, bucketed).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Folds another snapshot into this one: bucket-wise sums, so
    /// quantiles over the merge carry the same error bound. Used to
    /// aggregate per-shard distributions into a fleet view.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_floor(v as usize), v);
        }
    }

    #[test]
    fn bucket_grid_is_continuous_and_monotone() {
        // floor(index(v)) <= v for all v, and floors strictly
        // increase with the index.
        let mut prev = None;
        for i in 0..NUM_BUCKETS {
            let f = bucket_floor(i);
            assert_eq!(bucket_index(f), i, "floor of bucket {i} maps back");
            if let Some(p) = prev {
                assert!(f > p);
            }
            prev = Some(f);
        }
        // Spot-check the seam where exact buckets end.
        assert_eq!(bucket_index(15), 15);
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(31), 31);
        assert_eq!(bucket_index(32), 32);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_error_bound_holds() {
        for v in [0, 1, 15, 16, 17, 100, 1_000, 123_456, u64::MAX / 3] {
            let f = bucket_floor(bucket_index(v));
            assert!(f <= v, "floor {f} > value {v}");
            assert!(v <= f + f / 16, "value {v} above bound for floor {f}");
        }
    }

    #[test]
    fn quantiles_on_known_distribution() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 100);
        assert_eq!(snap.sum(), 5050);
        assert_eq!(snap.max(), 100);
        // Exact p50 is 50; bucketed report must be within the bound.
        let p50 = snap.p50();
        assert!(p50 <= 50 && 50 <= p50 + p50 / 16);
        let p99 = snap.p99();
        assert!(p99 <= 99 && 99 <= p99 + p99 / 16);
    }

    #[test]
    fn empty_snapshot_reports_zeros() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.p99(), 0);
        assert_eq!(snap.max(), 0);
    }

    #[test]
    fn merge_is_bucketwise_sum() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 1..=50u64 {
            a.record(v);
        }
        for v in 51..=100u64 {
            b.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());

        let whole = Histogram::new();
        for v in 1..=100u64 {
            whole.record(v);
        }
        assert_eq!(merged, whole.snapshot());
    }
}
