//! Property test: bucketed quantiles against an exact sorted-vector
//! oracle.
//!
//! The histogram documents `reported <= exact <= reported +
//! reported / 16` for every nearest-rank quantile (integer
//! division; values below 16 are exact). The oracle computes the
//! true nearest-rank value from a sorted copy of the raw
//! observations and checks the bound at p50/p90/p99 for arbitrary
//! value distributions — small exact-bucket values, large
//! log-bucketed values, and mixes.

use obs_telemetry::Histogram;
use proptest::prelude::*;

/// True nearest-rank quantile over raw observations.
fn exact_nearest_rank(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

fn check_bound(values: &[u64]) -> Result<(), String> {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    let snap = h.snapshot();

    let mut sorted = values.to_vec();
    sorted.sort_unstable();

    prop_assert_eq!(snap.count(), sorted.len() as u64);
    prop_assert_eq!(snap.max(), *sorted.last().unwrap());
    prop_assert_eq!(snap.sum(), sorted.iter().sum::<u64>());

    for q in [0.5, 0.9, 0.99] {
        let exact = exact_nearest_rank(&sorted, q);
        let reported = snap.quantile(q);
        prop_assert!(
            reported <= exact,
            "q={q}: reported {reported} above exact {exact}"
        );
        prop_assert!(
            exact <= reported + reported / 16,
            "q={q}: exact {exact} outside bound for reported {reported}"
        );
    }
    Ok(())
}

proptest! {
    /// Wide-range values exercise the log buckets.
    #[test]
    fn quantiles_within_bound_wide(
        values in proptest::collection::vec(0u64..4_000_000_000, 1..200),
    ) {
        check_bound(&values)?;
    }

    /// Small values exercise the exact unit buckets (error must be
    /// zero there, which the shared bound also implies).
    #[test]
    fn quantiles_within_bound_small(
        values in proptest::collection::vec(0u64..16, 1..200),
    ) {
        check_bound(&values)?;
        // Below 16 every bucket is exact: reported == exact.
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            prop_assert_eq!(snap.quantile(q), exact_nearest_rank(&sorted, q));
        }
    }

    /// Merged snapshots obey the same bound as recording everything
    /// into one histogram.
    #[test]
    fn merged_snapshots_match_single_histogram(
        left in proptest::collection::vec(0u64..1_000_000, 1..100),
        right in proptest::collection::vec(0u64..1_000_000, 1..100),
    ) {
        let a = Histogram::new();
        for &v in &left {
            a.record(v);
        }
        let b = Histogram::new();
        for &v in &right {
            b.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());

        let whole = Histogram::new();
        for &v in left.iter().chain(&right) {
            whole.record(v);
        }
        prop_assert_eq!(merged, whole.snapshot());
    }
}
