//! Recorders racing a snapshotting reader.
//!
//! The contract under concurrent recording: every snapshot is
//! internally consistent (each bucket read atomically; the count can
//! only grow), successive snapshots of one histogram are monotone in
//! every bucket, and once all recorders join, the final snapshot
//! accounts for every recorded observation exactly.

use obs_telemetry::{Counter, Histogram, Registry};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const RECORDERS: usize = 4;
const PER_THREAD: u64 = 25_000;

#[test]
fn snapshots_are_monotone_under_racing_recorders() {
    let h = Histogram::new();
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for t in 0..RECORDERS {
            let h = h.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    // Deterministic per-thread value stream spanning
                    // exact and log buckets.
                    h.record((t as u64 + 1) * 7 + i % 4096);
                }
            });
        }

        let reader = scope.spawn(|| {
            let mut last_count = 0u64;
            let mut last_sum = 0u64;
            let mut polls = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = h.snapshot();
                let count = snap.count();
                let sum = snap.sum();
                assert!(
                    count >= last_count,
                    "count went backwards: {last_count} -> {count}"
                );
                assert!(sum >= last_sum, "sum went backwards: {last_sum} -> {sum}");
                assert!(snap.max() <= 4 * 7 + 4095);
                // Quantiles over a mid-race snapshot must stay
                // within the grid the recorders feed.
                assert!(snap.p99() <= snap.max().max(1) + snap.max() / 16);
                last_count = count;
                last_sum = sum;
                polls += 1;
            }
            polls
        });

        // Let the recorder threads finish, then release the reader.
        // (Scope join order: we can't join named handles before the
        // loop-spawned ones, so recorders signal completion by the
        // count reaching the known total.)
        let total = (RECORDERS as u64) * PER_THREAD;
        while h.snapshot().count() < total {
            std::hint::spin_loop();
        }
        stop.store(true, Ordering::Relaxed);
        let polls = reader.join().expect("reader panicked");
        assert!(polls > 0, "reader never snapshotted");
    });

    // Exactness after quiescence: every observation accounted for.
    let snap = h.snapshot();
    assert_eq!(snap.count(), (RECORDERS as u64) * PER_THREAD);
    let expected_sum: u64 = (0..RECORDERS as u64)
        .map(|t| (0..PER_THREAD).map(|i| (t + 1) * 7 + i % 4096).sum::<u64>())
        .sum();
    assert_eq!(snap.sum(), expected_sum);
}

#[test]
fn registry_handles_race_with_snapshots() {
    let registry = Arc::new(Registry::new());
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for t in 0..RECORDERS {
            let registry = Arc::clone(&registry);
            scope.spawn(move || {
                // Half the threads register fresh handles mid-race,
                // half reuse one — both paths must be safe.
                let shard = (t % 2).to_string();
                let counter: Counter =
                    registry.counter_with("race_commits_total", &[("shard", &shard)]);
                let hist = registry.histogram_with("race_commit_ns", &[("shard", &shard)]);
                for i in 0..PER_THREAD {
                    counter.inc();
                    hist.record(i % 1024);
                    if i % 8192 == 0 {
                        // Re-registration returns the same series.
                        let again =
                            registry.counter_with("race_commits_total", &[("shard", &shard)]);
                        assert!(again.get() <= (RECORDERS as u64) * PER_THREAD);
                    }
                }
            });
        }

        let reader = scope.spawn(|| {
            let mut last_total = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let mut total = 0u64;
                for snap in registry.snapshot() {
                    if let obs_telemetry::MetricValue::Counter(v) = snap.value {
                        total += v;
                    }
                }
                assert!(total >= last_total, "counter total went backwards");
                last_total = total;
            }
        });

        let total_counter = || {
            registry
                .snapshot()
                .iter()
                .filter_map(|s| match s.value {
                    obs_telemetry::MetricValue::Counter(v) => Some(v),
                    _ => None,
                })
                .sum::<u64>()
        };
        while total_counter() < (RECORDERS as u64) * PER_THREAD {
            std::hint::spin_loop();
        }
        stop.store(true, Ordering::Relaxed);
        reader.join().expect("reader panicked");
    });

    assert_eq!(
        registry
            .snapshot()
            .iter()
            .filter_map(|s| match &s.value {
                obs_telemetry::MetricValue::Histogram(h) => Some(h.count()),
                _ => None,
            })
            .sum::<u64>(),
        (RECORDERS as u64) * PER_THREAD
    );
}
