//! Pass identities and diagnostics.

use std::fmt;
use std::path::PathBuf;

/// The analyses the linter runs. Each maps to a named invariant in
/// ARCHITECTURE.md's invariant→test matrix ("Static analysis"
/// section).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Pass {
    /// No `.unwrap()` / `.expect()` / `panic!`-family macros in
    /// non-test code of the serving crates. Pragma key: `panic`.
    PanicFreedom,
    /// In `obs_live`, a function that `append`s to the journal must
    /// `sync` before any `apply*` / `publish`. Pragma key: `ordering`.
    CommitOrdering,
    /// No lock guard held across a blocking call (fsync, thread
    /// join, simulated RTT). Pragma key: `guard`.
    GuardAcrossBlocking,
    /// No `HashMap`/`HashSet` and no wall-clock reads in modules
    /// tagged `lint:deterministic`. Pragma key: `determinism`.
    Determinism,
    /// `let _ =` on a fallible commit/fsync call needs a pragma.
    /// Pragma key: `discard`.
    DiscardedResult,
    /// A direct panic site (`unwrap`, `expect`, `panic!`-family,
    /// slice/array indexing) in a *non*-serving crate that the
    /// workspace call graph proves reachable from a function defined
    /// in a serving crate. Pragma key: `reach` — a pragma on a call
    /// edge (the call-site line) or on the panic site itself cuts
    /// every chain through it.
    PanicReachability,
    /// An instrument name present on one observability surface
    /// (code registration, the ARCHITECTURE.md catalog, the ci.yml
    /// grep lists) but missing from another, or a registration whose
    /// name the drift detector cannot see (non-literal first
    /// argument). Pragma key: `drift`.
    InstrumentDrift,
    /// A malformed `lint:allow` pragma (reasonless, unknown pass).
    /// Not suppressible — a typo'd suppression must not hide itself.
    Pragma,
    /// A file or observability surface the linter must gate but
    /// could not read. Not suppressible — the linter never silently
    /// skips part of its surface.
    Io,
}

impl Pass {
    /// The pragma keys, in pass order (excluding the
    /// non-suppressible `Pragma` and `Io`).
    pub const KEYS: [&'static str; 7] = [
        "panic",
        "ordering",
        "guard",
        "determinism",
        "discard",
        "reach",
        "drift",
    ];

    /// Parses a pragma key.
    pub fn from_key(key: &str) -> Option<Pass> {
        match key {
            "panic" => Some(Pass::PanicFreedom),
            "ordering" => Some(Pass::CommitOrdering),
            "guard" => Some(Pass::GuardAcrossBlocking),
            "determinism" => Some(Pass::Determinism),
            "discard" => Some(Pass::DiscardedResult),
            "reach" => Some(Pass::PanicReachability),
            "drift" => Some(Pass::InstrumentDrift),
            _ => None,
        }
    }

    /// The name diagnostics print.
    pub fn name(self) -> &'static str {
        match self {
            Pass::PanicFreedom => "panic-freedom",
            Pass::CommitOrdering => "commit-ordering",
            Pass::GuardAcrossBlocking => "guard-across-blocking",
            Pass::Determinism => "determinism",
            Pass::DiscardedResult => "discarded-result",
            Pass::PanicReachability => "panic-reachability",
            Pass::InstrumentDrift => "instrument-drift",
            Pass::Pragma => "pragma",
            Pass::Io => "io",
        }
    }

    /// The stable key used in machine-readable output and the
    /// ratchet baseline (pragma key where one exists).
    pub fn key(self) -> &'static str {
        match self {
            Pass::PanicFreedom => "panic",
            Pass::CommitOrdering => "ordering",
            Pass::GuardAcrossBlocking => "guard",
            Pass::Determinism => "determinism",
            Pass::DiscardedResult => "discard",
            Pass::PanicReachability => "reach",
            Pass::InstrumentDrift => "drift",
            Pass::Pragma => "pragma",
            Pass::Io => "io",
        }
    }
}

/// One finding: file, line, pass, message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// File the finding is in (relative to the lint root).
    pub file: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// The pass that fired.
    pub pass: Pass,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.pass.name(),
            self.message
        )
    }
}
