//! The ratchet baseline.
//!
//! `LINT_BASELINE.tsv` (committed at the workspace root) records the
//! accepted pre-existing findings so that turning on a new pass
//! doesn't block CI on day one while *new* findings still fail the
//! gate. Entries match on `(file, pass-key, message)` — line numbers
//! are deliberately excluded so unrelated edits that shift a finding
//! up or down don't un-baseline it. The file is plain tab-separated
//! text so diffs review like code; burn-down means deleting lines.

use crate::pass::Diagnostic;
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::Path;

/// The default baseline file name, resolved against the lint root.
pub const DEFAULT_FILE: &str = "LINT_BASELINE.tsv";

/// A loaded ratchet baseline.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: BTreeSet<(String, String, String)>,
}

impl Baseline {
    /// Parses the tab-separated text. Blank lines and `#` comments
    /// are skipped; short lines are ignored (they can match
    /// nothing).
    pub fn parse(text: &str) -> Baseline {
        let mut entries = BTreeSet::new();
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut cols = line.splitn(3, '\t');
            if let (Some(file), Some(key), Some(message)) = (cols.next(), cols.next(), cols.next())
            {
                entries.insert((file.to_owned(), key.to_owned(), message.to_owned()));
            }
        }
        Baseline { entries }
    }

    /// Loads the baseline at `path`; a missing file is an empty
    /// baseline (the ratchet starts fully engaged), any other I/O
    /// error propagates.
    pub fn load(path: &Path) -> io::Result<Baseline> {
        match fs::read_to_string(path) {
            Ok(text) => Ok(Baseline::parse(&text)),
            Err(err) if err.kind() == io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(err) => Err(err),
        }
    }

    /// Whether the finding is covered by a baseline entry.
    pub fn contains(&self, d: &Diagnostic) -> bool {
        self.entries.contains(&(
            d.file.display().to_string(),
            d.pass.key().to_owned(),
            d.message.clone(),
        ))
    }

    /// Splits findings into (new, baselined).
    pub fn partition<'a>(
        &self,
        findings: &'a [Diagnostic],
    ) -> (Vec<&'a Diagnostic>, Vec<&'a Diagnostic>) {
        findings.iter().partition(|d| !self.contains(d))
    }

    /// Renders findings as baseline text (stable order, deduped —
    /// two findings differing only by line collapse to one entry).
    pub fn render(findings: &[Diagnostic]) -> String {
        let rows: BTreeSet<String> = findings
            .iter()
            .map(|d| format!("{}\t{}\t{}", d.file.display(), d.pass.key(), d.message))
            .collect();
        let mut out = String::from(
            "# obs_lint ratchet baseline: accepted pre-existing findings.\n\
             # Matching is (file, pass-key, message); lines are not part of the key.\n\
             # Regenerate with `obs_lint check --write-baseline`; burn-down = delete rows.\n",
        );
        for row in rows {
            out.push_str(&row);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::Pass;
    use std::path::PathBuf;

    fn diag(file: &str, line: u32, pass: Pass, message: &str) -> Diagnostic {
        Diagnostic {
            file: PathBuf::from(file),
            line,
            pass,
            message: message.to_owned(),
        }
    }

    #[test]
    fn round_trip_ignores_lines() {
        let findings = vec![
            diag("crates/live/src/a.rs", 10, Pass::PanicFreedom, "boom"),
            diag("crates/live/src/a.rs", 99, Pass::PanicFreedom, "boom"),
        ];
        let baseline = Baseline::parse(&Baseline::render(&findings));
        let moved = diag("crates/live/src/a.rs", 1234, Pass::PanicFreedom, "boom");
        assert!(baseline.contains(&moved));
        let other = diag("crates/live/src/a.rs", 10, Pass::CommitOrdering, "boom");
        assert!(!baseline.contains(&other));
    }

    #[test]
    fn partition_separates_new_findings() {
        let old = diag("a.rs", 1, Pass::InstrumentDrift, "stale");
        let baseline = Baseline::parse(&Baseline::render(std::slice::from_ref(&old)));
        let fresh = diag("a.rs", 2, Pass::InstrumentDrift, "brand new");
        let findings = vec![old.clone(), fresh.clone()];
        let (new, baselined) = baseline.partition(&findings);
        assert_eq!(new, vec![&fresh]);
        assert_eq!(baselined, vec![&old]);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let baseline = Baseline::parse("# header\n\na.rs\tpanic\tmsg\n");
        assert!(baseline.contains(&diag("a.rs", 7, Pass::PanicFreedom, "msg")));
    }
}
