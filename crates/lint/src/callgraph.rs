//! Phase 1b of the workspace analysis: the call graph.
//!
//! Call sites are extracted from each fn body's token stream and
//! resolved against the [`SymbolIndex`]. Resolution is name-based
//! and deliberately *over*-approximate (a reachability analysis must
//! never miss a real edge), but bounded by what the caller's file
//! can actually see:
//!
//! * a plain call `name(…)` resolves to free fns named `name` in the
//!   caller's own crate, plus any crate the file imports `name` from
//!   (or glob-imports);
//! * a path call `Type::name(…)` / `obs_x::name(…)` resolves through
//!   the qualifier — impl methods of `Type` (if visible), or free
//!   fns of the named crate;
//! * a method call `recv.name(…)` resolves to impl methods named
//!   `name` on types defined in the caller's crate or imported by
//!   the caller's file (the receiver's type is unknown to a lexer,
//!   so every visible candidate gets an edge).
//!
//! Imports inside `#[cfg(test)]` regions don't count, so test-only
//! dependencies (`World::generate` in a `mod tests`) never create
//! production edges.

use crate::lexer::Token;
use crate::source::SourceFile;
use crate::symbols::{FnId, SymbolIndex};
use std::collections::BTreeMap;

/// One resolved call edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// The calling fn.
    pub from: FnId,
    /// The called fn.
    pub to: FnId,
    /// 1-based line of the call site (in the caller's file).
    pub line: u32,
}

/// The workspace call graph: resolved edges plus reverse adjacency.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All resolved edges, deduplicated, in deterministic order.
    pub edges: Vec<Edge>,
    /// Edge indices by callee — the reverse adjacency the
    /// reachability pass walks.
    pub callers_of: BTreeMap<FnId, Vec<usize>>,
    /// Edge indices by caller.
    pub calls_from: BTreeMap<FnId, Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph over every fn body in the index.
    pub fn build(files: &[SourceFile], index: &SymbolIndex) -> CallGraph {
        let mut edges = Vec::new();
        for (caller, symbol) in index.fns.iter().enumerate() {
            let file = &files[symbol.file_idx];
            let imports = &index.imports[symbol.file_idx];
            for site in call_sites(file, symbol.body) {
                for callee in resolve(&site, symbol, index, imports) {
                    if callee != caller {
                        edges.push(Edge {
                            from: caller,
                            to: callee,
                            line: site.line,
                        });
                    }
                }
            }
        }
        edges.sort_by_key(|e| (e.from, e.to, e.line));
        edges.dedup();
        let mut graph = CallGraph {
            edges,
            callers_of: BTreeMap::new(),
            calls_from: BTreeMap::new(),
        };
        for (i, edge) in graph.edges.iter().enumerate() {
            graph.callers_of.entry(edge.to).or_default().push(i);
            graph.calls_from.entry(edge.from).or_default().push(i);
        }
        graph
    }
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `name(…)` with no path or receiver.
    Plain,
    /// `recv.name(…)`.
    Method,
    /// `Qual::name(…)`.
    Path {
        /// The segment directly before `::name` (`Qual`).
        qual: String,
        /// The leading path segment (equals `qual` for two-segment
        /// paths).
        root: String,
    },
}

/// One unresolved call site inside a fn body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called name (last path segment).
    pub name: String,
    /// The call shape.
    pub kind: CallKind,
    /// 1-based line.
    pub line: u32,
}

/// Extracts every non-test call site in the body token range.
pub fn call_sites(file: &SourceFile, body: (usize, usize)) -> Vec<CallSite> {
    let tokens = &file.tokens;
    let mut sites = Vec::new();
    for i in body.0 + 1..body.1.min(tokens.len()) {
        if file.test_mask[i] || !crate::passes::is_call(tokens, i) {
            continue;
        }
        let name = tokens[i].ident().unwrap_or_default().to_owned();
        let kind = if i > 0 && tokens[i - 1].is_punct('.') {
            CallKind::Method
        } else if i >= 3 && tokens[i - 1].is_punct(':') && tokens[i - 2].is_punct(':') {
            let qual = tokens
                .get(i - 3)
                .and_then(Token::ident)
                .unwrap_or_default()
                .to_owned();
            // Walk the path back to its root segment.
            let mut j = i - 3;
            let mut root = qual.clone();
            while j >= 3
                && tokens[j - 1].is_punct(':')
                && tokens[j - 2].is_punct(':')
                && tokens[j - 3].ident().is_some()
            {
                j -= 3;
                root = tokens[j].ident().unwrap_or_default().to_owned();
            }
            if qual.is_empty() {
                CallKind::Plain
            } else {
                CallKind::Path { qual, root }
            }
        } else {
            CallKind::Plain
        };
        sites.push(CallSite {
            name,
            kind,
            line: tokens[i].line,
        });
    }
    sites
}

/// Resolves a call site to candidate callees.
fn resolve(
    site: &CallSite,
    caller: &crate::symbols::FnSymbol,
    index: &SymbolIndex,
    imports: &crate::symbols::FileImports,
) -> Vec<FnId> {
    let visible_crate =
        |krate: &str| -> bool { krate == caller.krate || imports.glob_crates.contains(krate) };
    let type_visible = |ty: &str, krate: &str| -> bool {
        visible_crate(krate) || imports.names.get(ty).is_some_and(|k| k == krate)
    };
    let name_visible = |name: &str, krate: &str| -> bool {
        visible_crate(krate) || imports.names.get(name).is_some_and(|k| k == krate)
    };
    let empty = Vec::new();
    match &site.kind {
        CallKind::Plain => index
            .free_by_name
            .get(&site.name)
            .unwrap_or(&empty)
            .iter()
            .copied()
            .filter(|&id| name_visible(&site.name, &index.fns[id].krate))
            .collect(),
        CallKind::Method => index
            .methods_by_name
            .get(&site.name)
            .unwrap_or(&empty)
            .iter()
            .copied()
            .filter(|&id| {
                let sym = &index.fns[id];
                let ty = sym.impl_type.as_deref().unwrap_or_default();
                type_visible(ty, &sym.krate)
            })
            .collect(),
        CallKind::Path { qual, root } => {
            // `Self::helper(…)` — the caller's own impl type.
            let qual = if qual == "Self" {
                caller.impl_type.clone().unwrap_or_else(|| qual.clone())
            } else {
                qual.clone()
            };
            let mut out: Vec<FnId> = index
                .methods_by_name
                .get(&site.name)
                .unwrap_or(&empty)
                .iter()
                .copied()
                .filter(|&id| {
                    let sym = &index.fns[id];
                    sym.impl_type.as_deref() == Some(qual.as_str())
                        && (type_visible(&qual, &sym.krate) || root == &sym.krate)
                })
                .collect();
            // Crate- or module-qualified free fns:
            // `obs_stats::spearman(…)`, `normalize::z_scores(…)`.
            out.extend(
                index
                    .free_by_name
                    .get(&site.name)
                    .unwrap_or(&empty)
                    .iter()
                    .copied()
                    .filter(|&id| {
                        let sym = &index.fns[id];
                        let root_names_crate =
                            root == &sym.krate || (root == "crate" && sym.krate == caller.krate);
                        root_names_crate
                            || visible_crate(&sym.krate)
                            || name_visible(&qual, &sym.krate)
                    }),
            );
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn graph(files: &[(&str, &str)]) -> (Vec<SourceFile>, SymbolIndex, CallGraph) {
        let parsed: Vec<SourceFile> = files
            .iter()
            .map(|(path, src)| SourceFile::parse(PathBuf::from(path), src))
            .collect();
        let krates: Vec<String> = files
            .iter()
            .map(|(path, _)| {
                let dir = path.split('/').nth(1).unwrap_or("x");
                format!("obs_{dir}")
            })
            .collect();
        let index = SymbolIndex::build(&parsed, &krates);
        let cg = CallGraph::build(&parsed, &index);
        (parsed, index, cg)
    }

    fn edge_names(index: &SymbolIndex, cg: &CallGraph) -> Vec<(String, String)> {
        cg.edges
            .iter()
            .map(|e| (index.fns[e.from].name.clone(), index.fns[e.to].name.clone()))
            .collect()
    }

    #[test]
    fn same_crate_plain_calls_resolve() {
        let (_, index, cg) = graph(&[(
            "crates/live/src/a.rs",
            "fn caller() { helper(); }\nfn helper() {}",
        )]);
        assert_eq!(
            edge_names(&index, &cg),
            vec![("caller".to_string(), "helper".to_string())]
        );
    }

    #[test]
    fn cross_crate_calls_need_an_import() {
        let (_, index, cg) = graph(&[
            (
                "crates/live/src/a.rs",
                "use obs_stats::quantile;\nfn caller() { quantile(); }",
            ),
            ("crates/stats/src/lib.rs", "pub fn quantile() {}"),
            // Same name in an unimported crate: no edge.
            ("crates/synth/src/lib.rs", "pub fn quantile() {}"),
        ]);
        let names: Vec<(String, String)> = edge_names(&index, &cg);
        assert_eq!(names.len(), 1);
        assert_eq!(index.fns[cg.edges[0].to].krate, "obs_stats");
    }

    #[test]
    fn method_calls_resolve_to_imported_types_only() {
        let (_, index, cg) = graph(&[
            (
                "crates/search/src/a.rs",
                "use obs_analytics::LinkGraph;\nfn caller(g: &LinkGraph) { g.outbound(); }",
            ),
            (
                "crates/analytics/src/links.rs",
                "impl LinkGraph { pub fn outbound(&self) {} }\n\
                 impl Other { pub fn outbound(&self) {} }",
            ),
            (
                "crates/mashup/src/x.rs",
                "impl Widget { pub fn outbound(&self) {} }",
            ),
        ]);
        // LinkGraph::outbound reachable (type imported); Other and
        // Widget are not visible from the caller's file.
        let tos: Vec<&str> = cg
            .edges
            .iter()
            .map(|e| index.fns[e.to].impl_type.as_deref().unwrap())
            .collect();
        assert_eq!(tos, vec!["LinkGraph"]);
    }

    #[test]
    fn self_path_calls_resolve_to_own_impl() {
        let (_, index, cg) = graph(&[(
            "crates/live/src/a.rs",
            "impl S { fn a(&self) { Self::b(); } fn b() {} }",
        )]);
        assert_eq!(
            edge_names(&index, &cg),
            vec![("a".to_string(), "b".to_string())]
        );
    }

    #[test]
    fn crate_qualified_free_fns_resolve() {
        let (_, index, cg) = graph(&[
            (
                "crates/search/src/a.rs",
                "fn caller() { obs_stats::spearman(); }",
            ),
            ("crates/stats/src/lib.rs", "pub fn spearman() {}"),
        ]);
        assert_eq!(
            edge_names(&index, &cg),
            vec![("caller".to_string(), "spearman".to_string())]
        );
    }

    #[test]
    fn test_code_creates_no_edges() {
        let (_, index, cg) = graph(&[
            (
                "crates/live/src/a.rs",
                "#[cfg(test)]\nmod tests { use obs_synth::boom; fn t() { boom(); } }\n\
                 fn live() {}",
            ),
            ("crates/synth/src/lib.rs", "pub fn boom() {}"),
        ]);
        assert!(cg.edges.is_empty(), "{:?}", edge_names(&index, &cg));
    }

    #[test]
    fn recursion_does_not_self_edge() {
        let (_, index, cg) = graph(&[("crates/live/src/a.rs", "fn f() { f(); }")]);
        assert!(cg.edges.is_empty(), "{:?}", edge_names(&index, &cg));
    }
}
