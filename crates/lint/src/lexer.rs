//! A hand-rolled Rust lexer with span (line) tracking.
//!
//! `syn` is not available offline (the build image has no crates.io
//! access, consistent with the `shims/` approach), so the linter
//! carries its own token scanner. It is deliberately *not* a full
//! Rust grammar: the passes only need a faithful token stream —
//! identifiers, literals, punctuation — with comments separated out
//! (they carry the pragma grammar) and with string/char/comment
//! contents never leaking into the code stream. Getting *that* wrong
//! would make every pass unsound, so the corner cases the workspace
//! actually contains are covered and unit-tested: nested block
//! comments, raw strings, byte strings, byte chars, lifetimes vs.
//! char literals, numeric literals with type suffixes.

/// What a code token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `append`, `HashMap`, …).
    Ident(String),
    /// A lifetime (`'a`, `'_`, `'static`).
    Lifetime,
    /// Any string-like literal (`"…"`, `r#"…"#`, `b"…"`), carrying
    /// its raw inner text (delimiters stripped, escapes untouched —
    /// the instrument-drift pass only reads plain snake_case names).
    Str(String),
    /// A char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// A numeric literal (`42`, `0xEDB8_8320u32`, `1.5e-3`).
    Num,
    /// A single punctuation character (`.`, `(`, `{`, `!`, …).
    /// Multi-character operators arrive as consecutive tokens.
    Punct(char),
}

/// One code token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub kind: TokenKind,
    /// 1-based line number.
    pub line: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(name) => Some(name),
            _ => None,
        }
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// Whether this token is the given identifier/keyword.
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    /// The raw inner text, if this token is a string literal.
    pub fn str_text(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Str(text) => Some(text),
            _ => None,
        }
    }
}

/// One comment (line or block) with the 1-based line it starts on.
/// The text excludes the comment markers themselves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line number of the comment start.
    pub line: u32,
    /// Comment text without `//` / `/* */` markers.
    pub text: String,
}

/// A lexed source file: the comment-free code token stream plus the
/// comments, both line-stamped.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src`. Never fails: unterminated constructs are tolerated
/// by running to end-of-file, which is the right behavior for a
/// linter (the compiler, not the linter, owns rejecting such a
/// file — and every file the linter gates already compiles).
pub fn lex(src: &str) -> Lexed {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while self.pos < self.src.len() {
            let line = self.line;
            let b = self.src[self.pos];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.quote(),
                b'r' | b'b' if self.raw_or_byte_literal() => {}
                _ if b == b'_' || b.is_ascii_alphabetic() => self.ident(),
                _ if b.is_ascii_digit() => self.number(),
                _ => {
                    self.pos += 1;
                    self.push(TokenKind::Punct(b as char), line);
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, line: u32) {
        self.out.tokens.push(Token { kind, line });
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let start = self.pos + 2;
        let mut end = start;
        while end < self.src.len() && self.src[end] != b'\n' {
            end += 1;
        }
        self.out.comments.push(Comment {
            line,
            text: String::from_utf8_lossy(&self.src[start..end]).into_owned(),
        });
        self.pos = end; // the newline advances the line counter itself
    }

    /// Block comments nest in Rust; the depth counter honors that.
    fn block_comment(&mut self) {
        let line = self.line;
        let start = self.pos + 2;
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            match (self.src[self.pos], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        let end = self.pos.saturating_sub(2).max(start);
        self.out.comments.push(Comment {
            line,
            text: String::from_utf8_lossy(&self.src[start..end]).into_owned(),
        });
    }

    /// A `"…"` string with escapes; newlines inside advance the line
    /// counter so later tokens stay correctly stamped.
    fn string(&mut self) {
        let line = self.line;
        self.pos += 1;
        let start = self.pos;
        let mut end = self.src.len();
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.pos += 2,
                b'"' => {
                    end = self.pos;
                    self.pos += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..end.min(self.src.len())]).into_owned();
        self.push(TokenKind::Str(text), line);
    }

    /// `'` begins either a lifetime (`'a`, `'_`) or a char literal
    /// (`'x'`, `'\n'`). The disambiguation rustc itself uses: it is
    /// a char literal when an escape follows, or when the character
    /// after the (single) content character is a closing quote.
    fn quote(&mut self) {
        let line = self.line;
        let next = self.peek(1);
        let is_char = match next {
            Some(b'\\') => true,
            Some(c) if c == b'_' || c.is_ascii_alphanumeric() => self.peek(2) == Some(b'\''),
            _ => true, // e.g. '(' — a char literal of punctuation
        };
        if is_char {
            self.pos += 1;
            while self.pos < self.src.len() {
                match self.src[self.pos] {
                    b'\\' => self.pos += 2,
                    b'\'' => {
                        self.pos += 1;
                        break;
                    }
                    b'\n' => break, // not a char literal after all; bail
                    _ => self.pos += 1,
                }
            }
            self.push(TokenKind::Char, line);
        } else {
            self.pos += 1;
            while self
                .peek(0)
                .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
            {
                self.pos += 1;
            }
            self.push(TokenKind::Lifetime, line);
        }
    }

    /// Handles the literal prefixes starting with `r` or `b`:
    /// `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`. Returns false if
    /// the text is a plain identifier (`raw`, `bytes`, …), leaving
    /// the position untouched for `ident()` to consume.
    fn raw_or_byte_literal(&mut self) -> bool {
        let line = self.line;
        let b0 = self.src[self.pos];
        let rest = &self.src[self.pos..];
        // b'…' — a byte char with ordinary escape rules.
        if b0 == b'b' && rest.get(1) == Some(&b'\'') {
            self.pos += 1;
            self.quote();
            return true;
        }
        // b"…" — a byte string with ordinary escape rules.
        if b0 == b'b' && rest.get(1) == Some(&b'"') {
            self.pos += 1;
            self.string();
            return true;
        }
        // r"…" / r#"…"# / br"…" / br#"…"# — raw strings: no escapes,
        // terminated by a quote followed by the same number of `#`s.
        let hash_start = match (b0, rest.get(1)) {
            (b'r', Some(&b'"' | &b'#')) => 1,
            (b'b', Some(&b'r')) if matches!(rest.get(2), Some(&b'"' | &b'#')) => 2,
            _ => return false,
        };
        let mut hashes = 0usize;
        while rest.get(hash_start + hashes) == Some(&b'#') {
            hashes += 1;
        }
        if rest.get(hash_start + hashes) != Some(&b'"') {
            return false; // r#foo — a raw identifier, not a string
        }
        self.pos += hash_start + hashes + 1;
        let start = self.pos;
        let mut end = self.src.len();
        let closer: Vec<u8> = std::iter::once(b'"')
            .chain(std::iter::repeat_n(b'#', hashes))
            .collect();
        while self.pos < self.src.len() {
            if self.src[self.pos] == b'\n' {
                self.line += 1;
                self.pos += 1;
                continue;
            }
            if self.src[self.pos..].starts_with(&closer) {
                end = self.pos;
                self.pos += closer.len();
                break;
            }
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.src[start..end.min(self.src.len())]).into_owned();
        self.push(TokenKind::Str(text), line);
        true
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokenKind::Ident(text), line);
    }

    /// Numbers, including `0x…` radix forms, `_` separators, type
    /// suffixes (`u32`), fractions and exponents. A trailing `.` is
    /// consumed only when a digit follows, so ranges (`0..8`) and
    /// method calls on literals (`1.max(2)`) tokenize correctly.
    fn number(&mut self) {
        let line = self.line;
        while self
            .peek(0)
            .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
            while self
                .peek(0)
                .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
            {
                self.pos += 1;
            }
        }
        // Exponent with an explicit sign (`1e-3`): the sign is not an
        // ident char, so stitch it on here.
        if matches!(self.src.get(self.pos.wrapping_sub(1)), Some(b'e' | b'E'))
            && matches!(self.peek(0), Some(b'+' | b'-'))
            && self.peek(1).is_some_and(|c| c.is_ascii_digit())
        {
            self.pos += 1;
            while self.peek(0).is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        self.push(TokenKind::Num, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn comments_never_leak_into_code_tokens() {
        let lexed = lex("let a = 1; // unwrap() in a comment\n/* panic! */ let b = 2;");
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("panic")));
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("unwrap()"));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let lexed = lex("/* outer /* inner */ still comment */ fn after() {}");
        assert_eq!(idents("/* a /* b */ c */ x"), vec!["x"]);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("after")));
        assert!(lexed.comments[0].text.contains("inner"));
    }

    #[test]
    fn strings_hide_their_contents_and_track_lines() {
        let lexed = lex("let s = \"fn unwrap() // not code\";\nlet t = 1;");
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(lexed.comments.is_empty());
        let t_line = lexed
            .tokens
            .iter()
            .find(|t| t.is_ident("t"))
            .map(|t| t.line);
        assert_eq!(t_line, Some(2));
    }

    #[test]
    fn raw_and_byte_strings_are_single_tokens() {
        for (src, inner) in [
            ("r\"panic!\"", "panic!"),
            ("r#\"has \" quote and panic!\"#", "has \" quote and panic!"),
            ("b\"panic!\"", "panic!"),
            ("br#\"panic!\"#", "panic!"),
        ] {
            let lexed = lex(src);
            assert_eq!(lexed.tokens.len(), 1, "{src}");
            assert_eq!(lexed.tokens[0].str_text(), Some(inner), "{src}");
        }
    }

    #[test]
    fn string_tokens_carry_their_inner_text() {
        let lexed = lex("registry.histogram(\"live_ingest_stage_ns\");");
        let texts: Vec<&str> = lexed.tokens.iter().filter_map(Token::str_text).collect();
        assert_eq!(texts, vec!["live_ingest_stage_ns"]);
        // Escapes are preserved raw, not interpreted.
        assert_eq!(lex(r#""a\"b""#).tokens[0].str_text(), Some("a\\\"b"));
    }

    #[test]
    fn lifetimes_and_char_literals_disambiguate() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let b = b'\\n'; }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 3);
    }

    #[test]
    fn numbers_with_suffixes_and_radix_lex_as_one_token() {
        for src in ["0xEDB8_8320u32", "1_000", "1.5e-3", "42usize"] {
            let lexed = lex(src);
            assert_eq!(lexed.tokens.len(), 1, "{src}: {:?}", lexed.tokens);
            assert_eq!(lexed.tokens[0].kind, TokenKind::Num, "{src}");
        }
        // Ranges and literal method calls keep their punctuation.
        assert_eq!(lex("0..8").tokens.len(), 4);
        assert!(lex("1.max(2)").tokens.iter().any(|t| t.is_ident("max")));
    }

    #[test]
    fn identifiers_starting_with_r_or_b_are_not_strings() {
        assert_eq!(
            idents("raw bytes br b r"),
            vec!["raw", "bytes", "br", "b", "r"]
        );
    }

    #[test]
    fn line_numbers_are_one_based_and_advance() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }
}
