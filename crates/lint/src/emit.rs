//! Output formats for findings: plain text, JSON, and GitHub
//! workflow annotations. Hand-rolled (the linter is zero-dep by
//! design — it must gate every crate without sitting downstream of
//! one), so the JSON writer escapes by hand.

use crate::pass::Diagnostic;
use std::fmt::Write;

/// The CLI's `--format` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// `file:line: [pass] message`, one per finding.
    Text,
    /// One JSON document with every finding and baseline status.
    Json,
    /// `::error file=…,line=…` GitHub workflow annotations (new
    /// findings only — baselined ones must not decorate PR lines).
    Github,
}

impl Format {
    /// Parses a `--format` value.
    pub fn parse(s: &str) -> Option<Format> {
        match s {
            "text" => Some(Format::Text),
            "json" => Some(Format::Json),
            "github" => Some(Format::Github),
            _ => None,
        }
    }
}

/// Renders the full report for one run: `new` failed the ratchet,
/// `baselined` are accepted pre-existing findings.
pub fn render(format: Format, new: &[&Diagnostic], baselined: &[&Diagnostic]) -> String {
    match format {
        Format::Text => render_text(new, baselined),
        Format::Json => render_json(new, baselined),
        Format::Github => render_github(new, baselined),
    }
}

fn render_text(new: &[&Diagnostic], baselined: &[&Diagnostic]) -> String {
    let mut out = String::new();
    for d in new {
        let _ = writeln!(out, "{d}");
    }
    if !baselined.is_empty() {
        let _ = writeln!(
            out,
            "obs_lint: {} baselined finding(s) not shown (see LINT_BASELINE.tsv)",
            baselined.len()
        );
    }
    if new.is_empty() {
        let _ = writeln!(out, "obs_lint: workspace clean");
    } else {
        let _ = writeln!(out, "obs_lint: {} new finding(s)", new.len());
    }
    out
}

fn render_json(new: &[&Diagnostic], baselined: &[&Diagnostic]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    let all = new
        .iter()
        .map(|d| (*d, false))
        .chain(baselined.iter().map(|d| (*d, true)));
    let mut first = true;
    for (d, is_baselined) in all {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\n    {{\"file\": \"{}\", \"line\": {}, \"pass\": \"{}\", \
             \"message\": \"{}\", \"baselined\": {}}}",
            json_escape(&d.file.display().to_string()),
            d.line,
            d.pass.key(),
            json_escape(&d.message),
            is_baselined
        );
    }
    let _ = write!(
        out,
        "\n  ],\n  \"new\": {},\n  \"baselined\": {}\n}}\n",
        new.len(),
        baselined.len()
    );
    out
}

fn render_github(new: &[&Diagnostic], baselined: &[&Diagnostic]) -> String {
    let mut out = String::new();
    for d in new {
        let _ = writeln!(
            out,
            "::error file={},line={},title=obs_lint {}::{}",
            property_escape(&d.file.display().to_string()),
            d.line,
            property_escape(d.pass.name()),
            data_escape(&d.message)
        );
    }
    let _ = writeln!(
        out,
        "obs_lint: {} new finding(s), {} baselined",
        new.len(),
        baselined.len()
    );
    out
}

/// Escapes a JSON string value.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Escapes the message part of a workflow command.
fn data_escape(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Escapes a workflow-command property (also `,` and `:`).
fn property_escape(s: &str) -> String {
    data_escape(s).replace(',', "%2C").replace(':', "%3A")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::Pass;
    use std::path::PathBuf;

    fn diag(message: &str) -> Diagnostic {
        Diagnostic {
            file: PathBuf::from("crates/live/src/a.rs"),
            line: 7,
            pass: Pass::PanicReachability,
            message: message.to_owned(),
        }
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let d = diag("says \"hi\"\nand more");
        let out = render_json(&[&d], &[]);
        assert!(out.contains(r#""message": "says \"hi\"\nand more""#));
        assert!(out.contains(r#""pass": "reach""#));
        assert!(out.contains("\"new\": 1"));
        assert_eq!(out.matches('{').count(), out.matches('}').count());
    }

    #[test]
    fn github_annotations_escape_newlines_and_commas() {
        let d = diag("chain: a → b,\nthen c");
        let out = render_github(&[&d], &[]);
        assert!(out.starts_with("::error file=crates/live/src/a.rs,line=7,"));
        assert!(out.contains("%0A"));
        assert!(!out.lines().next().unwrap().contains('\n'));
    }

    #[test]
    fn baselined_findings_do_not_annotate() {
        let d = diag("old news");
        let out = render_github(&[], &[&d]);
        assert!(!out.contains("::error"));
        assert!(out.contains("0 new finding(s), 1 baselined"));
    }
}
