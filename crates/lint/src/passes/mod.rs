//! The repo-specific analyses.
//!
//! Every pass walks the pre-analyzed [`SourceFile`] token stream,
//! skips test-masked tokens, and reports through
//! [`SourceFile::report`] so `lint:allow` pragmas apply uniformly.

pub mod commit_ordering;
pub mod determinism;
pub mod discarded_result;
pub mod guard_blocking;
pub mod instrument_drift;
pub mod panic_freedom;
pub mod panic_reachability;

use crate::lexer::Token;
use crate::source::SourceFile;

/// Whether `tokens[i]` is the name of a call: an identifier directly
/// followed by `(`, and not a declaration (`fn name(`).
pub(crate) fn is_call(tokens: &[Token], i: usize) -> bool {
    tokens[i].ident().is_some()
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
        && !(i > 0 && tokens[i - 1].is_ident("fn"))
}

/// Whether `tokens[i]` is a *method* call name (`recv.name(…)`).
pub(crate) fn is_method_call(tokens: &[Token], i: usize) -> bool {
    is_call(tokens, i) && i > 0 && tokens[i - 1].is_punct('.')
}

/// Iterator over the indices of non-test code tokens.
pub(crate) fn live_indices(file: &SourceFile) -> impl Iterator<Item = usize> + '_ {
    (0..file.tokens.len()).filter(|&i| !file.test_mask[i])
}

/// The spans of every non-test `fn` body in the file, as
/// `(name, open_brace_index, close_brace_index)`.
///
/// The body is found as the first `{` after the `fn` name at bracket
/// depth 0 relative to the signature — `where` clauses and return
/// types carry no braces in this workspace's (and most) code.
pub(crate) fn fn_bodies(file: &SourceFile) -> Vec<(String, usize, usize)> {
    let tokens = &file.tokens;
    let mut bodies = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_ident("fn") || file.test_mask[i] {
            i += 1;
            continue;
        }
        let Some(name) = tokens.get(i + 1).and_then(Token::ident) else {
            i += 1;
            continue;
        };
        let mut depth = 0isize;
        let mut j = i + 2;
        let mut open = None;
        while j < tokens.len() {
            match tokens[j].kind {
                crate::lexer::TokenKind::Punct('(' | '[') => depth += 1,
                crate::lexer::TokenKind::Punct(')' | ']') => depth -= 1,
                crate::lexer::TokenKind::Punct('{') if depth == 0 => {
                    open = Some(j);
                    break;
                }
                // A body-less declaration (trait method signature).
                crate::lexer::TokenKind::Punct(';') if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        match open.and_then(|o| file.brace_match.get(&o).map(|&c| (o, c))) {
            Some((open, close)) => {
                bodies.push((name.to_owned(), open, close));
                i = open + 1; // nested fns get their own entries
            }
            None => i = j + 1,
        }
    }
    bodies
}
