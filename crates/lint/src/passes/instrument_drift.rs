//! Cross-artifact instrument-drift detection.
//!
//! PR 8's observability contract lives on three surfaces: the
//! registration calls in code (`registry.counter("…")` & friends),
//! the instrument catalog table in ARCHITECTURE.md, and the
//! metrics-smoke grep lists in ci.yml. Before this pass they were
//! kept in sync by hand — the "rule-based filters go stale silently"
//! failure mode. This pass collects every instrument name literal
//! registered through the `obs_telemetry` API and diffs it against
//! both documentation surfaces; any name present on one surface and
//! missing from another is a finding, attributed to the surface that
//! has it (so the fix-it line is always the one printed).
//!
//! A registration whose first argument is not a string literal is
//! itself a finding: a name the detector cannot see is a name that
//! can drift invisibly. Inline the literal at the registration call,
//! or justify with `// lint:allow(drift): <reason>`.

use crate::pass::{Diagnostic, Pass};
use crate::passes::is_method_call;
use crate::workspace::{Surfaces, Workspace};
use std::collections::BTreeMap;
use std::path::Path;

/// The `obs_telemetry::Registry` registration methods.
const REGISTRATION_METHODS: [&str; 6] = [
    "counter",
    "counter_with",
    "gauge",
    "gauge_with",
    "histogram",
    "histogram_with",
];

/// Runs the pass. With neither surface present (single-file lints,
/// per-pass fixtures) the pass is skipped entirely.
pub fn run(ws: &Workspace, surfaces: &Surfaces, out: &mut Vec<Diagnostic>) {
    if surfaces.architecture.is_none() && surfaces.ci.is_none() {
        return;
    }
    let registered = collect_registered(ws, out);
    if let Some((path, text)) = &surfaces.architecture {
        let catalog = parse_catalog(text);
        diff(
            ws,
            &registered,
            &catalog,
            path,
            "the ARCHITECTURE.md instrument catalog",
            "registered in code",
            out,
        );
    }
    if let Some((path, text)) = &surfaces.ci {
        let greps = parse_ci_lists(text);
        diff(
            ws,
            &registered,
            &greps,
            path,
            "the ci.yml metrics-smoke grep lists",
            "registered in code",
            out,
        );
    }
}

/// Two-way diff between the code registrations and one surface.
#[allow(clippy::too_many_arguments)]
fn diff(
    ws: &Workspace,
    registered: &BTreeMap<String, (usize, u32)>,
    surface: &BTreeMap<String, u32>,
    surface_path: &Path,
    surface_desc: &str,
    code_desc: &str,
    out: &mut Vec<Diagnostic>,
) {
    for (name, &(file_idx, line)) in registered {
        if !surface.contains_key(name) {
            ws.files[file_idx].report(
                out,
                Pass::InstrumentDrift,
                line,
                format!("instrument `{name}` is {code_desc} but missing from {surface_desc}"),
            );
        }
    }
    for (name, &line) in surface {
        if !registered.contains_key(name) {
            out.push(Diagnostic {
                file: surface_path.to_path_buf(),
                line,
                pass: Pass::InstrumentDrift,
                message: format!(
                    "instrument `{name}` appears in {surface_desc} but is not {code_desc}"
                ),
            });
        }
    }
}

/// Every instrument name literal registered in the workspace code,
/// keyed by name → first registration site. The `obs_telemetry`
/// crate itself is excluded (its convenience methods forward a
/// non-literal `name` by design), as are `examples/` and the root
/// crate (operator-driven binaries register nothing of their own —
/// and must not be able to demand catalog rows). A registration
/// with a non-literal name is reported on the spot.
fn collect_registered(ws: &Workspace, out: &mut Vec<Diagnostic>) -> BTreeMap<String, (usize, u32)> {
    let mut registered = BTreeMap::new();
    for (file_idx, file) in ws.files.iter().enumerate() {
        let krate = &ws.krates[file_idx];
        if krate == "obs_telemetry" || krate == "examples" || krate == "informing_observers" {
            continue;
        }
        let tokens = &file.tokens;
        for i in 0..tokens.len() {
            if file.test_mask[i]
                || !is_method_call(tokens, i)
                || !tokens[i]
                    .ident()
                    .is_some_and(|n| REGISTRATION_METHODS.contains(&n))
            {
                continue;
            }
            let line = tokens[i].line;
            match tokens.get(i + 2).and_then(|t| t.str_text()) {
                Some(name) => {
                    registered
                        .entry(name.to_owned())
                        .or_insert((file_idx, line));
                }
                None => file.report(
                    out,
                    Pass::InstrumentDrift,
                    line,
                    format!(
                        "`.{}(…)` registers an instrument with a non-literal name: \
                         the drift detector cannot track it — inline the name \
                         literal or justify with `// lint:allow(drift): <reason>`",
                        tokens[i].ident().unwrap_or_default()
                    ),
                ),
            }
        }
    }
    registered
}

/// Instrument names from the ARCHITECTURE.md catalog: every
/// backticked name in the *first column* of the table whose header
/// row starts with `| instrument`, mapped to its 1-based line.
/// (Other columns backtick type names; only the first names
/// instruments.) Public for the drift-canary tests, which mutate
/// scratch copies of the surfaces and assert the pass fires.
pub fn parse_catalog(text: &str) -> BTreeMap<String, u32> {
    let mut names = BTreeMap::new();
    let mut in_table = false;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let trimmed = line.trim();
        if !in_table {
            in_table = trimmed.starts_with("| instrument");
            continue;
        }
        if !trimmed.starts_with('|') {
            in_table = false;
            continue;
        }
        let first_cell = trimmed
            .trim_start_matches('|')
            .split('|')
            .next()
            .unwrap_or("");
        for name in backticked(first_cell) {
            names.entry(name).or_insert(lineno);
        }
    }
    names
}

/// The contents of every `` `…` `` span in `s` that looks like an
/// instrument name (`[a-z0-9_]+` with at least one `_`).
fn backticked(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = s;
    while let Some(start) = rest.find('`') {
        let Some(len) = rest[start + 1..].find('`') else {
            break;
        };
        let name = &rest[start + 1..start + 1 + len];
        if name.contains('_')
            && name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            out.push(name.to_owned());
        }
        rest = &rest[start + 1 + len + 1..];
    }
    out
}

/// Instrument names from the ci.yml grep lists: the whitespace
/// tokens of every `for name in <names…>; do` loop, following shell
/// `\` line continuations, mapped to their 1-based line. Public for
/// the drift-canary tests.
pub fn parse_ci_lists(text: &str) -> BTreeMap<String, u32> {
    let mut names = BTreeMap::new();
    let mut in_list = false;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let trimmed = line.trim();
        let rest = if in_list {
            trimmed
        } else if let Some(pos) = trimmed.find("for name in ") {
            in_list = true;
            &trimmed[pos + "for name in ".len()..]
        } else {
            continue;
        };
        let list_part = rest.split(';').next().unwrap_or("");
        for token in list_part.split_whitespace() {
            if token != "\\" {
                names.entry(token.to_owned()).or_insert(lineno);
            }
        }
        if rest.contains(';') {
            in_list = false;
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_rows_yield_first_column_names_only() {
        let names = parse_catalog(
            "prose\n\
             | instrument | type | labels | recorded by |\n\
             |---|---|---|---|\n\
             | `live_commits_total`, `live_mark_rollbacks_total` | counter | — | `LiveMetrics` |\n\
             | `search_query_ns` | histogram | — | `QueryTimer::finish` |\n\
             end of table\n\
             | `not_in_table` | x |\n",
        );
        let keys: Vec<&str> = names.keys().map(String::as_str).collect();
        assert_eq!(
            keys,
            [
                "live_commits_total",
                "live_mark_rollbacks_total",
                "search_query_ns"
            ]
        );
        assert_eq!(names["live_commits_total"], 4);
    }

    #[test]
    fn ci_lists_follow_line_continuations() {
        let names = parse_ci_lists(
            "      - run: |\n\
             \x20         for name in a_total b_ns \\\n\
             \x20                     c_total; do\n\
             \x20           grep -q d_unrelated out; done\n",
        );
        let keys: Vec<&str> = names.keys().map(String::as_str).collect();
        assert_eq!(keys, ["a_total", "b_ns", "c_total"]);
        assert_eq!(names["c_total"], 3);
    }
}
