//! Interprocedural panic-reachability.
//!
//! The per-file panic-freedom pass gates *direct* panic sites in the
//! serving crates — but a panicking helper in `obs_quality` or
//! `obs_stats` called from `crates/live` sails straight through it.
//! This pass closes that hole: it collects every direct panic site
//! in the *non*-serving crates (`.unwrap()` / `.expect(…)`, the
//! `panic!` family, and slice/array indexing, which panics out of
//! bounds), then walks the call graph in reverse from the site's
//! enclosing fn. If any chain of calls reaches a function defined in
//! a serving crate, the site is a finding, and the diagnostic prints
//! the shortest offending chain.
//!
//! Suppression is per-edge: a `// lint:allow(reach): <reason>` on a
//! call-site line cuts every chain through that edge (the callee is
//! vouched for *at that call site*), and one on the panic site
//! itself clears the site entirely.

use crate::lexer::TokenKind;
use crate::pass::{Diagnostic, Pass};
use crate::passes::is_method_call;
use crate::workspace::{is_serving_krate, Workspace};
use std::collections::BTreeMap;

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// One direct panic site in a non-serving crate.
struct Site {
    file_idx: usize,
    line: u32,
    /// What panics there (`\`.unwrap()\``, `\`panic!\``, `indexing`).
    what: &'static str,
    /// Token index, for enclosing-fn lookup.
    tok: usize,
}

/// Runs the pass over the workspace.
pub fn run(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for site in collect_sites(ws) {
        let file = &ws.files[site.file_idx];
        if file.allowed(Pass::PanicReachability, site.line) {
            continue;
        }
        let Some(origin) = ws.index.enclosing_fn(site.file_idx, site.tok) else {
            continue;
        };
        if let Some(chain) = serving_chain(ws, origin) {
            let path = chain
                .iter()
                .map(|&id| format!("`{}`", ws.index.fns[id].display(&ws.files)))
                .collect::<Vec<_>>()
                .join(" → ");
            file.report(
                out,
                Pass::PanicReachability,
                site.line,
                format!(
                    "{} here can take down the serving path: reachable via {path}; \
                     propagate a Result or justify an edge with \
                     `// lint:allow(reach): <reason>`",
                    site.what
                ),
            );
        }
    }
}

/// Collects direct panic sites in non-serving crates. Serving-crate
/// sites are the per-file panic-freedom pass's jurisdiction (where
/// `assert!`-style documented preconditions stay legal); `examples/`
/// are operator-driven binaries and out of scope.
fn collect_sites(ws: &Workspace) -> Vec<Site> {
    let mut sites = Vec::new();
    for (file_idx, file) in ws.files.iter().enumerate() {
        let krate = &ws.krates[file_idx];
        if is_serving_krate(krate) || krate == "examples" {
            continue;
        }
        let tokens = &file.tokens;
        for i in 0..tokens.len() {
            if file.test_mask[i] {
                continue;
            }
            let t = &tokens[i];
            if (t.is_ident("unwrap") || t.is_ident("expect")) && is_method_call(tokens, i) {
                sites.push(Site {
                    file_idx,
                    line: t.line,
                    what: if t.is_ident("unwrap") {
                        "`.unwrap()`"
                    } else {
                        "`.expect(…)`"
                    },
                    tok: i,
                });
            }
            if t.ident().is_some_and(|n| PANIC_MACROS.contains(&n))
                && tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
                && !(i > 0 && tokens[i - 1].is_punct('.'))
            {
                sites.push(Site {
                    file_idx,
                    line: t.line,
                    what: "a `panic!`-family macro",
                    tok: i,
                });
            }
            if is_indexing(file, i) {
                sites.push(Site {
                    file_idx,
                    line: t.line,
                    what: "slice/array indexing",
                    tok: i,
                });
            }
        }
    }
    sites
}

/// Whether token `i` opens an index expression `expr[…]`: a `[`
/// directly after an identifier (not a keyword), `)`, or `]`. The
/// full-range form `expr[..]` cannot panic and is skipped.
fn is_indexing(file: &crate::source::SourceFile, i: usize) -> bool {
    let tokens = &file.tokens;
    if !tokens[i].is_punct('[') || i == 0 {
        return false;
    }
    let indexable = match &tokens[i - 1].kind {
        TokenKind::Ident(name) => ![
            "mut", "in", "as", "return", "break", "else", "match", "if", "while", "move", "ref",
            "box", "dyn", "where", "static", "const", "let", "impl", "fn", "use",
        ]
        .contains(&name.as_str()),
        TokenKind::Punct(')' | ']') => true,
        _ => false,
    };
    if !indexable {
        return false;
    }
    // `expr[..]` — full-range slice, infallible.
    !(tokens.get(i + 1).is_some_and(|t| t.is_punct('.'))
        && tokens.get(i + 2).is_some_and(|t| t.is_punct('.'))
        && tokens.get(i + 3).is_some_and(|t| t.is_punct(']')))
}

/// BFS over the reverse call graph from `origin`. Returns the
/// shortest chain `[serving_fn, …, origin]` if any serving-crate fn
/// reaches `origin`, skipping edges whose call-site line carries a
/// `reach` pragma in the caller's file.
fn serving_chain(ws: &Workspace, origin: usize) -> Option<Vec<usize>> {
    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([origin]);
    parent.insert(origin, origin);
    while let Some(fnid) = queue.pop_front() {
        if is_serving_krate(&ws.index.fns[fnid].krate) {
            let mut chain = vec![fnid];
            let mut cur = fnid;
            while parent[&cur] != cur {
                cur = parent[&cur];
                chain.push(cur);
            }
            return Some(chain);
        }
        for &edge_idx in ws.graph.callers_of.get(&fnid).into_iter().flatten() {
            let edge = &ws.graph.edges[edge_idx];
            let caller = &ws.index.fns[edge.from];
            let caller_file = &ws.files[caller.file_idx];
            if caller_file.allowed(Pass::PanicReachability, edge.line) {
                continue;
            }
            if let std::collections::btree_map::Entry::Vacant(v) = parent.entry(edge.from) {
                v.insert(fnid);
                queue.push_back(edge.from);
            }
        }
    }
    None
}
