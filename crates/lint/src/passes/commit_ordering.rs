//! The journal→fsync→apply→publish ordering contract (PR 3).
//!
//! Invariant: a delta must be durable before it is applied to the
//! served engine or published to readers — the journal is always a
//! superset of every published snapshot, which is what makes
//! recovery ≡ uninterrupted-run provable. In `obs_live`, any
//! function body that calls `append` must call `sync` before any
//! `apply*` / `publish` that follows. `append_batch` is self-syncing
//! (it performs the one group-commit fsync internally and retracts
//! on failure), so it discharges the obligation itself.
//!
//! The check is linear over the body's token stream: source order is
//! commit order in this codebase (no ordering-relevant control flow
//! reorders the three steps), and a violation that only *sometimes*
//! takes the bad path still has its calls in the bad textual order.

use super::{fn_bodies, is_call};
use crate::pass::{Diagnostic, Pass};
use crate::source::SourceFile;
use crate::symbols::FnId;
use crate::workspace::Workspace;
use std::collections::BTreeMap;

/// Runs the pass over one file (scoped to `crates/live` by the
/// runner).
pub fn run(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let tokens = &file.tokens;
    for (fn_name, open, close) in fn_bodies(file) {
        // Line of the append whose durability is not yet assured.
        let mut unsynced_append: Option<u32> = None;
        for i in open + 1..close {
            if file.test_mask[i] || !is_call(tokens, i) {
                continue;
            }
            match tokens[i].ident().unwrap_or_default() {
                "append" => {
                    unsynced_append.get_or_insert(tokens[i].line);
                }
                // `sync` acknowledges durability; `append_batch`
                // carries its own internal fsync (all-or-nothing).
                "sync" | "append_batch" => unsynced_append = None,
                name @ ("apply" | "apply_batch" | "apply_deltas" | "publish") => {
                    if let Some(append_line) = unsynced_append {
                        file.report(
                            out,
                            Pass::CommitOrdering,
                            tokens[i].line,
                            format!(
                                "`{fn_name}` calls `{name}` before `sync`ing the \
                                 `append` at line {append_line}: the journal→fsync→\
                                 apply→publish order is the crash-safety contract"
                            ),
                        );
                        // One finding per unsynced append is enough.
                        unsynced_append = None;
                    }
                }
                _ => {}
            }
        }
    }
}

/// The append/sync/apply behavior of one `obs_live` fn as seen by
/// its callers, composed through the call graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Summary {
    /// The fn performs an apply/publish-effect before its first
    /// sync-effect — so a caller must not enter it with an unsynced
    /// append pending. Holds a description of the offending effect.
    leading_apply: Option<String>,
    /// The fn performs a sync-effect somewhere, which (fsync covers
    /// the whole journal) also discharges the caller's pending
    /// appends.
    syncs: bool,
    /// The fn exits with an append of its own still unsynced.
    /// Holds a description of that append.
    tail_append: Option<String>,
}

/// What a call token means for the ordering state machine.
enum Event {
    Append,
    Sync,
    Apply(&'static str),
    Other,
}

fn classify(name: &str) -> Event {
    match name {
        "append" => Event::Append,
        "sync" | "append_batch" => Event::Sync,
        "apply" => Event::Apply("apply"),
        "apply_batch" => Event::Apply("apply_batch"),
        "apply_deltas" => Event::Apply("apply_deltas"),
        "publish" => Event::Apply("publish"),
        _ => Event::Other,
    }
}

/// Extends the per-file check through `obs_live` helper functions:
/// an `append` staged inside a callee, or an `apply`/`publish`
/// buried inside one, participates in the caller's ordering just
/// like a direct call would. Only violations that actually involve
/// a call edge are reported — same-body violations are the per-file
/// pass's findings and must not double up.
pub fn run_interprocedural(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let live_fns: Vec<FnId> = (0..ws.index.fns.len())
        .filter(|&id| ws.index.fns[id].krate == "obs_live")
        .collect();
    // Call edges to other obs_live fns, keyed by caller, then by
    // (line, callee-name) so the token scan can match them in place.
    let mut callees: BTreeMap<FnId, BTreeMap<(u32, String), Vec<FnId>>> = BTreeMap::new();
    for edge in &ws.graph.edges {
        if ws.index.fns[edge.to].krate == "obs_live" {
            callees
                .entry(edge.from)
                .or_default()
                .entry((edge.line, ws.index.fns[edge.to].name.clone()))
                .or_default()
                .push(edge.to);
        }
    }
    // Fixpoint over summaries: a helper's summary depends on its own
    // callees', so iterate until stable (bounded by the fn count).
    let mut summaries: BTreeMap<FnId, Summary> = live_fns
        .iter()
        .map(|&id| (id, Summary::default()))
        .collect();
    for _ in 0..=live_fns.len() {
        let mut changed = false;
        for &id in &live_fns {
            let (summary, _) = scan(ws, id, &callees, &summaries);
            if summaries[&id] != summary {
                summaries.insert(id, summary);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Reporting pass with the converged summaries.
    for &id in &live_fns {
        let (_, findings) = scan(ws, id, &callees, &summaries);
        for (line, message) in findings {
            ws.files[ws.index.fns[id].file_idx].report(out, Pass::CommitOrdering, line, message);
        }
    }
}

/// Runs the ordering state machine over one fn body, composing
/// callee summaries at call sites. Returns the fn's own summary and
/// the call-edge-involving violations found inside it.
fn scan(
    ws: &Workspace,
    id: FnId,
    callees: &BTreeMap<FnId, BTreeMap<(u32, String), Vec<FnId>>>,
    summaries: &BTreeMap<FnId, Summary>,
) -> (Summary, Vec<(u32, String)>) {
    let symbol = &ws.index.fns[id];
    let file = &ws.files[symbol.file_idx];
    let tokens = &file.tokens;
    let fn_name = &symbol.name;
    let own_edges = callees.get(&id);
    let mut summary = Summary::default();
    // Pending unsynced append: (description, came-through-a-call).
    let mut pending: Option<(String, bool)> = None;
    let mut findings = Vec::new();
    for i in symbol.body.0 + 1..symbol.body.1 {
        if file.test_mask[i] || !is_call(tokens, i) {
            continue;
        }
        let name = tokens[i].ident().unwrap_or_default();
        let line = tokens[i].line;
        match classify(name) {
            Event::Append => {
                if pending.is_none() {
                    pending = Some((format!("the `append` at line {line}"), false));
                }
            }
            Event::Sync => {
                summary.syncs = true;
                pending = None;
            }
            Event::Apply(what) => {
                if summary.leading_apply.is_none() && !summary.syncs {
                    summary.leading_apply = Some(format!("`{what}` (line {line})"));
                }
                if let Some((desc, composed)) = pending.take() {
                    if composed {
                        findings.push((
                            line,
                            format!(
                                "`{fn_name}` calls `{what}` before {desc} is synced: the \
                                 journal→fsync→apply→publish order is the crash-safety \
                                 contract"
                            ),
                        ));
                    }
                }
            }
            Event::Other => {
                let Some(targets) = own_edges.and_then(|m| m.get(&(line, name.to_owned()))) else {
                    continue;
                };
                let leading = targets
                    .iter()
                    .find_map(|t| summaries[t].leading_apply.clone().map(|la| (*t, la)));
                if let Some((callee, la)) = leading {
                    let callee_name = ws.index.fns[callee].display(&ws.files);
                    if let Some((desc, _)) = pending.take() {
                        findings.push((
                            line,
                            format!(
                                "`{fn_name}` calls `{callee_name}`, which reaches {la}, \
                                 before {desc} is synced: the journal→fsync→apply→publish \
                                 order is the crash-safety contract"
                            ),
                        ));
                    }
                    if summary.leading_apply.is_none() && !summary.syncs {
                        summary.leading_apply = Some(format!("{la} inside `{callee_name}`"));
                    }
                }
                if !targets.is_empty() && targets.iter().all(|t| summaries[t].syncs) {
                    summary.syncs = true;
                    pending = None;
                }
                if let Some(tail) = targets
                    .iter()
                    .find_map(|t| summaries[t].tail_append.clone().map(|ta| (*t, ta)))
                {
                    if pending.is_none() {
                        let callee_name = ws.index.fns[tail.0].display(&ws.files);
                        pending = Some((
                            format!("{} (staged via `{callee_name}` at line {line})", tail.1),
                            true,
                        ));
                    }
                }
            }
        }
    }
    summary.tail_append = pending.map(|(desc, _)| desc);
    (summary, findings)
}
