//! The journal→fsync→apply→publish ordering contract (PR 3).
//!
//! Invariant: a delta must be durable before it is applied to the
//! served engine or published to readers — the journal is always a
//! superset of every published snapshot, which is what makes
//! recovery ≡ uninterrupted-run provable. In `obs_live`, any
//! function body that calls `append` must call `sync` before any
//! `apply*` / `publish` that follows. `append_batch` is self-syncing
//! (it performs the one group-commit fsync internally and retracts
//! on failure), so it discharges the obligation itself.
//!
//! The check is linear over the body's token stream: source order is
//! commit order in this codebase (no ordering-relevant control flow
//! reorders the three steps), and a violation that only *sometimes*
//! takes the bad path still has its calls in the bad textual order.

use super::{fn_bodies, is_call};
use crate::pass::{Diagnostic, Pass};
use crate::source::SourceFile;

/// Runs the pass over one file (scoped to `crates/live` by the
/// runner).
pub fn run(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let tokens = &file.tokens;
    for (fn_name, open, close) in fn_bodies(file) {
        // Line of the append whose durability is not yet assured.
        let mut unsynced_append: Option<u32> = None;
        for i in open + 1..close {
            if file.test_mask[i] || !is_call(tokens, i) {
                continue;
            }
            match tokens[i].ident().unwrap_or_default() {
                "append" => {
                    unsynced_append.get_or_insert(tokens[i].line);
                }
                // `sync` acknowledges durability; `append_batch`
                // carries its own internal fsync (all-or-nothing).
                "sync" | "append_batch" => unsynced_append = None,
                name @ ("apply" | "apply_batch" | "apply_deltas" | "publish") => {
                    if let Some(append_line) = unsynced_append {
                        file.report(
                            out,
                            Pass::CommitOrdering,
                            tokens[i].line,
                            format!(
                                "`{fn_name}` calls `{name}` before `sync`ing the \
                                 `append` at line {append_line}: the journal→fsync→\
                                 apply→publish order is the crash-safety contract"
                            ),
                        );
                        // One finding per unsynced append is enough.
                        unsynced_append = None;
                    }
                }
                _ => {}
            }
        }
    }
}
