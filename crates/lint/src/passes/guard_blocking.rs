//! Lock guards held across blocking calls.
//!
//! Invariant: readers acquire snapshots in nanoseconds because no
//! lock in the serving path is ever held across an fsync, a thread
//! join, or a (simulated) network round trip. A guard that lives
//! across such a call turns "wait for a pointer swap" into "wait for
//! a disk flush" for every reader behind it.
//!
//! Detection is lexical but shaped like the real lifetimes:
//!
//! * `let g = …​.read()/.write()/.lock()…;` binds a guard that lives
//!   to the end of its enclosing block;
//! * `match …​.read()… { … }` binds guards in its arms that live to
//!   the end of the match block;
//! * an acquisition that is *not* bound (consumed on the same
//!   statement, e.g. `*store.write().unwrap() = x;` or
//!   `let _ = l.read();`) dies at the statement's `;` and is not
//!   tracked.
//!
//! Within a live region, a call to a blocking name (`sync`,
//! `sync_data`, `sync_all`, `join`, `sleep`, `charge`, `recv`,
//! `wait`) fires the lint unless the guard was explicitly
//! `drop(…)`ped first. Acquisition methods are recognized by their
//! *argument-less* call shape, which keeps `io::Read::read(buf)` and
//! `io::Write::write(buf)` out of scope.

use super::{is_call, is_method_call};
use crate::lexer::TokenKind;
use crate::pass::{Diagnostic, Pass};
use crate::source::SourceFile;

const ACQUIRERS: [&str; 3] = ["read", "write", "lock"];
const BLOCKERS: [&str; 8] = [
    "sync",
    "sync_data",
    "sync_all",
    "join",
    "sleep",
    "charge",
    "recv",
    "wait",
];

/// Whether `tokens[i]` is an argument-less acquisition method call:
/// `.read()`, `.write()` or `.lock()`.
fn is_acquisition(file: &SourceFile, i: usize) -> bool {
    let tokens = &file.tokens;
    tokens[i]
        .ident()
        .is_some_and(|name| ACQUIRERS.contains(&name))
        && is_method_call(tokens, i)
        && tokens.get(i + 2).is_some_and(|t| t.is_punct(')'))
}

/// Index one past the end of the statement starting at `i`: the
/// first `;` at bracket depth 0, or the end of a `{…}` block that
/// closes the statement (match/if-else initializers).
fn statement_end(file: &SourceFile, start: usize) -> usize {
    let tokens = &file.tokens;
    let mut depth = 0isize;
    let mut i = start;
    while i < tokens.len() {
        match tokens[i].kind {
            TokenKind::Punct(';') if depth == 0 => return i + 1,
            TokenKind::Punct('(' | '[' | '{') => depth += 1,
            TokenKind::Punct(')' | ']' | '}') => {
                depth -= 1;
                if depth < 0 {
                    return i; // fell out of the enclosing block
                }
            }
            _ => {}
        }
        i += 1;
    }
    tokens.len()
}

/// One tracked guard region.
struct Guard {
    /// Pattern identifiers the guard may be bound to (for `drop(g)`).
    names: Vec<String>,
    /// The acquisition site (line) for the message.
    acquired_line: u32,
    /// Token range `(start, end)` the guard is live over.
    live: (usize, usize),
}

/// Runs the pass over one file.
pub fn run(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let tokens = &file.tokens;
    let mut guards: Vec<Guard> = Vec::new();

    // Maintain the stack of open `{` while scanning so a `let` can
    // know its enclosing block's extent.
    let mut block_stack: Vec<usize> = Vec::new();
    for i in 0..tokens.len() {
        match tokens[i].kind {
            TokenKind::Punct('{') => block_stack.push(i),
            TokenKind::Punct('}') => {
                block_stack.pop();
            }
            _ => {}
        }
        if file.test_mask[i] || !is_acquisition(file, i) {
            continue;
        }
        // Walk back to the statement head to find how the guard is
        // bound: `let <pat> = …` (block-scoped), `match …` (match-
        // scoped), or neither (temporary — dies at the `;`).
        let stmt_head = statement_head(file, i, &block_stack);
        match stmt_head {
            Head::Let { names } if !names.is_empty() => {
                let end = block_stack
                    .last()
                    .and_then(|open| file.brace_match.get(open))
                    .copied()
                    .unwrap_or(tokens.len());
                guards.push(Guard {
                    names,
                    acquired_line: tokens[i].line,
                    live: (statement_end(file, i), end),
                });
            }
            Head::Match { body_open } => {
                if let Some(&close) = file.brace_match.get(&body_open) {
                    guards.push(Guard {
                        names: Vec::new(),
                        acquired_line: tokens[i].line,
                        live: (body_open + 1, close),
                    });
                }
            }
            _ => {}
        }
    }

    for guard in &guards {
        let mut dropped = false;
        for i in guard.live.0..guard.live.1.min(tokens.len()) {
            if file.test_mask[i] {
                continue;
            }
            // `drop(name)` releases the guard early.
            if tokens[i].is_ident("drop")
                && is_call(tokens, i)
                && tokens
                    .get(i + 2)
                    .and_then(|t| t.ident())
                    .is_some_and(|n| guard.names.iter().any(|g| g == n))
            {
                dropped = true;
            }
            if dropped {
                continue;
            }
            let blocking = tokens[i]
                .ident()
                .is_some_and(|name| BLOCKERS.contains(&name))
                && is_call(tokens, i);
            if blocking {
                file.report(
                    out,
                    Pass::GuardAcrossBlocking,
                    tokens[i].line,
                    format!(
                        "blocking call `{}` while the lock guard acquired at line {} \
                         is live: every reader behind that lock now waits on it",
                        tokens[i].ident().unwrap_or_default(),
                        guard.acquired_line,
                    ),
                );
                break; // one finding per guard region
            }
        }
    }
}

/// How the statement containing an acquisition binds it.
enum Head {
    Let { names: Vec<String> },
    Match { body_open: usize },
    Other,
}

/// Classifies the statement head for the acquisition at `i`.
fn statement_head(file: &SourceFile, i: usize, block_stack: &[usize]) -> Head {
    let tokens = &file.tokens;
    let stmt_floor = block_stack.last().map_or(0, |&open| open + 1);
    // Scan backwards for `let` / `match` before hitting a `;`, a `{`
    // opening our block, or a closing brace (end of a nested block).
    let mut j = i;
    let mut names = Vec::new();
    let mut saw_eq = false;
    while j > stmt_floor {
        j -= 1;
        match &tokens[j].kind {
            TokenKind::Punct(';' | '}' | '{') => break,
            TokenKind::Punct('=') => saw_eq = true,
            TokenKind::Ident(name) if name == "match" => {
                // The match body is the next `{` at depth 0 after i.
                let mut k = i;
                let mut depth = 0isize;
                while k < tokens.len() {
                    match tokens[k].kind {
                        TokenKind::Punct('(' | '[') => depth += 1,
                        TokenKind::Punct(')' | ']') => depth -= 1,
                        TokenKind::Punct('{') if depth == 0 => return Head::Match { body_open: k },
                        _ => {}
                    }
                    k += 1;
                }
                return Head::Other;
            }
            TokenKind::Ident(name) if name == "let" => {
                // Pattern idents sit between `let` and the `=`.
                if !saw_eq {
                    return Head::Other;
                }
                let mut k = j + 1;
                while k < i && !tokens[k].is_punct('=') {
                    if let Some(id) = tokens[k].ident() {
                        if !matches!(id, "mut" | "ref" | "Ok" | "Err" | "Some" | "_") {
                            names.push(id.to_owned());
                        }
                    }
                    k += 1;
                }
                return Head::Let { names };
            }
            _ => {}
        }
    }
    Head::Other
}
