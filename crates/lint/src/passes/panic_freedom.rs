//! Panic-freedom in the serving path.
//!
//! Invariant: the query/ingest path "millions of users" hit must not
//! carry reachable panics. In non-test code of the serving crates
//! (`obs_live`, `obs_search`, `obs_wrappers`, `obs_model`) this pass
//! flags `.unwrap()`, `.expect(…)` and the `panic!` / `unreachable!`
//! / `todo!` / `unimplemented!` macros. A site that is genuinely
//! infallible (or where propagating a child panic is the designed
//! behavior) carries a justified `// lint:allow(panic): <reason>`.
//!
//! `assert!` and friends are deliberately out of scope: the
//! workspace uses them as documented preconditions (`# Panics`
//! sections), which is a contract, not an accident.

use super::{is_method_call, live_indices};
use crate::pass::{Diagnostic, Pass};
use crate::source::SourceFile;

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Runs the pass over one file.
pub fn run(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let tokens = &file.tokens;
    for i in live_indices(file) {
        let t = &tokens[i];
        if (t.is_ident("unwrap") || t.is_ident("expect")) && is_method_call(tokens, i) {
            file.report(
                out,
                Pass::PanicFreedom,
                t.line,
                format!(
                    ".{}() in serving-path code: propagate a Result or justify \
                     with `// lint:allow(panic): <reason>`",
                    t.ident().unwrap_or_default()
                ),
            );
        }
        let is_macro = t.ident().is_some_and(|name| PANIC_MACROS.contains(&name))
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('!'));
        if is_macro {
            file.report(
                out,
                Pass::PanicFreedom,
                t.line,
                format!(
                    "{}! in serving-path code: return an error or justify \
                     with `// lint:allow(panic): <reason>`",
                    t.ident().unwrap_or_default()
                ),
            );
        }
    }
}
