//! Silently discarded fallible commit-path results.
//!
//! Invariant: durability errors are part of the crash-safety
//! contract — an fsync or journal write that fails must either
//! propagate or be *visibly* waived. `let _ = file.sync_data();`
//! compiles clean (it defeats `#[must_use]`), which is exactly why
//! it needs a human-readable justification:
//! `// lint:allow(discard): <reason>`.
//!
//! The pass flags `let _ = <expr>;` statements whose initializer
//! calls one of the fallible commit/fsync names. Plain `let _ =`
//! on non-commit expressions (e.g. silencing an unused value) is
//! out of scope.

use super::is_call;
use crate::lexer::TokenKind;
use crate::pass::{Diagnostic, Pass};
use crate::source::SourceFile;

const FALLIBLE_COMMIT: [&str; 10] = [
    "sync",
    "sync_data",
    "sync_all",
    "set_len",
    "seek",
    "retract_staged",
    "commit",
    "append",
    "append_batch",
    "flush",
];

/// Runs the pass over one file.
pub fn run(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let tokens = &file.tokens;
    let mut i = 0usize;
    while i + 2 < tokens.len() {
        let is_discard = tokens[i].is_ident("let")
            && !file.test_mask[i]
            && tokens[i + 1].is_ident("_")
            && tokens[i + 2].is_punct('=');
        if !is_discard {
            i += 1;
            continue;
        }
        // Scan the initializer up to the statement's `;` for a call
        // to a fallible commit name.
        let mut depth = 0isize;
        let mut j = i + 3;
        while j < tokens.len() {
            match tokens[j].kind {
                TokenKind::Punct(';') if depth == 0 => break,
                TokenKind::Punct('(' | '[' | '{') => depth += 1,
                TokenKind::Punct(')' | ']' | '}') => depth -= 1,
                _ => {}
            }
            let name = tokens[j].ident().unwrap_or_default();
            if FALLIBLE_COMMIT.contains(&name) && is_call(tokens, j) {
                file.report(
                    out,
                    Pass::DiscardedResult,
                    tokens[i].line,
                    format!(
                        "`let _ =` discards the result of fallible `{name}`: \
                         propagate the error or justify with \
                         `// lint:allow(discard): <reason>`"
                    ),
                );
                break; // one finding per statement
            }
            j += 1;
        }
        i = j;
    }
}
