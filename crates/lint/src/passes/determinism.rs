//! Replay determinism in tagged modules.
//!
//! Invariant: recovery replays the journal and must rebuild a
//! byte-identical engine; the shard router and scatter merge must
//! give the same answer on every node. Modules that carry the
//! `// lint:deterministic` tag (journal, shard router, scatter
//! merge) therefore must not:
//!
//! * name `HashMap` / `HashSet` — their iteration order varies per
//!   process (randomized SipHash seeds), so any fold over them can
//!   differ between the run and its replay; `BTreeMap` / `BTreeSet`
//!   are the drop-in deterministic substitutes;
//! * read the wall clock (`SystemTime` / `Instant`) — replayed time
//!   is journal time, not machine time.
//!
//! The pass fires on any mention (type position, constructor, use
//! path): in a deterministic module even a *lookup-only* hash
//! container is a refactor away from being iterated.

use super::live_indices;
use crate::pass::{Diagnostic, Pass};
use crate::source::SourceFile;

const BANNED: [(&str, &str); 4] = [
    ("HashMap", "iteration order is process-random; use BTreeMap"),
    ("HashSet", "iteration order is process-random; use BTreeSet"),
    (
        "SystemTime",
        "wall clock diverges under replay; thread time through the journal",
    ),
    (
        "Instant",
        "wall clock diverges under replay; thread time through the journal",
    ),
];

/// Runs the pass over one file (only files tagged
/// `// lint:deterministic` — the runner checks the tag).
pub fn run(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !file.deterministic {
        return;
    }
    let tokens = &file.tokens;
    for i in live_indices(file) {
        let Some(name) = tokens[i].ident() else {
            continue;
        };
        if let Some((_, why)) = BANNED.iter().find(|(banned, _)| *banned == name) {
            file.report(
                out,
                Pass::Determinism,
                tokens[i].line,
                format!("`{name}` in a `lint:deterministic` module: {why}"),
            );
        }
    }
}
