//! Phase 2 of the workspace analysis: the two-phase pipeline.
//!
//! [`Workspace::analyze`] is the whole linter as a pure function
//! over `(path, text)` pairs: phase 1 parses every file and builds
//! the [`SymbolIndex`] and [`CallGraph`]; phase 2 runs the per-file
//! passes (scoped by path, exactly as before) and then the
//! interprocedural passes that need the graph — panic-reachability,
//! commit-ordering through helper fns, and instrument-drift against
//! the observability surfaces.
//!
//! Taking the file set as a value (rather than walking the
//! filesystem) is what makes the workspace fixtures and the
//! instrument-drift canary tests possible: they inject synthetic
//! crates and scratch copies of ARCHITECTURE.md / ci.yml.

use crate::callgraph::CallGraph;
use crate::pass::Diagnostic;
use crate::passes;
use crate::source::SourceFile;
use crate::symbols::SymbolIndex;
use std::path::{Path, PathBuf};

/// Serving crates subject to the panic-freedom pass and used as the
/// reachability targets of the panic-reachability pass. `obs_obs`
/// (the root crate, experiments, benches) may still panic: it is
/// driven by operators, not user queries. `telemetry` is included
/// because its recording paths run inline in every serving request.
pub const SERVING_CRATES: [&str; 5] = ["live", "search", "wrappers", "model", "telemetry"];

/// Whether `rel` is inside one of the serving crates.
pub fn in_serving_crate(rel: &Path) -> bool {
    SERVING_CRATES
        .iter()
        .any(|c| rel.starts_with(Path::new("crates").join(c)))
}

/// Whether the crate *name* is a serving crate (`obs_live`, …).
pub fn is_serving_krate(krate: &str) -> bool {
    SERVING_CRATES
        .iter()
        .any(|c| krate.strip_prefix("obs_") == Some(c))
}

/// Package name owning a workspace-relative path. Every crate under
/// `crates/` follows the `obs_<dir>` convention except `crates/core`
/// (package `obs_quality`); the root `src/` tree is the
/// `informing_observers` crate; `examples/` are root-crate binaries
/// but get their own scope name so they never alias workspace fns.
pub fn krate_of_path(rel: &Path) -> String {
    let mut parts = rel.components().map(|c| c.as_os_str().to_string_lossy());
    match (parts.next().as_deref(), parts.next()) {
        (Some("crates"), Some(dir)) if dir == "core" => "obs_quality".to_owned(),
        (Some("crates"), Some(dir)) => format!("obs_{dir}"),
        (Some("examples"), _) => "examples".to_owned(),
        _ => "informing_observers".to_owned(),
    }
}

/// The observability surfaces the instrument-drift pass diffs
/// against the code. Each is `(path-for-diagnostics, text)`; a
/// `None` surface is skipped (single-file mode lints without them).
#[derive(Debug, Default)]
pub struct Surfaces {
    /// ARCHITECTURE.md, holding the instrument catalog table.
    pub architecture: Option<(PathBuf, String)>,
    /// The CI workflow, holding the metrics/bench grep lists.
    pub ci: Option<(PathBuf, String)>,
}

impl Surfaces {
    /// No surfaces: instrument-drift does not run.
    pub fn none() -> Surfaces {
        Surfaces::default()
    }
}

/// The parsed workspace: phase-1 output shared by every phase-2 pass.
#[derive(Debug)]
pub struct Workspace {
    /// Every scanned file, parsed.
    pub files: Vec<SourceFile>,
    /// Package name owning `files[i]`.
    pub krates: Vec<String>,
    /// The symbol index over `files`.
    pub index: SymbolIndex,
    /// The call graph over `index`.
    pub graph: CallGraph,
}

impl Workspace {
    /// Phase 1: parse the files and build index + graph.
    pub fn build(inputs: Vec<(PathBuf, String)>) -> Workspace {
        let mut files = Vec::with_capacity(inputs.len());
        let mut krates = Vec::with_capacity(inputs.len());
        for (path, text) in inputs {
            krates.push(krate_of_path(&path));
            files.push(SourceFile::parse(path, &text));
        }
        let index = SymbolIndex::build(&files, &krates);
        let graph = CallGraph::build(&files, &index);
        Workspace {
            files,
            krates,
            index,
            graph,
        }
    }

    /// Runs both phases over the inputs and returns the sorted,
    /// deduplicated findings.
    pub fn analyze(inputs: Vec<(PathBuf, String)>, surfaces: &Surfaces) -> Vec<Diagnostic> {
        let ws = Workspace::build(inputs);
        let mut out = Vec::new();
        for file in &ws.files {
            out.extend(file.pragma_diags.clone());
            let rel = &file.path;
            if rel.starts_with("examples") {
                // Examples drive the real serving API: gate the lock
                // discipline and durability-error handling, but let
                // them unwrap (they are demo binaries, not servers).
                passes::guard_blocking::run(file, &mut out);
                passes::discarded_result::run(file, &mut out);
                continue;
            }
            if in_serving_crate(rel) {
                passes::panic_freedom::run(file, &mut out);
            }
            if rel.starts_with("crates/live") {
                passes::commit_ordering::run(file, &mut out);
            }
            passes::guard_blocking::run(file, &mut out);
            passes::determinism::run(file, &mut out); // no-op unless tagged
            passes::discarded_result::run(file, &mut out);
        }
        passes::panic_reachability::run(&ws, &mut out);
        passes::commit_ordering::run_interprocedural(&ws, &mut out);
        passes::instrument_drift::run(&ws, surfaces, &mut out);
        sort_findings(&mut out);
        out
    }
}

/// The one diagnostic ordering: by file, line, pass, message.
pub fn sort_findings(out: &mut Vec<Diagnostic>) {
    out.sort_by(|a, b| {
        (&a.file, a.line, a.pass, &a.message).cmp(&(&b.file, b.line, b.pass, &b.message))
    });
    out.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn krate_of_path_follows_the_layout() {
        assert_eq!(krate_of_path(Path::new("crates/live/src/a.rs")), "obs_live");
        assert_eq!(
            krate_of_path(Path::new("crates/core/src/a.rs")),
            "obs_quality"
        );
        assert_eq!(
            krate_of_path(Path::new("src/bin/x.rs")),
            "informing_observers"
        );
        assert_eq!(
            krate_of_path(Path::new("examples/quickstart.rs")),
            "examples"
        );
    }

    #[test]
    fn serving_krate_names_match_the_dir_list() {
        for name in [
            "obs_live",
            "obs_search",
            "obs_wrappers",
            "obs_model",
            "obs_telemetry",
        ] {
            assert!(is_serving_krate(name), "{name}");
        }
        for name in ["obs_quality", "obs_stats", "obs_analytics", "examples"] {
            assert!(!is_serving_krate(name), "{name}");
        }
    }
}
