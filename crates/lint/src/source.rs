//! The analyzed view of one source file: token stream, pragma map,
//! test-region mask, and brace pairing — everything a pass needs,
//! computed once.

use crate::lexer::{lex, Comment, Token, TokenKind};
use crate::pass::{Diagnostic, Pass};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

/// A parsed `lint:allow` pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The pass the pragma suppresses.
    pub pass: Pass,
    /// The justification after the colon (never empty — the runner
    /// rejects a reasonless pragma).
    pub reason: String,
    /// The code line the pragma covers.
    pub target_line: u32,
}

/// One source file, lexed and pre-analyzed.
#[derive(Debug)]
pub struct SourceFile {
    /// Path as reported in diagnostics (relative to the lint root).
    pub path: PathBuf,
    /// The comment-free code token stream.
    pub tokens: Vec<Token>,
    /// `tokens[i]` is inside `#[cfg(test)]` / `#[test]` code.
    pub test_mask: Vec<bool>,
    /// For every `{` token index, the index of its matching `}`.
    pub brace_match: BTreeMap<usize, usize>,
    /// Whether the file carries the `lint:deterministic` module tag.
    pub deterministic: bool,
    /// Accepted `lint:allow` pragmas, keyed by (pass, covered line).
    allows: BTreeSet<(Pass, u32)>,
    /// Diagnostics raised while parsing pragmas (malformed pragmas
    /// are findings themselves: a typo'd suppression that silently
    /// does nothing is exactly the rule drift the linter exists to
    /// stop).
    pub pragma_diags: Vec<Diagnostic>,
}

impl SourceFile {
    /// Lexes and pre-analyzes one file's text.
    pub fn parse(path: PathBuf, src: &str) -> SourceFile {
        let lexed = lex(src);
        let test_mask = test_mask(&lexed.tokens);
        let brace_match = brace_match(&lexed.tokens);
        let mut file = SourceFile {
            path,
            tokens: lexed.tokens,
            test_mask,
            brace_match,
            deterministic: false,
            allows: BTreeSet::new(),
            pragma_diags: Vec::new(),
        };
        file.absorb_comments(&lexed.comments);
        file
    }

    /// Whether `pass` is suppressed on `line` by an accepted pragma.
    pub fn allowed(&self, pass: Pass, line: u32) -> bool {
        self.allows.contains(&(pass, line))
    }

    /// Emits a diagnostic unless a pragma covers it.
    pub fn report(&self, out: &mut Vec<Diagnostic>, pass: Pass, line: u32, message: String) {
        if !self.allowed(pass, line) {
            out.push(Diagnostic {
                file: self.path.clone(),
                line,
                pass,
                message,
            });
        }
    }

    /// Parses pragmas out of the comment stream.
    ///
    /// Grammar — the directive must *lead* the comment (so prose
    /// that merely mentions a pragma never activates one):
    ///
    /// * `// lint:allow(<pass>): <reason>` — suppresses `<pass>` on
    ///   the line the comment trails, or, for a comment on its own
    ///   line, on the next line holding code. The reason is
    ///   mandatory.
    /// * `// lint:deterministic` — tags the whole module (file) for
    ///   the determinism pass.
    fn absorb_comments(&mut self, comments: &[Comment]) {
        let code_lines: BTreeSet<u32> = self.tokens.iter().map(|t| t.line).collect();
        for comment in comments {
            let text = comment.text.trim();
            if text.starts_with("lint:deterministic") {
                self.deterministic = true;
                continue;
            }
            if !text.starts_with("lint:allow") {
                continue;
            }
            match parse_allow(text) {
                Ok((pass, _reason)) => {
                    // Trailing pragma covers its own line; a
                    // standalone comment covers the next code line.
                    let target = if code_lines.contains(&comment.line) {
                        Some(comment.line)
                    } else {
                        code_lines.range(comment.line + 1..).next().copied()
                    };
                    if let Some(line) = target {
                        self.allows.insert((pass, line));
                    }
                }
                Err(why) => self.pragma_diags.push(Diagnostic {
                    file: self.path.clone(),
                    line: comment.line,
                    pass: Pass::Pragma,
                    message: why,
                }),
            }
        }
    }
}

/// Parses `lint:allow(<pass>): <reason>` starting at `lint:allow`.
fn parse_allow(text: &str) -> Result<(Pass, String), String> {
    let rest = text.strip_prefix("lint:allow").unwrap_or(text).trim_start();
    let rest = rest
        .strip_prefix('(')
        .ok_or("malformed pragma: expected `lint:allow(<pass>): <reason>`")?;
    let (key, rest) = rest
        .split_once(')')
        .ok_or("malformed pragma: unclosed `(` in `lint:allow(<pass>)`")?;
    let pass = Pass::from_key(key.trim()).ok_or_else(|| {
        format!(
            "unknown pass {:?} in pragma; expected one of {}",
            key.trim(),
            Pass::KEYS.join(", ")
        )
    })?;
    let reason = rest
        .trim_start()
        .strip_prefix(':')
        .map(str::trim)
        .unwrap_or("");
    if reason.is_empty() {
        return Err(format!(
            "pragma `lint:allow({})` needs a justification: `lint:allow({}): <reason>`",
            key.trim(),
            key.trim()
        ));
    }
    Ok((pass, reason.to_owned()))
}

/// Marks every token inside test-only code: an item annotated
/// `#[cfg(test)]` (the conventional `mod tests` block, but also any
/// single item) or `#[test]`. Inner attributes (`#![…]`) never gate
/// an item and are skipped wholesale.
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_punct('#') {
            i += 1;
            continue;
        }
        // `#![…]`: inner attribute — skip it.
        if tokens.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            i = skip_bracketed(tokens, i + 2);
            continue;
        }
        if !tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            i += 1;
            continue;
        }
        let attr_start = i;
        let attr_end = skip_bracketed(tokens, i + 1);
        let is_test_attr = is_test_attribute(&tokens[attr_start + 2..attr_end.saturating_sub(1)]);
        if !is_test_attr {
            i = attr_end;
            continue;
        }
        // Mark the attribute, any further attributes, and the item
        // they gate (through its `{…}` block or terminating `;`).
        let mut j = attr_end;
        while tokens.get(j).is_some_and(|t| t.is_punct('#'))
            && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            j = skip_bracketed(tokens, j + 1);
        }
        let item_end = skip_item(tokens, j);
        for m in mask.iter_mut().take(item_end).skip(attr_start) {
            *m = true;
        }
        i = item_end;
    }
    mask
}

/// Whether attribute body tokens denote test-gated code: `test`, or
/// `cfg(… test …)` (conservatively including `cfg(any(test, …))`).
fn is_test_attribute(body: &[Token]) -> bool {
    match body.first().and_then(Token::ident) {
        Some("test") => true,
        Some("cfg") => body.iter().any(|t| t.is_ident("test")),
        _ => false,
    }
}

/// Given `start` at a `[`/`(`/`{`, returns the index one past its
/// matching closer (or `tokens.len()`).
fn skip_bracketed(tokens: &[Token], start: usize) -> usize {
    let mut depth = 0isize;
    let mut i = start;
    while i < tokens.len() {
        match tokens[i].kind {
            TokenKind::Punct('[' | '(' | '{') => depth += 1,
            TokenKind::Punct(']' | ')' | '}') => {
                depth -= 1;
                if depth <= 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    tokens.len()
}

/// Consumes one item starting at `start`: runs to the first `;` at
/// bracket depth 0, or through the matching `}` of the first `{` at
/// depth 0 (fn/mod/impl/struct bodies).
fn skip_item(tokens: &[Token], start: usize) -> usize {
    let mut depth = 0isize;
    let mut i = start;
    while i < tokens.len() {
        match tokens[i].kind {
            TokenKind::Punct(';') if depth == 0 => return i + 1,
            TokenKind::Punct('{') if depth == 0 => return skip_bracketed(tokens, i),
            TokenKind::Punct('[' | '(' | '{') => depth += 1,
            TokenKind::Punct(']' | ')' | '}') => depth -= 1,
            _ => {}
        }
        i += 1;
    }
    tokens.len()
}

/// Pairs every `{` token index with its matching `}` index.
fn brace_match(tokens: &[Token]) -> BTreeMap<usize, usize> {
    let mut pairs = BTreeMap::new();
    let mut stack = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        match t.kind {
            TokenKind::Punct('{') => stack.push(i),
            TokenKind::Punct('}') => {
                if let Some(open) = stack.pop() {
                    pairs.insert(open, i);
                }
            }
            _ => {}
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("test.rs"), src)
    }

    #[test]
    fn cfg_test_mod_is_fully_masked() {
        let f = parse(
            "fn live() { work(); }\n\
             #[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { x.unwrap(); }\n}\n\
             fn also_live() {}",
        );
        for (i, t) in f.tokens.iter().enumerate() {
            let in_tests = t.is_ident("unwrap") || t.is_ident("t") || t.is_ident("tests");
            if in_tests {
                assert!(f.test_mask[i], "{:?} should be masked", t.kind);
            }
            if t.is_ident("live") || t.is_ident("also_live") || t.is_ident("work") {
                assert!(!f.test_mask[i], "{:?} should be live", t.kind);
            }
        }
    }

    #[test]
    fn test_attribute_masks_single_fn() {
        let f = parse("#[test]\nfn t() { boom(); }\nfn live() {}");
        let boom = f.tokens.iter().position(|t| t.is_ident("boom")).unwrap();
        let live = f.tokens.iter().position(|t| t.is_ident("live")).unwrap();
        assert!(f.test_mask[boom]);
        assert!(!f.test_mask[live]);
    }

    #[test]
    fn inner_attributes_do_not_mask_anything() {
        let f = parse("#![warn(missing_docs)]\nfn live() {}");
        assert!(f.test_mask.iter().all(|&m| !m));
    }

    #[test]
    fn trailing_pragma_covers_its_own_line() {
        let f = parse("fn f() { x.unwrap(); } // lint:allow(panic): infallible by construction");
        assert!(f.allowed(Pass::PanicFreedom, 1));
        assert!(!f.allowed(Pass::PanicFreedom, 2));
        assert!(f.pragma_diags.is_empty());
    }

    #[test]
    fn standalone_pragma_covers_next_code_line() {
        let f = parse(
            "fn f() {\n\
             // lint:allow(discard): best effort, error already surfaced\n\
             // (more prose)\n\
             let _ = file.sync_data();\n}",
        );
        assert!(f.allowed(Pass::DiscardedResult, 4));
    }

    #[test]
    fn reasonless_or_unknown_pragmas_are_diagnostics() {
        let f = parse("// lint:allow(panic)\nfn f() {}\n// lint:allow(bogus): why\nfn g() {}");
        assert_eq!(f.pragma_diags.len(), 2);
        assert!(f.pragma_diags[0].message.contains("justification"));
        assert!(f.pragma_diags[1].message.contains("unknown pass"));
        assert!(!f.allowed(Pass::PanicFreedom, 2));
    }

    #[test]
    fn deterministic_tag_is_detected() {
        assert!(parse("// lint:deterministic\nfn f() {}").deterministic);
        assert!(!parse("fn f() {}").deterministic);
    }

    #[test]
    fn prose_mentioning_directives_is_inert() {
        let f = parse(
            "// docs: write lint:allow(panic) or tag with lint:deterministic\n\
             fn f() { x.unwrap(); }",
        );
        assert!(!f.deterministic);
        assert!(f.pragma_diags.is_empty());
        assert!(!f.allowed(Pass::PanicFreedom, 2));
    }

    #[test]
    fn brace_match_pairs_nested_blocks() {
        let f = parse("fn f() { if x { y(); } }");
        let opens: Vec<usize> = f.brace_match.keys().copied().collect();
        assert_eq!(opens.len(), 2);
        let outer = f.brace_match[&opens[0]];
        let inner = f.brace_match[&opens[1]];
        assert!(outer > inner);
    }
}
