//! Phase 1 of the workspace analysis: the symbol index.
//!
//! Every scanned file contributes its non-test `fn` definitions —
//! free functions and impl-block methods, with crate, visibility and
//! body extent — plus its `use`-imports. The index is what turns the
//! per-file token streams into one workspace: the call-graph builder
//! (phase 1b) resolves call sites against it, and the
//! interprocedural passes (phase 2) walk the result.

use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// Index of a function in [`SymbolIndex::fns`].
pub type FnId = usize;

/// One non-test `fn` definition somewhere in the workspace.
#[derive(Debug, Clone)]
pub struct FnSymbol {
    /// The function name.
    pub name: String,
    /// The impl-block type the method belongs to, if any.
    pub impl_type: Option<String>,
    /// Package name of the defining crate (`obs_search`, …).
    pub krate: String,
    /// Index of the defining file in the workspace file list.
    pub file_idx: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the fn carries a `pub` (incl. `pub(crate)` etc.).
    pub is_pub: bool,
    /// Token indices of the body's `{` and `}` in the defining file.
    pub body: (usize, usize),
}

impl FnSymbol {
    /// Display path for diagnostics: `crate::file_stem::name` or
    /// `crate::Type::name` for methods.
    pub fn display(&self, files: &[SourceFile]) -> String {
        let module = files
            .get(self.file_idx)
            .and_then(|f| f.path.file_stem())
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        match &self.impl_type {
            Some(ty) => format!("{}::{}::{}", self.krate, ty, self.name),
            None if module == "lib" || module == "mod" || module == "main" => {
                format!("{}::{}", self.krate, self.name)
            }
            None => format!("{}::{}::{}", self.krate, module, self.name),
        }
    }
}

/// The non-test `use`-imports of one file, resolved to workspace
/// crates. External imports (`std`, shim crates) are dropped: they
/// can never name a workspace symbol.
#[derive(Debug, Default, Clone)]
pub struct FileImports {
    /// Imported name (last path segment, or the `as` alias) → the
    /// workspace crate it comes from.
    pub names: BTreeMap<String, String>,
    /// Crates imported wholesale via `use obs_x::…::*`.
    pub glob_crates: BTreeSet<String>,
}

/// The workspace-wide symbol index.
#[derive(Debug, Default)]
pub struct SymbolIndex {
    /// Every non-test fn, in (file, token) order.
    pub fns: Vec<FnSymbol>,
    /// Free-fn ids by name.
    pub free_by_name: BTreeMap<String, Vec<FnId>>,
    /// Method ids by name.
    pub methods_by_name: BTreeMap<String, Vec<FnId>>,
    /// Per-file imports, parallel to the workspace file list.
    pub imports: Vec<FileImports>,
}

impl SymbolIndex {
    /// Builds the index over the workspace files. `krates[i]` is the
    /// package name owning `files[i]`.
    pub fn build(files: &[SourceFile], krates: &[String]) -> SymbolIndex {
        let mut index = SymbolIndex::default();
        for (file_idx, file) in files.iter().enumerate() {
            index.imports.push(parse_imports(file, &krates[file_idx]));
            let impls = impl_regions(file);
            for def in fn_defs(file) {
                let impl_type = impls
                    .iter()
                    .rfind(|(open, close, _)| (*open..=*close).contains(&def.body.0))
                    .map(|(_, _, ty)| ty.clone());
                let id = index.fns.len();
                let symbol = FnSymbol {
                    name: def.name.clone(),
                    impl_type: impl_type.clone(),
                    krate: krates[file_idx].clone(),
                    file_idx,
                    line: def.line,
                    is_pub: def.is_pub,
                    body: def.body,
                };
                match impl_type {
                    Some(_) => index.methods_by_name.entry(def.name).or_default().push(id),
                    None => index.free_by_name.entry(def.name).or_default().push(id),
                }
                index.fns.push(symbol);
            }
        }
        index
    }

    /// The innermost fn whose body contains token `tok` of file
    /// `file_idx` (innermost = smallest enclosing body).
    pub fn enclosing_fn(&self, file_idx: usize, tok: usize) -> Option<FnId> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.file_idx == file_idx && (f.body.0..=f.body.1).contains(&tok))
            .min_by_key(|(_, f)| f.body.1 - f.body.0)
            .map(|(id, _)| id)
    }
}

/// A raw fn definition found in one file.
struct FnDef {
    name: String,
    line: u32,
    is_pub: bool,
    body: (usize, usize),
}

/// All non-test fn definitions with bodies in the file. Nested fns
/// get their own entries (the walk resumes just inside each body).
fn fn_defs(file: &SourceFile) -> Vec<FnDef> {
    let tokens = &file.tokens;
    let mut defs = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_ident("fn") || file.test_mask[i] {
            i += 1;
            continue;
        }
        let Some(name) = tokens.get(i + 1).and_then(Token::ident) else {
            i += 1;
            continue;
        };
        // Visibility: walk back over the modifier run (`pub`,
        // `pub(crate)`, `const`, `async`, `unsafe`, `extern "C"`);
        // any token outside the run ends the scan.
        let mut is_pub = false;
        let mut k = i;
        while k > 0 {
            k -= 1;
            match &tokens[k].kind {
                TokenKind::Ident(w)
                    if matches!(
                        w.as_str(),
                        "const" | "async" | "unsafe" | "extern" | "crate" | "in" | "super" | "self"
                    ) => {}
                TokenKind::Ident(w) if w == "pub" => is_pub = true,
                TokenKind::Punct('(' | ')') => {}
                TokenKind::Str(_) => {} // extern "C"
                _ => break,
            }
        }
        // Find the body `{` at bracket depth 0 past the signature.
        let mut depth = 0isize;
        let mut j = i + 2;
        let mut open = None;
        while j < tokens.len() {
            match tokens[j].kind {
                TokenKind::Punct('(' | '[') => depth += 1,
                TokenKind::Punct(')' | ']') => depth -= 1,
                TokenKind::Punct('{') if depth == 0 => {
                    open = Some(j);
                    break;
                }
                TokenKind::Punct(';') if depth == 0 => break, // trait signature
                _ => {}
            }
            j += 1;
        }
        match open.and_then(|o| file.brace_match.get(&o).map(|&c| (o, c))) {
            Some((open, close)) => {
                defs.push(FnDef {
                    name: name.to_owned(),
                    line: tokens[i].line,
                    is_pub,
                    body: (open, close),
                });
                i = open + 1;
            }
            None => i = j + 1,
        }
    }
    defs
}

/// Every `impl` block in the file as `(open, close, type_name)`.
/// For `impl Trait for Type` the type is `Type`; for `impl Type` it
/// is `Type` (last path segment, generics stripped).
fn impl_regions(file: &SourceFile) -> Vec<(usize, usize, String)> {
    let tokens = &file.tokens;
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_ident("impl") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // Skip the generic parameter list `<…>` if present.
        if tokens.get(j).is_some_and(|t| t.is_punct('<')) {
            j = skip_angles(tokens, j);
        }
        // Collect path segments until `for`, `where` or the body `{`.
        let mut first_path = last_path_segment(tokens, &mut j);
        let mut saw_for = false;
        while j < tokens.len() {
            match &tokens[j].kind {
                TokenKind::Punct('{') => break,
                TokenKind::Ident(kw) if kw == "for" => {
                    saw_for = true;
                    j += 1;
                    first_path = last_path_segment(tokens, &mut j);
                }
                TokenKind::Ident(kw) if kw == "where" => {
                    // Run forward to the body brace.
                    while j < tokens.len() && !tokens[j].is_punct('{') {
                        j += 1;
                    }
                    break;
                }
                TokenKind::Punct('<') => j = skip_angles(tokens, j),
                _ => j += 1,
            }
        }
        let _ = saw_for;
        match (first_path, file.brace_match.get(&j)) {
            (Some(ty), Some(&close)) if tokens.get(j).is_some_and(|t| t.is_punct('{')) => {
                regions.push((j, close, ty));
                i = j + 1;
            }
            _ => i = j.max(i + 1),
        }
    }
    regions
}

/// Reads a type path at `*j` (`a::b::Type<…>`), advancing past it,
/// and returns the last plain segment (`Type`).
fn last_path_segment(tokens: &[Token], j: &mut usize) -> Option<String> {
    let mut last = None;
    loop {
        match tokens.get(*j).map(|t| &t.kind) {
            Some(TokenKind::Ident(name))
                if name != "for" && name != "where" && name != "dyn" && name != "impl" =>
            {
                last = Some(name.clone());
                *j += 1;
            }
            Some(TokenKind::Punct(':')) => *j += 1,
            Some(TokenKind::Punct('<')) => {
                *j = skip_angles(tokens, *j);
                break;
            }
            Some(TokenKind::Punct('&' | '\'')) | Some(TokenKind::Lifetime) => *j += 1,
            _ => break,
        }
    }
    last
}

/// Given `tokens[start] == '<'`, returns the index one past the
/// matching `>`. `->` arrows inside (fn-pointer types) are skipped
/// so their `>` never closes the angle scope.
fn skip_angles(tokens: &[Token], start: usize) -> usize {
    let mut depth = 0isize;
    let mut i = start;
    while i < tokens.len() {
        match tokens[i].kind {
            TokenKind::Punct('<') => depth += 1,
            TokenKind::Punct('-') if tokens.get(i + 1).is_some_and(|t| t.is_punct('>')) => {
                i += 2;
                continue;
            }
            TokenKind::Punct('>') => {
                depth -= 1;
                if depth <= 0 {
                    return i + 1;
                }
            }
            // A `(`…`)` group (fn-pointer args) can contain commas
            // and nothing angle-relevant; fall through, depth on
            // parens is unnecessary for matching `<`/`>` pairs here.
            _ => {}
        }
        i += 1;
    }
    tokens.len()
}

/// Parses the file's non-test `use` statements into a [`FileImports`]
/// map. Only workspace crates matter — identified by the `obs_`
/// naming convention every workspace crate follows: `use obs_x::Type`
/// records `Type → obs_x`; `use crate::…` / `use self::…` /
/// `use super::…` record into `own` (the file's crate); everything
/// else (`std`, shim crates) is external and ignored.
fn parse_imports(file: &SourceFile, own: &str) -> FileImports {
    let tokens = &file.tokens;
    let mut imports = FileImports::default();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_ident("use") || file.test_mask[i] {
            i += 1;
            continue;
        }
        // The root crate of the path decides whether we care.
        let root = tokens.get(i + 1).and_then(Token::ident);
        let krate = match root {
            Some("crate") | Some("self") | Some("super") => Some(own.to_owned()),
            Some(name) if name.starts_with("obs_") => Some(name.to_owned()),
            _ => None,
        };
        // Consume the whole statement regardless, collecting leaf
        // names when the crate is in-workspace.
        let mut j = i + 1;
        let mut pending: Option<String> = None;
        while j < tokens.len() && !tokens[j].is_punct(';') {
            match &tokens[j].kind {
                TokenKind::Ident(name) if name == "as" => {
                    // The alias replaces the leaf name.
                    if let Some(alias) = tokens.get(j + 1).and_then(Token::ident) {
                        pending = Some(alias.to_owned());
                        j += 1;
                    }
                }
                TokenKind::Ident(name) => pending = Some(name.clone()),
                TokenKind::Punct(',' | '}') => {
                    if let (Some(k), Some(name)) = (&krate, pending.take()) {
                        imports.names.insert(name, k.clone());
                    }
                }
                TokenKind::Punct('*') => {
                    if let Some(k) = &krate {
                        imports.glob_crates.insert(k.clone());
                    }
                    pending = None;
                }
                _ => {}
            }
            j += 1;
        }
        if let (Some(k), Some(name)) = (&krate, pending.take()) {
            if name != *k {
                imports.names.insert(name, k.clone());
            }
        }
        i = j + 1;
    }
    imports
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn index(src: &str) -> (SymbolIndex, Vec<SourceFile>) {
        let files = vec![SourceFile::parse(
            PathBuf::from("crates/live/src/x.rs"),
            src,
        )];
        let krates = vec!["obs_live".to_string()];
        let idx = SymbolIndex::build(&files, &krates);
        (idx, files)
    }

    #[test]
    fn free_fns_and_methods_are_separated() {
        let (idx, _) = index(
            "pub fn free() {}\n\
             struct S;\n\
             impl S { fn method(&self) {} }\n\
             impl std::fmt::Display for S { fn fmt(&self) {} }",
        );
        assert_eq!(idx.free_by_name["free"].len(), 1);
        assert_eq!(idx.methods_by_name["method"].len(), 1);
        let fmt = idx.fns[idx.methods_by_name["fmt"][0]].clone();
        assert_eq!(fmt.impl_type.as_deref(), Some("S"));
        assert!(idx.fns[idx.free_by_name["free"][0]].is_pub);
        assert!(!idx.fns[idx.methods_by_name["method"][0]].is_pub);
    }

    #[test]
    fn generic_impl_headers_resolve_the_type() {
        let (idx, _) = index(
            "impl<T: Fn() -> u64> Holder<T> { fn call(&self) {} }\n\
             impl<'a> Iterator for Walker<'a> { fn next(&mut self) {} }",
        );
        assert_eq!(
            idx.fns[idx.methods_by_name["call"][0]].impl_type.as_deref(),
            Some("Holder")
        );
        assert_eq!(
            idx.fns[idx.methods_by_name["next"][0]].impl_type.as_deref(),
            Some("Walker")
        );
    }

    #[test]
    fn test_fns_are_not_indexed() {
        let (idx, _) = index("#[cfg(test)]\nmod tests { fn helper() {} }\nfn live() {}");
        assert!(!idx.free_by_name.contains_key("helper"));
        assert!(idx.free_by_name.contains_key("live"));
    }

    #[test]
    fn enclosing_fn_picks_the_innermost() {
        let (idx, files) = index("fn outer() { fn inner() { work(); } }");
        let work_tok = files[0]
            .tokens
            .iter()
            .position(|t| t.is_ident("work"))
            .unwrap();
        let id = idx.enclosing_fn(0, work_tok).unwrap();
        assert_eq!(idx.fns[id].name, "inner");
    }

    #[test]
    fn imports_map_names_to_workspace_crates() {
        let files = vec![SourceFile::parse(
            PathBuf::from("crates/search/src/x.rs"),
            "use obs_analytics::{AlexaPanel, LinkGraph};\n\
             use obs_stats::normalize::z_scores;\n\
             use obs_synth::rng::Rng64 as Rng;\n\
             use std::collections::BTreeMap;\n\
             use obs_model::*;\n\
             fn f() {}",
        )];
        let idx = SymbolIndex::build(&files, &["obs_search".to_string()]);
        let imports = &idx.imports[0];
        assert_eq!(imports.names["AlexaPanel"], "obs_analytics");
        assert_eq!(imports.names["LinkGraph"], "obs_analytics");
        assert_eq!(imports.names["z_scores"], "obs_stats");
        assert_eq!(imports.names["Rng"], "obs_synth");
        assert!(!imports.names.contains_key("BTreeMap"));
        assert!(imports.glob_crates.contains("obs_model"));
    }

    #[test]
    fn test_masked_imports_are_ignored() {
        let files = vec![SourceFile::parse(
            PathBuf::from("crates/live/src/x.rs"),
            "#[cfg(test)]\nmod tests { use obs_synth::World; }\nfn f() {}",
        )];
        let idx = SymbolIndex::build(&files, &["obs_live".to_string()]);
        assert!(idx.imports[0].names.is_empty());
    }
}
