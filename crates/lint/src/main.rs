//! CLI: `obs_lint check [ROOT] [--format text|json|github]
//! [--baseline PATH] [--write-baseline]`.
//!
//! Exits non-zero only on findings *not* covered by the ratchet
//! baseline (`LINT_BASELINE.tsv` at ROOT by default) — CI runs this
//! as a required gate, so new violations fail while accepted
//! pre-existing ones burn down at their own pace.

use obs_lint::baseline::{self, Baseline};
use obs_lint::emit::{self, Format};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    format: Format,
    baseline_path: PathBuf,
    write_baseline: bool,
}

fn usage() -> ExitCode {
    eprintln!("usage: obs_lint check [ROOT] [--format text|json|github]");
    eprintln!("                      [--baseline PATH] [--write-baseline]");
    eprintln!();
    eprintln!("Lints the workspace at ROOT (default: current directory)");
    eprintln!("with the repo-specific invariant passes:");
    for key in obs_lint::Pass::KEYS {
        let pass = obs_lint::Pass::from_key(key).expect("KEYS are valid keys");
        eprintln!("  {:<14} {}", key, pass.name());
    }
    eprintln!();
    eprintln!("Findings listed in the ratchet baseline (default:");
    eprintln!(
        "ROOT/{}) are reported but do not fail the gate;",
        baseline::DEFAULT_FILE
    );
    eprintln!("--write-baseline regenerates it from the current findings.");
    ExitCode::from(2)
}

fn parse_args() -> Option<Args> {
    let mut args = std::env::args().skip(1);
    if args.next().as_deref() != Some("check") {
        return None;
    }
    let mut root = PathBuf::from(".");
    let mut format = Format::Text;
    let mut baseline_path = None;
    let mut write_baseline = false;
    let mut saw_root = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => format = Format::parse(&args.next()?)?,
            "--baseline" => baseline_path = Some(PathBuf::from(args.next()?)),
            "--write-baseline" => write_baseline = true,
            flag if flag.starts_with('-') => return None,
            path if !saw_root => {
                root = PathBuf::from(path);
                saw_root = true;
            }
            _ => return None,
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join(baseline::DEFAULT_FILE));
    Some(Args {
        root,
        format,
        baseline_path,
        write_baseline,
    })
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else {
        return usage();
    };
    let findings = obs_lint::check(&args.root);
    if args.write_baseline {
        let text = Baseline::render(&findings);
        if let Err(err) = std::fs::write(&args.baseline_path, text) {
            eprintln!(
                "obs_lint: cannot write baseline {}: {err}",
                args.baseline_path.display()
            );
            return ExitCode::FAILURE;
        }
        println!(
            "obs_lint: wrote {} finding(s) to {}",
            findings.len(),
            args.baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }
    let baseline = match Baseline::load(&args.baseline_path) {
        Ok(baseline) => baseline,
        Err(err) => {
            eprintln!(
                "obs_lint: cannot read baseline {}: {err}",
                args.baseline_path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let (new, baselined) = baseline.partition(&findings);
    print!("{}", emit::render(args.format, &new, &baselined));
    if new.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
