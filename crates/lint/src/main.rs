//! CLI: `obs_lint check [ROOT]`.
//!
//! Prints every finding as `file:line: [pass] message` and exits
//! non-zero if there are any — CI runs this as a required gate.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, root) = match args.as_slice() {
        [cmd] => (cmd.as_str(), PathBuf::from(".")),
        [cmd, root] => (cmd.as_str(), PathBuf::from(root)),
        _ => ("", PathBuf::new()),
    };
    if cmd != "check" {
        eprintln!("usage: obs_lint check [ROOT]");
        eprintln!();
        eprintln!("Lints the workspace at ROOT (default: current directory)");
        eprintln!("with the repo-specific invariant passes:");
        for key in obs_lint::Pass::KEYS {
            let pass = obs_lint::Pass::from_key(key).expect("KEYS are valid keys");
            eprintln!("  {:<14} {}", key, pass.name());
        }
        return ExitCode::from(2);
    }
    let findings = obs_lint::check(&root);
    for finding in &findings {
        println!("{finding}");
    }
    if findings.is_empty() {
        println!("obs_lint: workspace clean");
        ExitCode::SUCCESS
    } else {
        println!("obs_lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
