//! File discovery and the top-level `check` entry point.
//!
//! `check` walks the workspace, reads every scanned file, loads the
//! observability surfaces (ARCHITECTURE.md, ci.yml), and hands the
//! lot to [`Workspace::analyze`] — the whole analysis is a pure
//! function over the gathered texts; this module is the only part
//! that touches the filesystem.

use crate::pass::{Diagnostic, Pass};
use crate::workspace::{sort_findings, Surfaces, Workspace};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never scanned, wherever they appear. `examples/`
/// is *not* here: the examples drive the real serving API and are
/// scanned (with the guard-blocking and discarded-result passes).
const EXCLUDED_DIRS: [&str; 4] = ["target", "tests", "benches", "fixtures"];

/// The observability surfaces `check` loads for the
/// instrument-drift pass, as workspace-relative paths.
const SURFACE_ARCHITECTURE: &str = "ARCHITECTURE.md";
const SURFACE_CI: &str = ".github/workflows/ci.yml";

/// Runs every pass over the workspace rooted at `root` and returns
/// the sorted findings. I/O errors (unreadable file or surface)
/// become diagnostics rather than aborting the run.
pub fn check(root: &Path) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut inputs = Vec::new();
    for path in workspace_sources(root) {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        match fs::read_to_string(&path) {
            Ok(src) => inputs.push((rel, src)),
            Err(err) => out.push(read_error(rel, &err)),
        }
    }
    let surfaces = load_surfaces(root, &mut out);
    out.extend(Workspace::analyze(inputs, &surfaces));
    sort_findings(&mut out);
    out
}

/// Lints one file's text as if it lived at `rel` (a workspace-
/// relative path — pass scoping keys off it). Single-file mode: no
/// observability surfaces, so the instrument-drift pass is skipped,
/// and cross-file call edges cannot exist — but the interprocedural
/// passes still run (helper-fn chains *within* the file resolve).
pub fn lint_source(rel: &Path, src: &str) -> Vec<Diagnostic> {
    Workspace::analyze(vec![(rel.to_path_buf(), src.to_owned())], &Surfaces::none())
}

/// Reads the observability surfaces; an unreadable surface is an
/// [`Pass::Io`] finding (the drift gate must never pass vacuously
/// because its inputs went missing).
fn load_surfaces(root: &Path, out: &mut Vec<Diagnostic>) -> Surfaces {
    let mut surfaces = Surfaces::none();
    for (rel, slot) in [
        (SURFACE_ARCHITECTURE, &mut surfaces.architecture),
        (SURFACE_CI, &mut surfaces.ci),
    ] {
        match fs::read_to_string(root.join(rel)) {
            Ok(text) => *slot = Some((PathBuf::from(rel), text)),
            Err(err) => out.push(read_error(PathBuf::from(rel), &err)),
        }
    }
    surfaces
}

/// All `.rs` files the linter scans, sorted: `crates/*/src/**`
/// (excluding the lint crate itself — its strings and fixtures
/// mention every flagged token by design), the root crate's
/// `src/**`, and the root `examples/`.
pub fn workspace_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates_dir) {
        let mut crate_dirs: Vec<PathBuf> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir() && p.file_name().is_some_and(|n| n != "lint"))
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            collect_rs(&dir.join("src"), &mut files);
        }
    }
    collect_rs(&root.join("src"), &mut files);
    collect_rs(&root.join("examples"), &mut files);
    files.sort();
    files
}

/// Recursively collects `.rs` files under `dir`, skipping excluded
/// directory names.
fn collect_rs(dir: &Path, files: &mut Vec<PathBuf>) {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(_) => return, // absent src/ is fine (virtual workspace root)
    };
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !EXCLUDED_DIRS.contains(&name) {
                collect_rs(&path, files);
            }
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
}

/// An unreadable source file is itself a finding: the linter must
/// never silently skip part of the surface it gates.
fn read_error(rel: PathBuf, err: &io::Error) -> Diagnostic {
    Diagnostic {
        file: rel,
        line: 0,
        pass: Pass::Io,
        message: format!("could not read file: {err}"),
    }
}
