//! File discovery, per-pass scoping, and the top-level `check`.

use crate::pass::{Diagnostic, Pass};
use crate::passes;
use crate::source::SourceFile;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Serving crates subject to the panic-freedom pass. `obs_obs` (the
/// root crate, experiments, benches) may still panic: it is driven
/// by operators, not user queries. `telemetry` is included because
/// its recording paths run inline in every serving request.
const SERVING_CRATES: [&str; 5] = ["live", "search", "wrappers", "model", "telemetry"];

/// Directory names never scanned, wherever they appear.
const EXCLUDED_DIRS: [&str; 5] = ["target", "tests", "benches", "examples", "fixtures"];

/// Runs every pass over the workspace rooted at `root` and returns
/// the sorted findings. I/O errors (unreadable file) become
/// diagnostics rather than aborting the run.
pub fn check(root: &Path) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for path in workspace_sources(root) {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        match fs::read_to_string(&path) {
            Ok(src) => out.extend(lint_source(&rel, &src)),
            Err(err) => out.push(read_error(rel, &err)),
        }
    }
    out.sort_by(|a, b| {
        (&a.file, a.line, a.pass, &a.message).cmp(&(&b.file, b.line, b.pass, &b.message))
    });
    out.dedup();
    out
}

/// Lints one file's text as if it lived at `rel` (a workspace-
/// relative path — pass scoping keys off it). This is the whole
/// per-file pipeline; `check` is a walk over it.
pub fn lint_source(rel: &Path, src: &str) -> Vec<Diagnostic> {
    let file = SourceFile::parse(rel.to_path_buf(), src);
    let mut out = file.pragma_diags.clone();
    if in_serving_crate(rel) {
        passes::panic_freedom::run(&file, &mut out);
    }
    if rel.starts_with("crates/live") {
        passes::commit_ordering::run(&file, &mut out);
    }
    passes::guard_blocking::run(&file, &mut out);
    passes::determinism::run(&file, &mut out); // no-op unless tagged
    passes::discarded_result::run(&file, &mut out);
    out
}

/// Whether `rel` is inside one of the serving crates.
fn in_serving_crate(rel: &Path) -> bool {
    SERVING_CRATES
        .iter()
        .any(|c| rel.starts_with(Path::new("crates").join(c)))
}

/// All `.rs` files the linter scans: `crates/*/src/**` (excluding
/// the lint crate itself — its strings and fixtures mention every
/// flagged token by design) and the root crate's `src/**`.
fn workspace_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates_dir) {
        let mut crate_dirs: Vec<PathBuf> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir() && p.file_name().is_some_and(|n| n != "lint"))
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            collect_rs(&dir.join("src"), &mut files);
        }
    }
    collect_rs(&root.join("src"), &mut files);
    files.sort();
    files
}

/// Recursively collects `.rs` files under `dir`, skipping excluded
/// directory names.
fn collect_rs(dir: &Path, files: &mut Vec<PathBuf>) {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(_) => return, // absent src/ is fine (virtual workspace root)
    };
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !EXCLUDED_DIRS.contains(&name) {
                collect_rs(&path, files);
            }
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
}

/// An unreadable source file is itself a finding: the linter must
/// never silently skip part of the surface it gates.
fn read_error(rel: PathBuf, err: &io::Error) -> Diagnostic {
    Diagnostic {
        file: rel,
        line: 0,
        pass: Pass::Pragma,
        message: format!("could not read file: {err}"),
    }
}
