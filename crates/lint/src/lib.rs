//! `obs_lint`: the in-tree invariant linter for the delta pipeline.
//!
//! The workspace's correctness story rests on a handful of
//! invariants that the type system cannot see — journal→fsync→
//! apply→publish ordering, panic-free serving paths, deterministic
//! replay, locks never held across blocking calls, durability errors
//! never silently dropped. Each is documented in ARCHITECTURE.md and
//! exercised by tests, but tests only cover the call sites they
//! know about; a new code path can violate the contract without
//! failing anything. This crate closes that gap: a hand-rolled Rust
//! lexer (no `syn` — the image is offline and the linter must gate
//! every other crate without sitting downstream of one) plus five
//! repo-specific passes that run over the workspace source and fail
//! CI with `file:line` findings.
//!
//! Suppression is explicit and justified:
//!
//! ```text
//! // lint:allow(<pass>): <reason>
//! ```
//!
//! where `<pass>` is one of `panic`, `ordering`, `guard`,
//! `determinism`, `discard`. A trailing pragma covers its own line;
//! a standalone comment covers the next code line. A reasonless or
//! unknown-pass pragma is itself a (non-suppressible) finding.
//! Files opting into replay-determinism checks carry a
//! `// lint:deterministic` comment.

#![warn(missing_docs)]

pub mod lexer;
pub mod pass;
pub mod passes;
pub mod runner;
pub mod source;

pub use pass::{Diagnostic, Pass};
pub use runner::{check, lint_source};
