//! `obs_lint`: the in-tree invariant linter for the delta pipeline.
//!
//! The workspace's correctness story rests on a handful of
//! invariants that the type system cannot see — journal→fsync→
//! apply→publish ordering, panic-free serving paths, deterministic
//! replay, locks never held across blocking calls, durability errors
//! never silently dropped. Each is documented in ARCHITECTURE.md and
//! exercised by tests, but tests only cover the call sites they
//! know about; a new code path can violate the contract without
//! failing anything. This crate closes that gap: a hand-rolled Rust
//! lexer (no `syn` — the image is offline and the linter must gate
//! every other crate without sitting downstream of one) feeding two
//! analysis phases that fail CI with `file:line` findings.
//!
//! **Phase 1** indexes the whole workspace: every `fn` with its
//! crate, impl type and body span ([`symbols`]), and an
//! import-gated, over-approximate call graph over those symbols
//! ([`callgraph`]). **Phase 2** runs the passes. Five are per-file
//! (panic-freedom on serving crates, commit ordering, guard across
//! blocking, determinism, discarded results) and three are
//! interprocedural over the phase-1 graph: `reach` walks panic
//! sites in *non*-serving crates backwards to serving entry points
//! and prints the call chain; `ordering` composes append/sync/apply
//! summaries across `obs_live` helper functions; `drift` diffs the
//! instrument names registered in code against the ARCHITECTURE.md
//! catalog table and the ci.yml grep lists.
//!
//! Suppression is explicit and justified:
//!
//! ```text
//! // lint:allow(<pass>): <reason>
//! ```
//!
//! where `<pass>` is one of `panic`, `ordering`, `guard`,
//! `determinism`, `discard`, `reach`, `drift`. A trailing pragma
//! covers its own line; a standalone comment covers the next code
//! line. For `reach`, the pragma can also sit on a call-edge line
//! to vouch for that edge (cutting every chain through it). A
//! reasonless or unknown-pass pragma is itself a (non-suppressible)
//! finding. Files opting into replay-determinism checks carry a
//! `// lint:deterministic` comment.
//!
//! The CLI (`obs_lint check`) emits text, `--format json`, or
//! `--format github` annotations, and gates against the committed
//! ratchet file `LINT_BASELINE.tsv` ([`baseline`]): only findings
//! not in the baseline fail the build, so the gate can be adopted
//! before every legacy finding is burned down.

#![warn(missing_docs)]

pub mod baseline;
pub mod callgraph;
pub mod emit;
pub mod lexer;
pub mod pass;
pub mod passes;
pub mod runner;
pub mod source;
pub mod symbols;
pub mod workspace;

pub use pass::{Diagnostic, Pass};
pub use runner::{check, lint_source, workspace_sources};
pub use workspace::{Surfaces, Workspace};
