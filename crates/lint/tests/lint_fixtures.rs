//! The fixture corpus: every pass has firing and clean fixtures
//! under `tests/fixtures/<pass-key>/`, with expected findings marked
//! inline as `//~ <pass-key>` (compiletest style). The harness lints
//! each fixture as if it lived at `crates/live/src/fixture.rs` — a
//! serving-crate path inside `obs_live`, so every pass is in scope —
//! and requires the diagnostic set to equal the marker set exactly:
//! a missed finding fails, and so does a false positive.

use obs_lint::{lint_source, Pass};
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// The marker key a pass's diagnostics map to.
fn marker_key(pass: Pass) -> &'static str {
    pass.key()
}

/// Parses `//~ <key>` markers: the set of (1-based line, key).
fn expected_markers(src: &str) -> BTreeSet<(u32, String)> {
    let mut out = BTreeSet::new();
    for (i, line) in src.lines().enumerate() {
        let mut rest = line;
        while let Some(at) = rest.find("//~") {
            rest = &rest[at + 3..];
            let key = rest.split_whitespace().next().unwrap_or("");
            assert!(
                key == "pragma" || Pass::from_key(key).is_some(),
                "bad marker key {key:?} on line {}",
                i + 1
            );
            out.insert((i as u32 + 1, key.to_owned()));
        }
    }
    out
}

/// Every fixture file, as (pass-dir name, path).
fn all_fixtures() -> Vec<(String, PathBuf)> {
    let mut out = Vec::new();
    let mut dirs: Vec<PathBuf> = fs::read_dir(fixtures_root())
        .expect("fixtures directory")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    for dir in dirs {
        let key = dir.file_name().unwrap().to_string_lossy().into_owned();
        let mut files: Vec<PathBuf> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "rs"))
            .collect();
        files.sort();
        for f in files {
            out.push((key.clone(), f));
        }
    }
    assert!(!out.is_empty(), "no fixtures found");
    out
}

#[test]
fn fixtures_fire_exactly_where_marked() {
    let pseudo = Path::new("crates/live/src/fixture.rs");
    for (_, path) in all_fixtures() {
        let src = fs::read_to_string(&path).unwrap();
        let expected = expected_markers(&src);
        let actual: BTreeSet<(u32, String)> = lint_source(pseudo, &src)
            .into_iter()
            .map(|d| (d.line, marker_key(d.pass).to_owned()))
            .collect();
        assert_eq!(
            actual,
            expected,
            "fixture {} diverged from its markers",
            path.display()
        );
    }
}

#[test]
fn every_pass_has_firing_and_clean_fixtures() {
    // The single-file passes. `reach` and `drift` need multiple
    // files / surfaces, so their corpus lives in the workspace
    // harness (tests/workspace_fixtures.rs) with the same ≥2+≥2
    // requirement.
    let single_file_keys = ["panic", "ordering", "guard", "determinism", "discard"];
    for key in single_file_keys.iter().chain(["pragma"].iter()) {
        let (mut firing, mut clean) = (0, 0);
        for (dir, path) in all_fixtures() {
            if dir != *key {
                continue;
            }
            let src = fs::read_to_string(&path).unwrap();
            if expected_markers(&src).is_empty() {
                clean += 1;
            } else {
                firing += 1;
            }
        }
        assert!(
            firing >= 2 && clean >= 2,
            "pass {key}: {firing} firing / {clean} clean fixtures (need >= 2 of each)"
        );
    }
}

/// Firing fixtures are what CI's non-zero exit is made of: the CLI
/// exits non-zero iff the diagnostic list is non-empty, so every
/// firing fixture must produce at least one diagnostic.
#[test]
fn firing_fixtures_would_fail_ci() {
    let pseudo = Path::new("crates/live/src/fixture.rs");
    for (_, path) in all_fixtures() {
        let src = fs::read_to_string(&path).unwrap();
        if expected_markers(&src).is_empty() {
            continue;
        }
        assert!(
            !lint_source(pseudo, &src).is_empty(),
            "firing fixture {} produced no diagnostics",
            path.display()
        );
    }
}
