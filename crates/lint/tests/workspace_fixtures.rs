//! The workspace fixture corpus for the interprocedural passes.
//!
//! `tests/fixtures_ws/<pass-key>/<case>/` holds one miniature
//! workspace per case: `.rs` files under workspace-relative paths
//! (`crates/<name>/src/…`), plus optional `ARCHITECTURE.md` and
//! `ci.yml` observability surfaces. Expected findings are marked
//! `//~ <key>` inline in the `.rs` files (compiletest style); for
//! findings attributed to the non-Rust surfaces, a sidecar
//! `expect.txt` lists `file:line key` entries. Each case requires
//! exact set equality — a missed finding fails, and so does a false
//! positive.

use obs_lint::{Pass, Surfaces, Workspace};
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

fn corpus_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures_ws")
}

/// Every case, as (pass-dir name, case path).
fn all_cases() -> Vec<(String, PathBuf)> {
    let mut out = Vec::new();
    let mut pass_dirs: Vec<PathBuf> = fs::read_dir(corpus_root())
        .expect("fixtures_ws directory")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    pass_dirs.sort();
    for dir in pass_dirs {
        let key = dir.file_name().unwrap().to_string_lossy().into_owned();
        let mut cases: Vec<PathBuf> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        cases.sort();
        for case in cases {
            out.push((key.clone(), case));
        }
    }
    assert!(!out.is_empty(), "no workspace fixtures found");
    out
}

/// Recursively collects the case's `.rs` files as
/// (workspace-relative path, text).
fn collect_sources(case: &Path, dir: &Path, out: &mut Vec<(PathBuf, String)>) {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_sources(case, &path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path.strip_prefix(case).unwrap().to_path_buf();
            out.push((rel, fs::read_to_string(&path).unwrap()));
        }
    }
}

/// An expected finding: (workspace-relative file, line, pass key).
type Expected = BTreeSet<(String, u32, String)>;

/// Loads one case: the inputs, surfaces, and expected finding set.
fn load_case(case: &Path) -> (Vec<(PathBuf, String)>, Surfaces, Expected) {
    let mut inputs = Vec::new();
    collect_sources(case, case, &mut inputs);
    let mut expected = BTreeSet::new();
    for (rel, text) in &inputs {
        for (i, line) in text.lines().enumerate() {
            let mut rest: &str = line;
            while let Some(at) = rest.find("//~") {
                rest = &rest[at + 3..];
                let key = rest.split_whitespace().next().unwrap_or("");
                assert!(
                    Pass::from_key(key).is_some() || key == "pragma" || key == "io",
                    "bad marker key {key:?} in {}",
                    rel.display()
                );
                expected.insert((rel.display().to_string(), i as u32 + 1, key.to_owned()));
            }
        }
    }
    let mut surfaces = Surfaces::none();
    for (name, slot) in [
        ("ARCHITECTURE.md", &mut surfaces.architecture),
        ("ci.yml", &mut surfaces.ci),
    ] {
        if let Ok(text) = fs::read_to_string(case.join(name)) {
            *slot = Some((PathBuf::from(name), text));
        }
    }
    if let Ok(text) = fs::read_to_string(case.join("expect.txt")) {
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let (loc, key) = line.rsplit_once(' ').expect("expect.txt: `file:line key`");
            let (file, lineno) = loc.rsplit_once(':').expect("expect.txt: `file:line key`");
            expected.insert((
                file.to_owned(),
                lineno.parse().expect("expect.txt line number"),
                key.trim().to_owned(),
            ));
        }
    }
    (inputs, surfaces, expected)
}

#[test]
fn workspace_fixtures_fire_exactly_where_marked() {
    for (_, case) in all_cases() {
        let (inputs, surfaces, expected) = load_case(&case);
        let actual: BTreeSet<(String, u32, String)> = Workspace::analyze(inputs, &surfaces)
            .into_iter()
            .map(|d| {
                (
                    d.file.display().to_string(),
                    d.line,
                    d.pass.key().to_owned(),
                )
            })
            .collect();
        assert_eq!(
            actual,
            expected,
            "workspace fixture {} diverged from its markers",
            case.display()
        );
    }
}

#[test]
fn interprocedural_passes_have_firing_and_clean_cases() {
    for key in ["reach", "drift"] {
        let (mut firing, mut clean) = (0, 0);
        for (dir, case) in all_cases() {
            if dir != key {
                continue;
            }
            let (_, _, expected) = load_case(&case);
            if expected.is_empty() {
                clean += 1;
            } else {
                firing += 1;
            }
        }
        assert!(
            firing >= 2 && clean >= 2,
            "pass {key}: {firing} firing / {clean} clean workspace fixtures (need >= 2 of each)"
        );
    }
}

/// Every firing case must fail a CI gate built on the diagnostic
/// list being non-empty.
#[test]
fn firing_workspace_fixtures_would_fail_ci() {
    for (_, case) in all_cases() {
        let (inputs, surfaces, expected) = load_case(&case);
        if expected.is_empty() {
            continue;
        }
        assert!(
            !Workspace::analyze(inputs, &surfaces).is_empty(),
            "firing workspace fixture {} produced no diagnostics",
            case.display()
        );
    }
}
