// Fixture: discarded journal-commit results must fire even when the
// call sits deep inside the initializer expression.

pub fn retract(j: &mut Journal) {
    let _ = j.retract_staged(); //~ discard
}

pub fn truncate(f: &mut File, len: u64) {
    let _ = wrap(f.set_len(len)); //~ discard
}
