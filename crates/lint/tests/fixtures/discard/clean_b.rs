// Fixture: propagating the error is clean, and `let _ =` on a
// non-commit expression is out of scope.

pub fn persist(file: &mut File) -> Result<(), Error> {
    file.sync_data()?;
    Ok(())
}

pub fn observe(value: u64) {
    let _ = render(value);
}
