// Fixture: a justified pragma waives the discard visibly.

pub fn heal(file: &mut File, clean_len: u64) {
    let _ = file.set_len(clean_len); // lint:allow(discard): best-effort heal; caller surfaces the original error
    let _ = file.sync_data(); // lint:allow(discard): best-effort heal; caller surfaces the original error
}
