// Fixture: silently discarding a fallible fsync/flush must fire.

pub fn persist(file: &mut File) {
    let _ = file.sync_data(); //~ discard
}

pub fn drain(w: &mut Writer) {
    let _ = w.flush(); //~ discard
}
