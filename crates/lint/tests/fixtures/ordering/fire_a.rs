// Fixture: apply before the append is synced must fire.

pub fn ingest(j: &mut Journal, w: &mut Writer, d: &Delta) -> Result<u64, Error> {
    let seq = j.append(d)?;
    w.apply(seq, d); //~ ordering
    j.sync()?;
    w.publish();
    Ok(seq)
}
