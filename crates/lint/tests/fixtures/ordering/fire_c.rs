// Fixture: an append staged inside a helper fn, then applied by the
// caller before any sync, must fire through the call graph — the
// per-file scan sees no `append` token in `ingest` at all.

fn stage(j: &mut Journal, d: &Delta) -> Result<u64, Error> {
    j.append(d)
}

pub fn ingest(j: &mut Journal, w: &mut Writer, d: &Delta) -> Result<(), Error> {
    let seq = stage(j, d)?;
    w.apply(seq, d); //~ ordering
    j.sync()?;
    Ok(())
}
