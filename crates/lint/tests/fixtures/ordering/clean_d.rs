// Fixture: a helper that syncs before applying is safe to call with
// an append pending — the fsync inside it covers the caller's
// journal entry too (sync is whole-journal durability).

fn flush(j: &mut Journal, w: &mut Writer, seq: u64, d: &Delta) -> Result<(), Error> {
    j.sync()?;
    w.apply(seq, d);
    Ok(())
}

pub fn ingest(j: &mut Journal, w: &mut Writer, d: &Delta) -> Result<(), Error> {
    let seq = j.append(d)?;
    flush(j, w, seq, d)?;
    Ok(())
}
