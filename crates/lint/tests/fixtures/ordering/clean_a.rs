// Fixture: the contract order journal -> fsync -> apply -> publish
// is clean.

pub fn ingest(j: &mut Journal, w: &mut Writer, d: &Delta) -> Result<u64, Error> {
    let seq = j.append(d)?;
    j.sync()?;
    w.apply(seq, d);
    w.publish();
    Ok(seq)
}
