// Fixture: a helper that appends *and* syncs discharges the
// durability obligation itself — the caller's apply is clean.

fn stage(j: &mut Journal, d: &Delta) -> Result<u64, Error> {
    let seq = j.append(d)?;
    j.sync()?;
    Ok(seq)
}

pub fn ingest(j: &mut Journal, w: &mut Writer, d: &Delta) -> Result<(), Error> {
    let seq = stage(j, d)?;
    w.apply(seq, d);
    Ok(())
}
