// Fixture: append_batch performs its own internal group-commit
// fsync (all-or-nothing), so applying after it is clean.

pub fn ingest_batch(j: &mut Journal, w: &mut Writer, ds: &[&Delta]) -> Result<(), Error> {
    let Some((first, last)) = j.append_batch(ds)? else {
        return Ok(());
    };
    w.apply_batch(first..=last, ds);
    w.publish();
    Ok(())
}
