// Fixture: publishing with an append still unsynced must fire, even
// when the append happened earlier in a loop.

pub fn ingest_burst(j: &mut Journal, w: &mut Writer, ds: &[Delta]) -> Result<(), Error> {
    for d in ds {
        j.append(d)?;
    }
    w.publish(); //~ ordering
    j.sync()?;
    Ok(())
}
