// Fixture: an apply buried inside a helper fn, invoked while the
// caller's append is still unsynced, must fire at the call site —
// the per-file scan sees no `apply` token in `ingest` at all.

fn flush(w: &mut Writer, seq: u64, d: &Delta) {
    w.apply(seq, d);
}

pub fn ingest(j: &mut Journal, w: &mut Writer, d: &Delta) -> Result<(), Error> {
    let seq = j.append(d)?;
    flush(w, seq, d); //~ ordering
    j.sync()?;
    Ok(())
}
