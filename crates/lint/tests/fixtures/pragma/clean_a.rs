// Fixture: a well-formed pragma with a reason parses clean, even
// when nothing on the covered line would have fired.

pub fn f() -> u32 {
    // lint:allow(guard): demonstrates the full pragma grammar
    0
}
