// Fixture: block-comment pragmas parse the same as line comments.

pub fn g(file: &mut File) {
    let _ = file.sync_data(); /* lint:allow(discard): shutdown path; error already logged */
}
