// Fixture: a reasonless pragma is itself a finding — a typo'd
// suppression must not silently do nothing.

pub fn f(x: Option<u32>) -> u32 {
    // lint:allow(panic) //~ pragma
    x.unwrap() //~ panic
}
