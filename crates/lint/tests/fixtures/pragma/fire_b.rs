// Fixture: an unknown pass key in a pragma is a finding, and the
// suppression it intended does not happen.

pub fn f(x: Option<u32>) -> u32 {
    // lint:allow(panics): off-by-one in the pass key //~ pragma
    x.unwrap() //~ panic
}
