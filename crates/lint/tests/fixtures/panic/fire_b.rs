// Fixture: the panic!-family macros must fire in serving-path code.

pub fn decide(flag: bool) -> u32 {
    if flag {
        todo!() //~ panic
    } else {
        unreachable!("bad flag") //~ panic
    }
}

pub fn cap(x: u32) -> u32 {
    if x > 10 {
        panic!("too big") //~ panic
    }
    x
}
