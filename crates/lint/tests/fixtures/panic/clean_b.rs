// Fixture: a justified pragma suppresses the finding, whether it
// trails the line or stands on the line above.

pub fn first_digit() -> char {
    // lint:allow(panic): "0123456789" is non-empty by construction
    "0123456789".chars().next().unwrap()
}

pub fn always(pairs: &[(u32, u32)]) -> u32 {
    pairs.iter().map(|&(a, _)| a).max().expect("checked non-empty by caller") // lint:allow(panic): caller contract documented in the rustdoc
}
