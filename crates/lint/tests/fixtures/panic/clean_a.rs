// Fixture: unwraps inside #[cfg(test)] / #[test] code never fire.

pub fn live(x: Option<u32>) -> Option<u32> {
    x
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_are_fine_here() {
        assert_eq!(super::live(Some(1)).unwrap(), 1);
        super::live(None).expect_err_is_fine();
    }
}
