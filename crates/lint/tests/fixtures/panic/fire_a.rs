// Fixture: unwrap/expect in serving-path code must fire.

pub fn lookup(xs: &[u32]) -> u32 {
    *xs.first().unwrap() //~ panic
}

pub fn pick(xs: &[u32]) -> u32 {
    *xs.last().expect("non-empty") //~ panic
}
