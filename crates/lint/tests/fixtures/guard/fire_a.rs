// Fixture: a let-bound write guard held across an fsync must fire.

pub fn flush(lock: &RwLock<State>, file: &File) -> Result<(), Error> {
    let Ok(state) = lock.write() else {
        return Ok(());
    };
    serialize(&state, file)?;
    file.sync_all()?; //~ guard
    Ok(())
}
