// Fixture: dropping the guard before the blocking call is clean.

pub fn commit(lock: &RwLock<State>, file: &File) -> Result<(), Error> {
    let Ok(guard) = lock.read() else {
        return Ok(());
    };
    let copy = clone_state(&guard);
    drop(guard);
    file.sync_data()?;
    store(copy);
    Ok(())
}
