// Fixture: a guard bound in a match arm lives to the end of the
// match block; a thread join inside it must fire.

pub fn commit(lock: &RwLock<State>, handle: JoinHandle<()>) {
    match lock.read() {
        Ok(state) => {
            report(&state);
            let _ = handle.join(); //~ guard
        }
        Err(_) => {}
    }
}
