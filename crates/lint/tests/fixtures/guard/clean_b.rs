// Fixture: the snapshot.rs idiom — the guard is confined to the
// match block and cloned out; the fsync after the match is clean.

pub fn snapshot_then_sync(lock: &RwLock<State>, file: &File) -> Result<(), Error> {
    let copy = match lock.read() {
        Ok(guard) => clone_state(&guard),
        Err(poisoned) => clone_state(&poisoned.into_inner()),
    };
    file.sync_data()?;
    store(copy);
    Ok(())
}
