// lint:deterministic — fixture: storing the wall clock inside a
// local "span" type is still wall-clock time in a replayed module;
// the span must live in the untagged metrics half.

pub struct CommitSpan {
    started: std::time::Instant, //~ determinism
}

impl CommitSpan {
    pub fn start() -> CommitSpan {
        CommitSpan {
            started: std::time::Instant::now(), //~ determinism
        }
    }

    pub fn finish(self, hist: &Histogram) {
        hist.record(self.started.elapsed().as_nanos() as u64);
    }
}
