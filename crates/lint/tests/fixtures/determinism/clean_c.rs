// lint:deterministic — fixture: the clean instrumentation pattern.
// The tagged module hands its commit closure to an untagged metrics
// type that owns the clock, and records only counts it computed
// itself — no clock vocabulary appears here.

pub fn routed_commit(metrics: Option<&ShardMetrics>, shard: usize) -> CommitOutcome {
    match metrics {
        Some(m) => m.time_shard_commit(shard, commit_batch),
        None => commit_batch(),
    }
}

pub fn record_fanout(hist: &Histogram, routed: &[Batch]) {
    let non_empty = routed.iter().filter(|b| !b.is_empty()).count();
    hist.record(non_empty as u64);
}
