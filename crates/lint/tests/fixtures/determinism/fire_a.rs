// lint:deterministic — fixture: hash containers must fire in a
// tagged module.

use std::collections::HashMap; //~ determinism

pub struct Router {
    homes: HashMap<u32, usize>, //~ determinism
}

pub fn elapsed(start: u64) -> u64 {
    let now = std::time::Instant::now(); //~ determinism
    discretize(now, start)
}
