// Fixture: an *untagged* module may use hash containers freely —
// the determinism pass only covers files whose leading comment
// carries the deterministic tag, and this one does not.

use std::collections::HashMap;

pub fn counts(xs: &[String]) -> HashMap<String, usize> {
    let mut out = HashMap::new();
    for x in xs {
        *out.entry(x.clone()).or_insert(0) += 1;
    }
    out
}
