// lint:deterministic — fixture: ordered containers and logical
// (journal) time are the clean substitutes.

use std::collections::BTreeMap;

pub struct Router {
    homes: BTreeMap<u32, usize>,
}

pub fn elapsed(now: Timestamp, start: Timestamp) -> u64 {
    now.seconds().saturating_sub(start.seconds())
}
