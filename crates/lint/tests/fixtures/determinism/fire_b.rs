// lint:deterministic — fixture: HashSet and the wall clock must
// fire in a tagged module.

pub fn dedupe(xs: &[u32]) -> usize {
    let seen: std::collections::HashSet<u32> = xs.iter().copied().collect(); //~ determinism
    seen.len()
}

pub fn now_secs() -> u64 {
    match std::time::SystemTime::now().duration_since(epoch()) { //~ determinism
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}
