// lint:deterministic — fixture: phase-boundary callbacks are the
// clean way to time a replayed plan. The hooks carry plan facts
// (shard index, result counts); the trait impl that turns them into
// durations lives in an untagged module and owns the clock there.

pub trait ScatterTrace {
    fn gathered(&mut self) {}
    fn shard_scored(&mut self, _shard: usize, _partials: usize) {}
    fn merged(&mut self, _hits: usize) {}
}

pub fn scatter(shards: &[Engine], trace: &mut dyn ScatterTrace) -> Vec<Hit> {
    let stats = gather(shards);
    trace.gathered();
    let mut partials = Vec::new();
    for (i, shard) in shards.iter().enumerate() {
        let before = partials.len();
        partials.extend(shard.partial(&stats));
        trace.shard_scored(i, partials.len() - before);
    }
    let hits = merge(partials);
    trace.merged(hits.len());
    hits
}
