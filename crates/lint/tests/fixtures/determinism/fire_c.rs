// lint:deterministic — fixture: wrapping the wall clock in a
// telemetry-flavored helper does not launder it. The tagged module
// must hand a closure to an untagged metrics module instead of
// reading `Instant` itself, even to feed a histogram.

pub fn timed_commit(hist: &Histogram) -> CommitOutcome {
    let start = std::time::Instant::now(); //~ determinism
    let outcome = commit_batch();
    hist.record(elapsed_ns(start));
    outcome
}
