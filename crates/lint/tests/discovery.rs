//! Pins `workspace_sources` discovery: which directories are
//! scanned, which are excluded, the lint-crate self-skip, and the
//! deterministic sort order — built against a synthetic tree so the
//! contract survives refactors of the real workspace layout.

use std::fs;
use std::path::{Path, PathBuf};

/// A scratch directory removed on drop (the image has no tempfile
/// crate; uniqueness comes from the test binary's process id).
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("obs_lint_discovery_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn touch(&self, rel: &str) {
        let path = self.0.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, "// scratch\n").unwrap();
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn relative(root: &Path, files: Vec<PathBuf>) -> Vec<String> {
    files
        .into_iter()
        .map(|p| {
            p.strip_prefix(root)
                .unwrap()
                .to_string_lossy()
                .replace('\\', "/")
        })
        .collect()
}

#[test]
fn discovery_pins_inclusions_exclusions_and_order() {
    let scratch = Scratch::new("tree");
    // Scanned: crate sources, root sources, examples.
    scratch.touch("crates/alpha/src/lib.rs");
    scratch.touch("crates/alpha/src/nested/deep.rs");
    scratch.touch("crates/beta/src/lib.rs");
    scratch.touch("src/main.rs");
    scratch.touch("examples/demo.rs");
    scratch.touch("examples/sub/tour.rs");
    // Excluded directory names, wherever they appear.
    scratch.touch("crates/alpha/src/tests/t.rs");
    scratch.touch("crates/alpha/src/benches/b.rs");
    scratch.touch("crates/alpha/src/fixtures/f.rs");
    scratch.touch("crates/alpha/src/target/out.rs");
    scratch.touch("examples/tests/et.rs");
    // The lint crate never lints itself (its strings and fixtures
    // mention every flagged token by design).
    scratch.touch("crates/lint/src/lib.rs");
    // Only src/ is scanned inside a crate; non-.rs files never are.
    scratch.touch("crates/alpha/build.rs");
    scratch.touch("crates/alpha/src/README.md");

    let found = relative(&scratch.0, obs_lint::workspace_sources(&scratch.0));
    assert_eq!(
        found,
        [
            "crates/alpha/src/lib.rs",
            "crates/alpha/src/nested/deep.rs",
            "crates/beta/src/lib.rs",
            "examples/demo.rs",
            "examples/sub/tour.rs",
            "src/main.rs",
        ]
    );
}

#[test]
fn discovery_is_deterministic_and_sorted() {
    let scratch = Scratch::new("order");
    // Created in shuffled order; discovery must sort.
    for rel in [
        "crates/zeta/src/z.rs",
        "crates/alpha/src/m.rs",
        "examples/b.rs",
        "crates/alpha/src/a.rs",
        "src/lib.rs",
        "examples/a.rs",
    ] {
        scratch.touch(rel);
    }
    let first = obs_lint::workspace_sources(&scratch.0);
    let second = obs_lint::workspace_sources(&scratch.0);
    assert_eq!(first, second);
    let mut sorted = first.clone();
    sorted.sort();
    assert_eq!(first, sorted);
}
