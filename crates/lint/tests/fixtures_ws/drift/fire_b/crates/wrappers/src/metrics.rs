// A registration the detector cannot see (non-literal name) is a
// finding of its own; the stale rows in ARCHITECTURE.md and ci.yml
// fire on their surfaces (see expect.txt).

use obs_telemetry::{Counter, Registry};

pub fn install(registry: &Registry, name: &str) -> Counter {
    registry.counter_with(name, &[("source", "demo")]) //~ drift
}

pub fn pages(registry: &Registry) -> Counter {
    registry.counter("crawl_pages_total")
}
