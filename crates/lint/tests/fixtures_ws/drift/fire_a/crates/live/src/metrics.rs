// A name registered in code but absent from *both* documentation
// surfaces fires once per missing surface (same line).

use obs_telemetry::{Counter, Registry};

pub fn install(registry: &Registry) -> (Counter, Counter) {
    (
        registry.counter("live_ok_total"),
        registry.counter("live_demo_total"), //~ drift
    )
}
