// All three surfaces agree: nothing fires.

use obs_telemetry::{Counter, Histogram, Registry};

pub fn install(registry: &Registry) -> (Counter, Histogram) {
    (
        registry.counter("live_a_total"),
        registry.histogram("live_b_ns"),
    )
}
