// A justified non-literal registration (the name is pinned by the
// literal wrapper above it) stays clean under the pragma.

use obs_telemetry::{Histogram, Registry};

pub fn timer(registry: &Registry) -> Histogram {
    registry.histogram("search_demo_ns")
}

pub fn labeled(registry: &Registry, name: &str, shard: &str) -> Histogram {
    // lint:allow(drift): callers pass names already registered via timer()
    registry.histogram_with(name, &[("shard", shard)])
}
