// …reached through a method call on an imported type from the
// serving search crate.

use obs_quality::Panel;

pub fn score(panel: &Panel, id: usize) -> u32 {
    panel.rank_of(id) * 2
}
