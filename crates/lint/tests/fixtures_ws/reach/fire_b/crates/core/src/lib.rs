// A panic!-family macro inside an impl method of a non-serving
// crate (obs_quality)…

pub struct Panel {
    ranks: Vec<u32>,
}

impl Panel {
    pub fn rank_of(&self, id: usize) -> u32 {
        match self.ranks.get(id) {
            Some(r) => *r,
            None => panic!("unknown panel id {id}"), //~ reach
        }
    }
}
