// A panicking helper in a non-serving crate…

pub fn quantile(xs: &[f64], q: f64) -> f64 {
    let i = (q * xs.len() as f64) as usize;
    xs.get(i).copied().unwrap() //~ reach
}
