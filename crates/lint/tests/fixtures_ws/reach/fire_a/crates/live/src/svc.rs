// …called across the crate boundary from the serving path: the
// two-crate chain obs_live::svc::summarize → obs_stats::quantile
// must fire at the unwrap.

use obs_stats::quantile;

pub fn summarize(latencies: &[f64]) -> f64 {
    quantile(latencies, 0.99)
}
