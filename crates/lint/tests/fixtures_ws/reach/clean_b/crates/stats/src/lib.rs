// A panicking helper whose only caller is another non-serving crate
// (the experiments harness): no chain reaches a serving fn, so
// nothing fires.

pub fn variance(xs: &[f64]) -> f64 {
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    xs.first().copied().unwrap() - mean
}
