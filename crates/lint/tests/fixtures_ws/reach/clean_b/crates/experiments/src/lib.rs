use obs_stats::variance;

pub fn report(samples: &[f64]) -> f64 {
    variance(samples)
}
