// A panicking helper that *is* reachable from serving code, but the
// one edge into it carries a justified per-edge pragma — every
// chain runs through that call site, so the site is clean.

pub fn tail(xs: &[f64]) -> f64 {
    xs.get(xs.len() - 1).copied().unwrap()
}
