use obs_stats::tail;

pub fn summarize(latencies: &[f64]) -> f64 {
    // lint:allow(reach): summarize is only invoked with non-empty windows (guarded by the caller)
    tail(latencies)
}
