//! The instrument-drift canary: proves the gate actually trips.
//!
//! For every instrument name on each documentation surface of the
//! *real* repository, delete it from a scratch copy of that surface
//! and assert the drift pass fires mentioning the name. This is the
//! acceptance contract — "deleting any instrument grep from ci.yml
//! or any catalog row from ARCHITECTURE.md makes the linter fire" —
//! kept true against the live surfaces, so a future surface-format
//! change that silently blinds the parser fails here, not in
//! production drift.

use obs_lint::passes::instrument_drift::{parse_catalog, parse_ci_lists};
use obs_lint::{Surfaces, Workspace};
use std::fs;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// The real workspace inputs, read once per call.
fn real_inputs(root: &Path) -> Vec<(PathBuf, String)> {
    obs_lint::workspace_sources(root)
        .into_iter()
        .map(|path| {
            let rel = path.strip_prefix(root).unwrap().to_path_buf();
            let text = fs::read_to_string(&path).unwrap();
            (rel, text)
        })
        .collect()
}

fn real_surfaces(root: &Path) -> (String, String) {
    let architecture = fs::read_to_string(root.join("ARCHITECTURE.md")).unwrap();
    let ci = fs::read_to_string(root.join(".github/workflows/ci.yml")).unwrap();
    (architecture, ci)
}

fn drift_messages(inputs: Vec<(PathBuf, String)>, surfaces: &Surfaces) -> Vec<String> {
    Workspace::analyze(inputs, surfaces)
        .into_iter()
        .filter(|d| d.pass == obs_lint::Pass::InstrumentDrift)
        .map(|d| d.message)
        .collect()
}

#[test]
fn surfaces_are_in_sync_at_head() {
    let root = repo_root();
    let (architecture, ci) = real_surfaces(&root);
    assert!(
        !parse_catalog(&architecture).is_empty(),
        "catalog parser finds no instruments — surface format drifted"
    );
    assert!(
        !parse_ci_lists(&ci).is_empty(),
        "ci-list parser finds no instruments — surface format drifted"
    );
    let surfaces = Surfaces {
        architecture: Some((PathBuf::from("ARCHITECTURE.md"), architecture)),
        ci: Some((PathBuf::from(".github/workflows/ci.yml"), ci)),
    };
    let drift = drift_messages(real_inputs(&root), &surfaces);
    assert!(drift.is_empty(), "drift at HEAD: {drift:#?}");
}

#[test]
fn removing_any_ci_grep_makes_the_linter_fire() {
    let root = repo_root();
    let (architecture, ci) = real_surfaces(&root);
    for name in parse_ci_lists(&ci).keys() {
        // Scratch copy of ci.yml with this one grep token removed.
        let scratch: String = ci.replace(&format!(" {name}"), " ");
        assert!(
            !parse_ci_lists(&scratch).contains_key(name),
            "canary setup failed to remove {name}"
        );
        let surfaces = Surfaces {
            architecture: Some((PathBuf::from("ARCHITECTURE.md"), architecture.clone())),
            ci: Some((PathBuf::from(".github/workflows/ci.yml"), scratch)),
        };
        let drift = drift_messages(real_inputs(&root), &surfaces);
        assert!(
            drift.iter().any(|m| m.contains(&format!("`{name}`"))),
            "removing ci grep {name} did not fire the drift pass: {drift:#?}"
        );
    }
}

#[test]
fn removing_any_catalog_row_makes_the_linter_fire() {
    let root = repo_root();
    let (architecture, ci) = real_surfaces(&root);
    let catalog = parse_catalog(&architecture);
    for (name, &line) in &catalog {
        // Scratch copy of ARCHITECTURE.md with the row holding this
        // name deleted outright.
        let scratch: String = architecture
            .lines()
            .enumerate()
            .filter(|(i, _)| *i as u32 + 1 != line)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        assert!(
            !parse_catalog(&scratch).contains_key(name),
            "canary setup failed to remove {name}"
        );
        let surfaces = Surfaces {
            architecture: Some((PathBuf::from("ARCHITECTURE.md"), scratch)),
            ci: Some((PathBuf::from(".github/workflows/ci.yml"), ci.clone())),
        };
        let drift = drift_messages(real_inputs(&root), &surfaces);
        assert!(
            drift.iter().any(|m| m.contains(&format!("`{name}`"))),
            "deleting the catalog row for {name} did not fire the drift pass: {drift:#?}"
        );
    }
}
