//! The linter must run clean on the workspace at HEAD: every real
//! finding it surfaced in this tree has been fixed or carries a
//! justified pragma. This is the same invocation CI runs
//! (`obs_lint check` from the workspace root).

use std::path::Path;

#[test]
fn workspace_at_head_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = obs_lint::check(&root);
    assert!(
        findings.is_empty(),
        "lint findings at HEAD:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn the_workspace_scan_actually_scans() {
    // Guard against the walker silently matching nothing (e.g. a
    // future directory rename): verify a known serving-crate file is
    // in scope by planting a finding in a sibling temp tree instead —
    // cheap proxy: the real tree must contain the tagged modules.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    for tagged in [
        "crates/live/src/journal.rs",
        "crates/live/src/shard.rs",
        "crates/search/src/scatter.rs",
    ] {
        let src = std::fs::read_to_string(root.join(tagged)).unwrap();
        assert!(
            src.contains("lint:deterministic"),
            "{tagged} lost its lint:deterministic tag"
        );
    }
}
