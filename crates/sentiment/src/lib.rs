//! # obs-sentiment — lexicon-based sentiment analysis
//!
//! Section 6 of the paper builds mashup dashboards for *sentiment
//! analysis* in the Milan tourism domain: "the automatic extraction
//! of sentiment indicators summarizing the opinions contained in user
//! generated contents", with "the overall sentiment assessment […]
//! weighed with respect to the quality of the Web sources", and
//! content categories derived from the Anholt city-brand model.
//!
//! * [`lexicon`] — the embedded opinion lexicon (polarity-bearing
//!   words with intensities, negators, intensifiers);
//! * [`polarity`] — sentence/body scoring with negation and
//!   intensifier handling;
//! * [`aspects`] — the Anholt hexagon and the category→dimension
//!   mapping;
//! * [`buzz`] — buzzword extraction (the paper's "feature extraction
//!   for buzz word identification" analysis service);
//! * [`indicators`] — sentiment indicators over normalized content
//!   items, optionally weighted by source quality.

#![warn(missing_docs)]

pub mod aspects;
pub mod buzz;
pub mod indicators;
pub mod lexicon;
pub mod polarity;

pub use aspects::AnholtDimension;
pub use buzz::extract_buzzwords;
pub use indicators::{sentiment_indicator, SentimentIndicator};
pub use polarity::{score_text, SentimentScore};
