//! Polarity scoring with negation and intensifier handling.

use crate::lexicon::{intensifier_of, is_negator, polarity_of};

/// How many tokens back a negator keeps flipping polarity.
const NEGATION_WINDOW: usize = 3;

/// The sentiment analysis of one text.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SentimentScore {
    /// Overall polarity in `[−1, 1]` (0 when no opinion words hit).
    pub polarity: f64,
    /// Weighted positive mass.
    pub positive: f64,
    /// Weighted negative mass.
    pub negative: f64,
    /// Number of opinion words matched.
    pub hits: usize,
    /// Number of tokens scanned.
    pub tokens: usize,
}

impl SentimentScore {
    /// Whether any opinion word was found.
    pub fn is_opinionated(&self) -> bool {
        self.hits > 0
    }
}

/// Lowercased alphanumeric tokens, order-preserving (negation needs
/// the sequence, so no stopword removal happens here).
fn words(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() {
            current.extend(c.to_lowercase());
        } else if !current.is_empty() {
            out.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Scores a text: each opinion word contributes its intensity,
/// multiplied by the closest preceding intensifier and flipped by a
/// negator within the last `NEGATION_WINDOW` (3) tokens.
pub fn score_text(text: &str) -> SentimentScore {
    let tokens = words(text);
    let mut positive = 0.0;
    let mut negative = 0.0;
    let mut hits = 0usize;

    for (i, tok) in tokens.iter().enumerate() {
        let Some(base) = polarity_of(tok) else {
            continue;
        };
        hits += 1;

        // Closest preceding intensifier (immediately before, or one
        // step back across a negator: "not very good").
        let mut intensity = 1.0;
        if i >= 1 {
            if let Some(m) = intensifier_of(&tokens[i - 1]) {
                intensity = m;
            } else if i >= 2 && is_negator(&tokens[i - 1]) {
                if let Some(m) = intensifier_of(&tokens[i - 2]) {
                    intensity = m;
                }
            }
        }

        // Negation within the window.
        let window_start = i.saturating_sub(NEGATION_WINDOW);
        let negated = tokens[window_start..i].iter().any(|t| is_negator(t));

        let mut value = base * intensity;
        if negated {
            // Flipping also dampens: "not amazing" is weaker criticism
            // than "terrible".
            value = -value * 0.75;
        }
        if value >= 0.0 {
            positive += value;
        } else {
            negative += -value;
        }
    }

    let polarity = if hits == 0 {
        0.0
    } else {
        ((positive - negative) / (positive + negative)).clamp(-1.0, 1.0)
    };
    SentimentScore {
        polarity,
        positive,
        negative,
        hits,
        tokens: tokens.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_positive_and_negative() {
        assert!(score_text("the duomo was amazing").polarity > 0.9);
        assert!(score_text("the hotel was horrible").polarity < -0.9);
        assert_eq!(score_text("the metro runs daily").polarity, 0.0);
    }

    #[test]
    fn negation_flips_polarity() {
        let pos = score_text("the room was clean");
        let neg = score_text("the room was not clean");
        assert!(pos.polarity > 0.0);
        assert!(neg.polarity < 0.0);
    }

    #[test]
    fn negation_is_damped() {
        let direct = score_text("the food was bad");
        let flipped = score_text("the food was not tasty");
        assert!(flipped.polarity < 0.0);
        assert!(
            flipped.negative < direct.negative + 1e-12 || flipped.polarity >= direct.polarity,
            "negated positives should not exceed direct negatives"
        );
    }

    #[test]
    fn negation_window_is_bounded() {
        // Negator too far back (4 tokens) no longer flips.
        let s = score_text("not the best spot overall good");
        // "good" is 5 tokens after "not": stays positive.
        assert!(s.polarity > 0.0, "{s:?}");
    }

    #[test]
    fn intensifiers_scale() {
        let plain = score_text("the staff was friendly");
        let strong = score_text("the staff was very friendly");
        assert!(strong.positive > plain.positive);
        let weak = score_text("the staff was slightly friendly");
        assert!(weak.positive < plain.positive);
    }

    #[test]
    fn intensified_negation() {
        // "not very good": the intensifier is looked through the
        // negator, and the result is negative.
        let s = score_text("the visit was not very good");
        assert!(s.polarity < 0.0, "{s:?}");
    }

    #[test]
    fn mixed_text_balances() {
        let s = score_text("the gallery was amazing but the queue was terrible");
        assert_eq!(s.hits, 2);
        assert!(s.polarity.abs() < 0.3, "{s:?}");
    }

    #[test]
    fn empty_text_is_neutral() {
        let s = score_text("");
        assert_eq!(s.polarity, 0.0);
        assert_eq!(s.hits, 0);
        assert!(!s.is_opinionated());
    }

    #[test]
    fn polarity_is_bounded() {
        let s = score_text("amazing wonderful excellent horrible terrible awful");
        assert!((-1.0..=1.0).contains(&s.polarity));
    }

    #[test]
    fn recovers_generator_polarity_on_average() {
        // End-to-end with the synthetic text generator: strongly
        // positive prompts should yield positive mean polarity and
        // vice versa.
        use obs_synth::{Rng64, TextGenerator};
        let gen = TextGenerator::new();
        let mut rng = Rng64::seeded(31);
        let mut pos_mean = 0.0;
        let mut neg_mean = 0.0;
        let n = 60;
        for _ in 0..n {
            pos_mean += score_text(&gen.body(&mut rng, "restaurants", 0.9, 3)).polarity;
            neg_mean += score_text(&gen.body(&mut rng, "restaurants", -0.9, 3)).polarity;
        }
        pos_mean /= n as f64;
        neg_mean /= n as f64;
        assert!(pos_mean > 0.4, "positive mean {pos_mean}");
        assert!(neg_mean < -0.4, "negative mean {neg_mean}");
    }
}
