//! The Anholt city-brand hexagon and the category mapping.
//!
//! The paper's footnote 2: *"The domain of interest defined for the
//! sentiment analysis, and in particular the categories of relevant
//! contents to be analyzed, derive from the well-known Anholt model
//! that addresses the tourism domain."* Anholt's *Competitive
//! Identity* hexagon rates a city on six dimensions; we map the
//! corpus's content categories onto them so sentiment indicators can
//! be reported per dimension, as the Milan dashboards did.

use serde::{Deserialize, Serialize};

/// The six dimensions of the Anholt city-brand hexagon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AnholtDimension {
    /// International status and standing.
    Presence,
    /// Physical aspects: outdoors, landmarks, beauty.
    Place,
    /// Economic and educational opportunities.
    Potential,
    /// Vibrancy of urban lifestyle.
    Pulse,
    /// Warmth and openness of the inhabitants.
    People,
    /// Basic qualities: accommodation, transport, services.
    Prerequisites,
}

impl AnholtDimension {
    /// All six, hexagon order.
    pub const ALL: [AnholtDimension; 6] = [
        AnholtDimension::Presence,
        AnholtDimension::Place,
        AnholtDimension::Potential,
        AnholtDimension::Pulse,
        AnholtDimension::People,
        AnholtDimension::Prerequisites,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            AnholtDimension::Presence => "Presence",
            AnholtDimension::Place => "Place",
            AnholtDimension::Potential => "Potential",
            AnholtDimension::Pulse => "Pulse",
            AnholtDimension::People => "People",
            AnholtDimension::Prerequisites => "Prerequisites",
        }
    }

    /// Maps a content-category name to its Anholt dimension. Unknown
    /// categories land on `Presence` (general reputation talk).
    pub fn of_category(category: &str) -> AnholtDimension {
        match category {
            "attractions" | "museums" => AnholtDimension::Place,
            "events" | "nightlife" | "music" | "cinema" | "fashion" => AnholtDimension::Pulse,
            "technology" | "finance" | "education" => AnholtDimension::Potential,
            "sports" | "food-markets" => AnholtDimension::People,
            "hotels" | "transport" | "restaurants" | "health" | "shopping" => {
                AnholtDimension::Prerequisites
            }
            _ => AnholtDimension::Presence,
        }
    }
}

impl std::fmt::Display for AnholtDimension {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hexagon_has_six_distinct_dimensions() {
        let set: std::collections::HashSet<_> = AnholtDimension::ALL.iter().collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn tourism_categories_map_sensibly() {
        assert_eq!(
            AnholtDimension::of_category("attractions"),
            AnholtDimension::Place
        );
        assert_eq!(
            AnholtDimension::of_category("hotels"),
            AnholtDimension::Prerequisites
        );
        assert_eq!(
            AnholtDimension::of_category("nightlife"),
            AnholtDimension::Pulse
        );
        assert_eq!(
            AnholtDimension::of_category("education"),
            AnholtDimension::Potential
        );
        assert_eq!(
            AnholtDimension::of_category("unknown-topic"),
            AnholtDimension::Presence
        );
    }

    #[test]
    fn every_generator_category_is_mapped() {
        // No category of the synthetic catalog may fall through to a
        // *panic*; falling back to Presence is allowed but the six
        // tourism categories must map to concrete dimensions.
        for c in obs_synth::text::CATEGORIES.iter().take(6) {
            let d = AnholtDimension::of_category(c.name);
            assert_ne!(
                d,
                AnholtDimension::Presence,
                "{} should have a dedicated dimension",
                c.name
            );
        }
    }
}
