//! Sentiment indicators over normalized content items.
//!
//! Section 6: *"the overall sentiment assessment is weighed with
//! respect to the quality of the Web sources"*. An indicator
//! aggregates the polarity of a stream of [`ContentItem`]s —
//! optionally weighting each item by its source's quality score — and
//! breaks the result down by Anholt dimension.

use crate::aspects::AnholtDimension;
use crate::polarity::score_text;
use obs_model::{CategoryBook, SourceId};
use obs_wrappers::ContentItem;
use std::collections::HashMap;

/// An aggregated sentiment indicator.
#[derive(Debug, Clone, PartialEq)]
pub struct SentimentIndicator {
    /// Items analyzed (only opinionated items contribute polarity).
    pub volume: usize,
    /// Items carrying at least one opinion word.
    pub opinionated: usize,
    /// Unweighted mean polarity of opinionated items, `[−1, 1]`.
    pub mean_polarity: f64,
    /// Quality-weighted mean polarity, `[−1, 1]` (equals
    /// `mean_polarity` when all weights are 1).
    pub weighted_polarity: f64,
    /// Share of opinionated items with positive polarity.
    pub positive_share: f64,
    /// Breakdown per Anholt dimension: (dimension, weighted mean
    /// polarity, opinionated volume).
    pub by_dimension: Vec<(AnholtDimension, f64, usize)>,
}

/// Computes a sentiment indicator over `items`.
///
/// `quality_of` supplies the per-source weight (the paper uses the
/// overall source quality score); return 1.0 for unweighted analysis.
/// `categories` resolves category ids to names for the Anholt
/// mapping.
pub fn sentiment_indicator(
    items: &[ContentItem],
    categories: &CategoryBook,
    quality_of: impl Fn(SourceId) -> f64,
) -> SentimentIndicator {
    let mut sum = 0.0;
    let mut wsum = 0.0;
    let mut weight_total = 0.0;
    let mut opinionated = 0usize;
    let mut positive = 0usize;
    let mut dim_acc: HashMap<AnholtDimension, (f64, f64, usize)> = HashMap::new();

    for item in items {
        let score = score_text(&item.text);
        if !score.is_opinionated() {
            continue;
        }
        opinionated += 1;
        if score.polarity > 0.0 {
            positive += 1;
        }
        let w = quality_of(item.source).max(0.0);
        sum += score.polarity;
        wsum += score.polarity * w;
        weight_total += w;

        let dim = categories
            .name(item.category)
            .map(AnholtDimension::of_category)
            .unwrap_or(AnholtDimension::Presence);
        let slot = dim_acc.entry(dim).or_insert((0.0, 0.0, 0));
        slot.0 += score.polarity * w;
        slot.1 += w;
        slot.2 += 1;
    }

    let mean_polarity = if opinionated == 0 {
        0.0
    } else {
        sum / opinionated as f64
    };
    let weighted_polarity = if weight_total > 0.0 {
        wsum / weight_total
    } else {
        0.0
    };
    let positive_share = if opinionated == 0 {
        0.0
    } else {
        positive as f64 / opinionated as f64
    };

    let mut by_dimension: Vec<(AnholtDimension, f64, usize)> = AnholtDimension::ALL
        .iter()
        .filter_map(|&d| {
            dim_acc.get(&d).map(|(ws, wt, n)| {
                let mean = if *wt > 0.0 { ws / wt } else { 0.0 };
                (d, mean, *n)
            })
        })
        .collect();
    by_dimension.sort_by_key(|(d, _, _)| *d as usize);

    SentimentIndicator {
        volume: items.len(),
        opinionated,
        mean_polarity,
        weighted_polarity,
        positive_share,
        by_dimension,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs_model::{CategoryId, ContentRef, DiscussionId, PostId, Timestamp, UserId};
    use obs_wrappers::{InteractionCounts, ItemKind};

    fn item(source: u32, category: CategoryId, text: &str) -> ContentItem {
        ContentItem {
            source: SourceId::new(source),
            discussion: DiscussionId::new(0),
            content: ContentRef::Post(PostId::new(0)),
            kind: ItemKind::Post,
            author: UserId::new(0),
            published: Timestamp::EPOCH,
            category,
            text: text.to_owned(),
            tags: vec![],
            geo: None,
            interactions: InteractionCounts::default(),
        }
    }

    fn book() -> CategoryBook {
        let mut b = CategoryBook::new();
        b.intern("attractions"); // id 0 → Place
        b.intern("hotels"); // id 1 → Prerequisites
        b
    }

    #[test]
    fn unweighted_indicator_averages_polarity() {
        let book = book();
        let items = vec![
            item(0, CategoryId::new(0), "the duomo was amazing"),
            item(0, CategoryId::new(0), "the queue was terrible"),
            item(0, CategoryId::new(0), "neutral description here"),
        ];
        let ind = sentiment_indicator(&items, &book, |_| 1.0);
        assert_eq!(ind.volume, 3);
        assert_eq!(ind.opinionated, 2);
        assert!(ind.mean_polarity.abs() < 0.1);
        assert!((ind.positive_share - 0.5).abs() < 1e-12);
        assert!((ind.mean_polarity - ind.weighted_polarity).abs() < 1e-12);
    }

    #[test]
    fn quality_weighting_shifts_toward_trusted_sources() {
        let book = book();
        let items = vec![
            item(0, CategoryId::new(0), "the duomo was amazing"), // high-quality source
            item(1, CategoryId::new(0), "the duomo was horrible"), // low-quality source
        ];
        let ind = sentiment_indicator(&items, &book, |s| if s.raw() == 0 { 0.9 } else { 0.1 });
        assert!(ind.weighted_polarity > 0.5, "{ind:?}");
        assert!(ind.mean_polarity.abs() < 0.1);
    }

    #[test]
    fn dimension_breakdown_separates_categories() {
        let book = book();
        let items = vec![
            item(0, CategoryId::new(0), "the landmark was stunning"),
            item(0, CategoryId::new(1), "the room was dirty"),
        ];
        let ind = sentiment_indicator(&items, &book, |_| 1.0);
        let place = ind
            .by_dimension
            .iter()
            .find(|(d, _, _)| *d == AnholtDimension::Place)
            .unwrap();
        let prereq = ind
            .by_dimension
            .iter()
            .find(|(d, _, _)| *d == AnholtDimension::Prerequisites)
            .unwrap();
        assert!(place.1 > 0.0);
        assert!(prereq.1 < 0.0);
        assert_eq!(place.2, 1);
    }

    #[test]
    fn empty_stream_is_neutral() {
        let book = book();
        let ind = sentiment_indicator(&[], &book, |_| 1.0);
        assert_eq!(ind.volume, 0);
        assert_eq!(ind.mean_polarity, 0.0);
        assert_eq!(ind.weighted_polarity, 0.0);
        assert!(ind.by_dimension.is_empty());
    }

    #[test]
    fn zero_weights_do_not_divide_by_zero() {
        let book = book();
        let items = vec![item(0, CategoryId::new(0), "the duomo was amazing")];
        let ind = sentiment_indicator(&items, &book, |_| 0.0);
        assert_eq!(ind.weighted_polarity, 0.0);
        assert!(ind.mean_polarity > 0.0);
    }
}
