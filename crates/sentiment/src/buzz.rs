//! Buzzword extraction.
//!
//! Section 5 lists "content-based analysis (e.g., feature extraction
//! for buzz word identification)" among the analysis services. We
//! implement the classic contrastive approach: terms whose frequency
//! in the *focus* texts is disproportionate against a *background*
//! set, scored by smoothed log-odds.

use std::collections::HashMap;

/// One extracted buzzword.
#[derive(Debug, Clone, PartialEq)]
pub struct Buzzword {
    /// The term.
    pub term: String,
    /// Smoothed log-odds of focus vs background frequency
    /// (higher = more distinctive).
    pub score: f64,
    /// Occurrences in the focus texts.
    pub focus_count: usize,
}

fn term_counts<'a>(texts: impl Iterator<Item = &'a str>) -> (HashMap<String, usize>, usize) {
    let mut counts: HashMap<String, usize> = HashMap::new();
    let mut total = 0usize;
    for text in texts {
        let mut current = String::new();
        let flush =
            |current: &mut String, counts: &mut HashMap<String, usize>, total: &mut usize| {
                if current.len() >= 3 {
                    *counts.entry(std::mem::take(current)).or_insert(0) += 1;
                    *total += 1;
                } else {
                    current.clear();
                }
            };
        for c in text.chars() {
            if c.is_alphanumeric() {
                current.extend(c.to_lowercase());
            } else {
                flush(&mut current, &mut counts, &mut total);
            }
        }
        flush(&mut current, &mut counts, &mut total);
    }
    (counts, total)
}

/// Extracts the `top_n` most distinctive terms of `focus` relative to
/// `background`. Terms must appear at least `min_count` times in the
/// focus set.
pub fn extract_buzzwords<'a>(
    focus: impl Iterator<Item = &'a str>,
    background: impl Iterator<Item = &'a str>,
    top_n: usize,
    min_count: usize,
) -> Vec<Buzzword> {
    let (focus_counts, focus_total) = term_counts(focus);
    let (bg_counts, bg_total) = term_counts(background);
    if focus_total == 0 {
        return Vec::new();
    }
    let mut words: Vec<Buzzword> = focus_counts
        .into_iter()
        .filter(|(_, c)| *c >= min_count)
        .map(|(term, c)| {
            let f_rate = (c as f64 + 0.5) / (focus_total as f64 + 1.0);
            let b = bg_counts.get(&term).copied().unwrap_or(0);
            let b_rate = (b as f64 + 0.5) / (bg_total as f64 + 1.0);
            Buzzword {
                score: (f_rate / b_rate).ln(),
                focus_count: c,
                term,
            }
        })
        .collect();
    words.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.term.cmp(&b.term)));
    words.truncate(top_n);
    words
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinctive_terms_surface() {
        let focus = [
            "the biennale opening drew crowds",
            "biennale pavilions were stunning",
            "everyone talks about the biennale",
        ];
        let background = [
            "the metro was crowded today",
            "a nice espresso near the station",
            "the match ended in a draw",
        ];
        let buzz = extract_buzzwords(focus.iter().copied(), background.iter().copied(), 5, 2);
        assert!(!buzz.is_empty());
        assert_eq!(buzz[0].term, "biennale");
        assert_eq!(buzz[0].focus_count, 3);
        assert!(buzz[0].score > 0.0);
    }

    #[test]
    fn common_terms_do_not_dominate() {
        let focus = ["the duomo the duomo the rooftop"];
        let background = ["the the the the castle the the"];
        let buzz = extract_buzzwords(focus.iter().copied(), background.iter().copied(), 3, 1);
        // "the" occurs everywhere → low score; "duomo" wins.
        assert_eq!(buzz[0].term, "duomo");
        let the_score = buzz.iter().find(|b| b.term == "the").map(|b| b.score);
        if let Some(s) = the_score {
            assert!(s < buzz[0].score);
        }
    }

    #[test]
    fn min_count_filters_noise() {
        let focus = ["solitary word appears once", "common common"];
        let background = ["unrelated text"];
        let buzz = extract_buzzwords(focus.iter().copied(), background.iter().copied(), 10, 2);
        assert!(buzz.iter().all(|b| b.focus_count >= 2));
        assert!(buzz.iter().any(|b| b.term == "common"));
    }

    #[test]
    fn empty_focus_yields_nothing() {
        let buzz = extract_buzzwords(std::iter::empty(), ["background"].iter().copied(), 5, 1);
        assert!(buzz.is_empty());
    }

    #[test]
    fn short_tokens_are_dropped() {
        let focus = ["ab cd efg efg efg"];
        let buzz = extract_buzzwords(focus.iter().copied(), std::iter::empty(), 5, 1);
        assert!(buzz.iter().all(|b| b.term.len() >= 3));
    }
}
