//! The embedded opinion lexicon.
//!
//! Deliberately aligned with the vocabulary the synthetic text
//! generator emits (plus common variants), so the analysis services
//! have real signal to extract — the same way the paper's services
//! were tuned on the tourism domain they analyzed.

/// Positive words with intensity in `(0, 1]`.
pub const POSITIVE: &[(&str, f64)] = &[
    ("amazing", 1.0),
    ("wonderful", 0.9),
    ("excellent", 0.9),
    ("stunning", 0.9),
    ("fantastic", 0.9),
    ("delightful", 0.8),
    ("superb", 0.8),
    ("great", 0.7),
    ("beautiful", 0.7),
    ("friendly", 0.6),
    ("lovely", 0.6),
    ("charming", 0.6),
    ("tasty", 0.6),
    ("delicious", 0.7),
    ("clean", 0.5),
    ("helpful", 0.5),
    ("comfortable", 0.5),
    ("good", 0.4),
    ("pleasant", 0.4),
    ("nice", 0.3),
    ("decent", 0.2),
    ("fine", 0.2),
];

/// Negative words with intensity in `(0, 1]`.
pub const NEGATIVE: &[(&str, f64)] = &[
    ("horrible", 1.0),
    ("terrible", 1.0),
    ("awful", 0.9),
    ("disgusting", 0.9),
    ("dreadful", 0.9),
    ("rude", 0.7),
    ("dirty", 0.7),
    ("filthy", 0.8),
    ("overpriced", 0.6),
    ("disappointing", 0.6),
    ("crowded", 0.5),
    ("noisy", 0.5),
    ("shabby", 0.5),
    ("slow", 0.4),
    ("bland", 0.4),
    ("bad", 0.4),
    ("mediocre", 0.3),
    ("confusing", 0.3),
    ("poor", 0.4),
    ("broken", 0.5),
];

/// Negation markers: flip the polarity of the next opinion word
/// within the negation window.
pub const NEGATORS: &[&str] = &["not", "never", "no", "hardly", "barely", "isnt", "wasnt"];

/// Intensity modifiers: multiply the intensity of the immediately
/// following opinion word.
pub const INTENSIFIERS: &[(&str, f64)] = &[
    ("very", 1.5),
    ("really", 1.4),
    ("absolutely", 1.8),
    ("extremely", 1.8),
    ("quite", 1.2),
    ("somewhat", 0.6),
    ("slightly", 0.5),
    ("barely", 0.4),
];

/// Polarity of a single token: `Some(intensity)` positive,
/// `Some(-intensity)` negative, `None` neutral.
pub fn polarity_of(token: &str) -> Option<f64> {
    if let Some((_, w)) = POSITIVE.iter().find(|(t, _)| *t == token) {
        return Some(*w);
    }
    if let Some((_, w)) = NEGATIVE.iter().find(|(t, _)| *t == token) {
        return Some(-*w);
    }
    None
}

/// Whether a token negates.
pub fn is_negator(token: &str) -> bool {
    NEGATORS.contains(&token)
}

/// Intensity multiplier of a token, when it is an intensifier.
pub fn intensifier_of(token: &str) -> Option<f64> {
    INTENSIFIERS
        .iter()
        .find(|(t, _)| *t == token)
        .map(|(_, m)| *m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicons_do_not_overlap() {
        for (w, _) in NEGATIVE {
            assert!(
                POSITIVE.iter().all(|(p, _)| p != w),
                "{w} appears in both lexicons"
            );
        }
    }

    #[test]
    fn intensities_are_in_unit_interval() {
        for (w, i) in POSITIVE.iter().chain(NEGATIVE) {
            assert!((0.0..=1.0).contains(i), "{w}: {i}");
        }
    }

    #[test]
    fn polarity_lookup() {
        assert_eq!(polarity_of("amazing"), Some(1.0));
        assert_eq!(polarity_of("terrible"), Some(-1.0));
        assert_eq!(polarity_of("table"), None);
    }

    #[test]
    fn negators_and_intensifiers() {
        assert!(is_negator("not"));
        assert!(!is_negator("very"));
        assert_eq!(intensifier_of("very"), Some(1.5));
        assert_eq!(intensifier_of("duomo"), None);
    }

    #[test]
    fn generator_vocabulary_is_covered() {
        // The synthetic text generator's opinion words must all be
        // recognized, otherwise sentiment recovery drifts.
        for (w, _) in obs_synth::text::POSITIVE_WORDS {
            assert!(polarity_of(w).is_some_and(|p| p > 0.0), "{w} missing");
        }
        for (w, _) in obs_synth::text::NEGATIVE_WORDS {
            assert!(polarity_of(w).is_some_and(|p| p < 0.0), "{w} missing");
        }
        for n in obs_synth::text::NEGATORS {
            assert!(is_negator(n), "{n} missing");
        }
        for (i, _) in obs_synth::text::INTENSIFIERS {
            assert!(intensifier_of(i).is_some(), "{i} missing");
        }
    }
}
