//! The evaluation context for quality measures.
//!
//! Bundles everything a measure may read: the crawled corpus, the
//! three analytics substrates, the Domain of Interest and the
//! evaluation instant. Also pre-computes the cross-source facts some
//! measures need (the largest blog/forum, for the "compared to
//! largest Web blog/forum" completeness measure).

use obs_analytics::{AlexaPanel, FeedRegistry, LinkGraph};
use obs_model::{CategoryId, Corpus, DiscussionId, DomainOfInterest, SourceId, Timestamp};

/// Everything a source- or contributor-measure evaluation needs.
#[derive(Debug, Clone)]
pub struct SourceContext<'a> {
    /// The crawled corpus.
    pub corpus: &'a Corpus,
    /// Traffic panel (Alexa substitute).
    pub panel: &'a AlexaPanel,
    /// Inbound-link graph.
    pub links: &'a LinkGraph,
    /// Feed-subscription registry (Feedburner substitute).
    pub feeds: &'a FeedRegistry,
    /// The Domain of Interest scoping domain-dependent measures.
    pub di: &'a DomainOfInterest,
    /// Evaluation instant (ages and rates are measured up to here).
    pub now: Timestamp,
    /// Open-discussion count of the largest blog/forum in the corpus
    /// (denominator of the completeness/traffic measure).
    largest_blog_forum_open: usize,
}

impl<'a> SourceContext<'a> {
    /// Builds a context, pre-computing cross-source aggregates.
    pub fn new(
        corpus: &'a Corpus,
        panel: &'a AlexaPanel,
        links: &'a LinkGraph,
        feeds: &'a FeedRegistry,
        di: &'a DomainOfInterest,
        now: Timestamp,
    ) -> Self {
        let largest = corpus
            .sources()
            .iter()
            .filter(|s| s.kind.in_search_study())
            .map(|s| {
                corpus
                    .discussions_of_source(s.id)
                    .iter()
                    .filter(|&&d| !corpus.discussion(d).map(|x| x.closed).unwrap_or(true))
                    .count()
            })
            .max()
            .unwrap_or(0);
        SourceContext {
            corpus,
            panel,
            links,
            feeds,
            di,
            now,
            largest_blog_forum_open: largest,
        }
    }

    /// Open-discussion count of the corpus's largest blog/forum.
    pub fn largest_blog_forum_open(&self) -> usize {
        self.largest_blog_forum_open.max(1)
    }

    /// Whether a discussion is open (not closed by moderators).
    pub fn is_open(&self, d: DiscussionId) -> bool {
        self.corpus
            .discussion(d)
            .map(|x| !x.closed)
            .unwrap_or(false)
    }

    /// Whether a discussion's category is covered by the DI.
    pub fn in_di_categories(&self, category: CategoryId) -> bool {
        self.di.covers_category(category)
    }

    /// The observation span in days (from source founding — or the
    /// epoch — to now), floored at one day.
    pub fn observed_days(&self, source: SourceId) -> f64 {
        let founded = self
            .corpus
            .source(source)
            .map(|s| s.founded)
            .unwrap_or(Timestamp::EPOCH);
        (self.now.since(founded).days_f64()).max(1.0)
    }

    /// Age of the evaluation window in days (for per-day rates over
    /// the DI window), floored at one day.
    pub fn di_window_days(&self) -> f64 {
        let end = self.di.window.end.min(self.now);
        let span = end.since(self.di.window.start);
        span.days_f64().max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs_synth::{World, WorldConfig};

    struct Fixture {
        world: World,
        panel: AlexaPanel,
        links: LinkGraph,
        feeds: FeedRegistry,
        di: DomainOfInterest,
    }

    fn fixture() -> Fixture {
        let world = World::generate(WorldConfig::small(404));
        let panel = AlexaPanel::simulate(&world, 1);
        let links = LinkGraph::simulate(&world, 2);
        let feeds = FeedRegistry::simulate(&world, 3);
        let di = world.tourism_di();
        Fixture {
            world,
            panel,
            links,
            feeds,
            di,
        }
    }

    #[test]
    fn largest_blog_forum_is_positive_and_maximal() {
        let f = fixture();
        let ctx = SourceContext::new(
            &f.world.corpus,
            &f.panel,
            &f.links,
            &f.feeds,
            &f.di,
            f.world.now,
        );
        let max = ctx.largest_blog_forum_open();
        assert!(max >= 1);
        for s in f
            .world
            .corpus
            .sources()
            .iter()
            .filter(|s| s.kind.in_search_study())
        {
            let open = f
                .world
                .corpus
                .discussions_of_source(s.id)
                .iter()
                .filter(|&&d| ctx.is_open(d))
                .count();
            assert!(open <= max);
        }
    }

    #[test]
    fn observed_days_is_floored() {
        let f = fixture();
        let ctx = SourceContext::new(
            &f.world.corpus,
            &f.panel,
            &f.links,
            &f.feeds,
            &f.di,
            f.world.now,
        );
        for s in f.world.corpus.sources() {
            assert!(ctx.observed_days(s.id) >= 1.0);
        }
        assert!(ctx.di_window_days() >= 1.0);
    }
}
