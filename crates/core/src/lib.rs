//! # obs-quality — the paper's quality model
//!
//! This crate is the reproduction's core contribution: the quality
//! model of *Informing Observers* (Section 3), its Table 1 catalog of
//! **source** measures and Table 2 catalog of **contributor**
//! measures, benchmark-based normalization and weighted aggregation
//! into quality scores, quality-driven ranking, and the
//! absolute-×-relative influencer analysis of Section 3.2.
//!
//! Layout:
//!
//! * [`taxonomy`] — dimensions (Accuracy, Completeness, Time,
//!   Interpretability, Authority, Dependability), attributes
//!   (Relevance, Breadth of Contributions, Traffic/Activity,
//!   Liveliness), measure provenance and orientation;
//! * [`context`] — the evaluation context bundling the corpus, the
//!   analytics panels and the Domain of Interest;
//! * [`source_measures`] — every Table 1 cell as a first-class
//!   measure;
//! * [`contributor_measures`] — every Table 2 cell;
//! * [`score`] — benchmarks, weights and the weighted-average
//!   quality scores of Section 3.1;
//! * [`ranking`] — quality-based source ranking and the positional
//!   comparison statistics of Section 4.1;
//! * [`influence`] — influencer detection and spam screening from
//!   absolute + relative interaction volumes (Section 3.2).

#![warn(missing_docs)]

pub mod context;
pub mod contributor_measures;
pub mod influence;
pub mod ranking;
pub mod score;
pub mod source_measures;
pub mod taxonomy;

pub use context::SourceContext;
pub use contributor_measures::{contributor_catalog, ContributorMeasure};
pub use influence::{influence_profiles, influencers, likely_spammers, InfluenceProfile};
pub use ranking::{rank_sources, RankedSource, RankingComparison};
pub use score::{assess_contributor, assess_source, Benchmarks, QualityScore, Weights};
pub use source_measures::{source_catalog, SourceMeasure};
pub use taxonomy::{Attribute, MeasureSpec, Orientation, Provenance, QualityDimension};
