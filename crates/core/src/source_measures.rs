//! The Table 1 catalog: every source-quality measure of the paper.
//!
//! Each cell of Table 1 becomes a [`SourceMeasure`]: a static
//! [`MeasureSpec`] plus an evaluation function over the
//! [`SourceContext`]. Domain-dependent measures (italics in the
//! paper) are scoped by the DI's categories and time window;
//! domain-independent ones read the full history or the analytics
//! panels. The ten measures flagged `in_componentization` are exactly
//! the domain-independent set the paper feeds into the Table 3
//! factor analysis.

use crate::context::SourceContext;
use crate::taxonomy::{Attribute, MeasureSpec, Orientation, Provenance, QualityDimension};
use obs_model::{CategoryId, SourceId};
use std::collections::{HashMap, HashSet};

/// A Table 1 measure: spec + evaluation function.
pub struct SourceMeasure {
    /// Static description.
    pub spec: MeasureSpec,
    /// Computes the raw value for one source.
    pub eval: fn(&SourceContext<'_>, SourceId) -> f64,
}

impl std::fmt::Debug for SourceMeasure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SourceMeasure")
            .field("spec", &self.spec)
            .finish()
    }
}

/// The full Table 1 catalog, row-major (dimension, then attribute).
pub fn source_catalog() -> Vec<SourceMeasure> {
    use Attribute as A;
    use Orientation::{HigherIsBetter, LowerIsBetter};
    use Provenance as P;
    use QualityDimension as D;

    vec![
        SourceMeasure {
            spec: MeasureSpec {
                id: "src.accuracy.relevance",
                name: "open discussions covering the DI categories over total open discussions",
                dimension: D::Accuracy,
                attribute: A::Relevance,
                domain_dependent: true,
                provenance: P::Crawling,
                orientation: HigherIsBetter,
                in_componentization: false,
            },
            eval: accuracy_relevance,
        },
        SourceMeasure {
            spec: MeasureSpec {
                id: "src.accuracy.breadth",
                name: "average number of comments per content category",
                dimension: D::Accuracy,
                attribute: A::BreadthOfContributions,
                domain_dependent: true,
                provenance: P::Crawling,
                orientation: HigherIsBetter,
                in_componentization: false,
            },
            eval: accuracy_breadth,
        },
        SourceMeasure {
            spec: MeasureSpec {
                id: "src.completeness.relevance",
                name: "centrality: number of covered content categories",
                dimension: D::Completeness,
                attribute: A::Relevance,
                domain_dependent: true,
                provenance: P::Crawling,
                orientation: HigherIsBetter,
                in_componentization: false,
            },
            eval: completeness_relevance,
        },
        SourceMeasure {
            spec: MeasureSpec {
                id: "src.completeness.breadth",
                name: "number of open discussions per content category",
                dimension: D::Completeness,
                attribute: A::BreadthOfContributions,
                domain_dependent: true,
                provenance: P::Crawling,
                orientation: HigherIsBetter,
                in_componentization: false,
            },
            eval: completeness_breadth,
        },
        SourceMeasure {
            spec: MeasureSpec {
                id: "src.completeness.traffic",
                name: "number of open discussions compared to largest Web blog/forum",
                dimension: D::Completeness,
                attribute: A::Traffic,
                domain_dependent: false,
                provenance: P::Crawling,
                orientation: HigherIsBetter,
                in_componentization: true,
            },
            eval: completeness_traffic,
        },
        SourceMeasure {
            spec: MeasureSpec {
                id: "src.completeness.liveliness",
                name: "number of comments per user",
                dimension: D::Completeness,
                attribute: A::Liveliness,
                domain_dependent: false,
                provenance: P::Crawling,
                orientation: HigherIsBetter,
                in_componentization: false,
            },
            eval: completeness_liveliness,
        },
        SourceMeasure {
            spec: MeasureSpec {
                id: "src.time.breadth",
                name: "age of discussion thread",
                dimension: D::Time,
                attribute: A::BreadthOfContributions,
                domain_dependent: false,
                provenance: P::Crawling,
                orientation: HigherIsBetter,
                in_componentization: false,
            },
            eval: time_breadth,
        },
        SourceMeasure {
            spec: MeasureSpec {
                id: "src.time.traffic",
                name: "traffic rank",
                dimension: D::Time,
                attribute: A::Traffic,
                domain_dependent: false,
                provenance: P::Alexa,
                orientation: LowerIsBetter,
                in_componentization: true,
            },
            eval: time_traffic_rank,
        },
        SourceMeasure {
            spec: MeasureSpec {
                id: "src.time.liveliness",
                name: "average number of new opened discussions per day",
                dimension: D::Time,
                attribute: A::Liveliness,
                domain_dependent: false,
                provenance: P::Alexa,
                orientation: HigherIsBetter,
                in_componentization: true,
            },
            eval: time_liveliness,
        },
        SourceMeasure {
            spec: MeasureSpec {
                id: "src.interpretability.breadth",
                name: "average number of distinct tags per post",
                dimension: D::Interpretability,
                attribute: A::BreadthOfContributions,
                domain_dependent: false,
                provenance: P::Crawling,
                orientation: HigherIsBetter,
                in_componentization: false,
            },
            eval: interpretability_breadth,
        },
        SourceMeasure {
            spec: MeasureSpec {
                id: "src.authority.relevance.links",
                name: "number of inbound links",
                dimension: D::Authority,
                attribute: A::Relevance,
                domain_dependent: false,
                provenance: P::Alexa,
                orientation: HigherIsBetter,
                in_componentization: true,
            },
            eval: authority_inbound_links,
        },
        SourceMeasure {
            spec: MeasureSpec {
                id: "src.authority.relevance.feeds",
                name: "number of feed subscriptions",
                dimension: D::Authority,
                attribute: A::Relevance,
                domain_dependent: false,
                provenance: P::Feedburner,
                orientation: HigherIsBetter,
                in_componentization: false,
            },
            eval: authority_feed_subscriptions,
        },
        SourceMeasure {
            spec: MeasureSpec {
                id: "src.authority.traffic.visitors",
                name: "daily visitors",
                dimension: D::Authority,
                attribute: A::Traffic,
                domain_dependent: false,
                provenance: P::Alexa,
                orientation: HigherIsBetter,
                in_componentization: true,
            },
            eval: authority_daily_visitors,
        },
        SourceMeasure {
            spec: MeasureSpec {
                id: "src.authority.traffic.pageviews",
                name: "daily page views",
                dimension: D::Authority,
                attribute: A::Traffic,
                domain_dependent: false,
                provenance: P::Alexa,
                orientation: HigherIsBetter,
                in_componentization: true,
            },
            eval: authority_daily_page_views,
        },
        SourceMeasure {
            spec: MeasureSpec {
                id: "src.authority.traffic.timeonsite",
                name: "average time spent on site",
                dimension: D::Authority,
                attribute: A::Traffic,
                domain_dependent: false,
                provenance: P::Alexa,
                orientation: HigherIsBetter,
                in_componentization: true,
            },
            eval: authority_time_on_site,
        },
        SourceMeasure {
            spec: MeasureSpec {
                id: "src.authority.liveliness",
                name: "number of daily page views per daily visitor",
                dimension: D::Authority,
                attribute: A::Liveliness,
                domain_dependent: false,
                provenance: P::Alexa,
                orientation: HigherIsBetter,
                in_componentization: false,
            },
            eval: authority_views_per_visitor,
        },
        SourceMeasure {
            spec: MeasureSpec {
                id: "src.dependability.relevance",
                name: "bounce rate",
                dimension: D::Dependability,
                attribute: A::Relevance,
                domain_dependent: false,
                provenance: P::Alexa,
                orientation: LowerIsBetter,
                in_componentization: true,
            },
            eval: dependability_bounce_rate,
        },
        SourceMeasure {
            spec: MeasureSpec {
                id: "src.dependability.breadth",
                name: "number of comments per discussion",
                dimension: D::Dependability,
                attribute: A::BreadthOfContributions,
                domain_dependent: false,
                provenance: P::Crawling,
                orientation: HigherIsBetter,
                in_componentization: true,
            },
            eval: dependability_breadth,
        },
        SourceMeasure {
            spec: MeasureSpec {
                id: "src.dependability.liveliness",
                name: "average number of comments per discussion per day",
                dimension: D::Dependability,
                attribute: A::Liveliness,
                domain_dependent: false,
                provenance: P::Crawling,
                orientation: HigherIsBetter,
                in_componentization: true,
            },
            eval: dependability_liveliness,
        },
    ]
}

/// Looks a measure up by id.
pub fn source_measure(id: &str) -> Option<SourceMeasure> {
    source_catalog().into_iter().find(|m| m.spec.id == id)
}

// ------------------------------------------------------------------
// Evaluation functions. Shared raw ingredients first.
// ------------------------------------------------------------------

/// Open discussions of a source, optionally restricted to the DI's
/// categories and time window.
fn open_discussions(
    ctx: &SourceContext<'_>,
    source: SourceId,
    di_scoped: bool,
) -> Vec<obs_model::DiscussionId> {
    ctx.corpus
        .discussions_of_source(source)
        .iter()
        .copied()
        .filter(|&d| {
            let disc = match ctx.corpus.discussion(d) {
                Ok(x) => x,
                Err(_) => return false,
            };
            if disc.closed {
                return false;
            }
            if di_scoped {
                ctx.di.covers_category(disc.category) && ctx.di.covers_time(disc.opened_at)
            } else {
                true
            }
        })
        .collect()
}

/// Comment count per category for a source (DI window applied when
/// `di_scoped`).
fn comments_by_category(
    ctx: &SourceContext<'_>,
    source: SourceId,
    di_scoped: bool,
) -> HashMap<CategoryId, usize> {
    let mut map = HashMap::new();
    for &d in ctx.corpus.discussions_of_source(source) {
        let disc = match ctx.corpus.discussion(d) {
            Ok(x) => x,
            Err(_) => continue,
        };
        if di_scoped && !ctx.di.covers_category(disc.category) {
            continue;
        }
        let count = ctx
            .corpus
            .comments_of_discussion(d)
            .iter()
            .filter(|&&c| {
                !di_scoped
                    || ctx
                        .corpus
                        .comment(c)
                        .map(|x| ctx.di.covers_time(x.published))
                        .unwrap_or(false)
            })
            .count();
        *map.entry(disc.category).or_insert(0) += count;
    }
    map
}

fn accuracy_relevance(ctx: &SourceContext<'_>, source: SourceId) -> f64 {
    let open_total = open_discussions(ctx, source, false).len();
    if open_total == 0 {
        return 0.0;
    }
    let covering = ctx
        .corpus
        .discussions_of_source(source)
        .iter()
        .filter(|&&d| {
            ctx.is_open(d)
                && ctx
                    .corpus
                    .discussion(d)
                    .map(|x| ctx.di.covers_category(x.category))
                    .unwrap_or(false)
        })
        .count();
    covering as f64 / open_total as f64
}

fn accuracy_breadth(ctx: &SourceContext<'_>, source: SourceId) -> f64 {
    let by_cat = comments_by_category(ctx, source, true);
    if by_cat.is_empty() {
        return 0.0;
    }
    let total: usize = by_cat.values().sum();
    total as f64 / by_cat.len() as f64
}

fn completeness_relevance(ctx: &SourceContext<'_>, source: SourceId) -> f64 {
    let mut covered: HashSet<CategoryId> = HashSet::new();
    for &d in ctx.corpus.discussions_of_source(source) {
        if let Ok(disc) = ctx.corpus.discussion(d) {
            if ctx.di.covers_category(disc.category) {
                covered.insert(disc.category);
            }
        }
    }
    covered.len() as f64
}

fn completeness_breadth(ctx: &SourceContext<'_>, source: SourceId) -> f64 {
    let open = open_discussions(ctx, source, true);
    let mut cats: HashSet<CategoryId> = HashSet::new();
    for &d in &open {
        if let Ok(disc) = ctx.corpus.discussion(d) {
            cats.insert(disc.category);
        }
    }
    if cats.is_empty() {
        return 0.0;
    }
    open.len() as f64 / cats.len() as f64
}

fn completeness_traffic(ctx: &SourceContext<'_>, source: SourceId) -> f64 {
    let open = open_discussions(ctx, source, false).len();
    open as f64 / ctx.largest_blog_forum_open() as f64
}

fn completeness_liveliness(ctx: &SourceContext<'_>, source: SourceId) -> f64 {
    let mut users: HashSet<obs_model::UserId> = HashSet::new();
    let mut comments = 0usize;
    for &d in ctx.corpus.discussions_of_source(source) {
        for &c in ctx.corpus.comments_of_discussion(d) {
            if let Ok(comment) = ctx.corpus.comment(c) {
                users.insert(comment.author);
                comments += 1;
            }
        }
    }
    if users.is_empty() {
        return 0.0;
    }
    comments as f64 / users.len() as f64
}

fn time_breadth(ctx: &SourceContext<'_>, source: SourceId) -> f64 {
    let discussions = ctx.corpus.discussions_of_source(source);
    if discussions.is_empty() {
        return 0.0;
    }
    let total_age_days: f64 = discussions
        .iter()
        .filter_map(|&d| ctx.corpus.discussion(d).ok())
        .map(|disc| ctx.now.since(disc.opened_at).days_f64())
        .sum();
    total_age_days / discussions.len() as f64
}

fn time_traffic_rank(ctx: &SourceContext<'_>, source: SourceId) -> f64 {
    ctx.panel
        .traffic(source)
        .map(|t| t.traffic_rank as f64)
        .unwrap_or(f64::MAX)
}

fn time_liveliness(ctx: &SourceContext<'_>, source: SourceId) -> f64 {
    let discussions = ctx.corpus.discussions_of_source(source).len();
    discussions as f64 / ctx.observed_days(source)
}

fn interpretability_breadth(ctx: &SourceContext<'_>, source: SourceId) -> f64 {
    let mut posts = 0usize;
    let mut tags = 0usize;
    for &d in ctx.corpus.discussions_of_source(source) {
        if let Ok(disc) = ctx.corpus.discussion(d) {
            if let Ok(post) = ctx.corpus.post(disc.root_post) {
                posts += 1;
                tags += post.distinct_tag_count();
            }
        }
    }
    if posts == 0 {
        return 0.0;
    }
    tags as f64 / posts as f64
}

fn authority_inbound_links(ctx: &SourceContext<'_>, source: SourceId) -> f64 {
    ctx.links.inbound_count(source) as f64
}

fn authority_feed_subscriptions(ctx: &SourceContext<'_>, source: SourceId) -> f64 {
    ctx.feeds.subscriptions(source) as f64
}

fn authority_daily_visitors(ctx: &SourceContext<'_>, source: SourceId) -> f64 {
    ctx.panel
        .traffic(source)
        .map(|t| t.daily_visitors)
        .unwrap_or(0.0)
}

fn authority_daily_page_views(ctx: &SourceContext<'_>, source: SourceId) -> f64 {
    ctx.panel
        .traffic(source)
        .map(|t| t.daily_page_views)
        .unwrap_or(0.0)
}

fn authority_time_on_site(ctx: &SourceContext<'_>, source: SourceId) -> f64 {
    ctx.panel
        .traffic(source)
        .map(|t| t.avg_time_on_site)
        .unwrap_or(0.0)
}

fn authority_views_per_visitor(ctx: &SourceContext<'_>, source: SourceId) -> f64 {
    ctx.panel
        .traffic(source)
        .map(|t| t.page_views_per_visitor())
        .unwrap_or(0.0)
}

fn dependability_bounce_rate(ctx: &SourceContext<'_>, source: SourceId) -> f64 {
    ctx.panel
        .traffic(source)
        .map(|t| t.bounce_rate)
        .unwrap_or(1.0)
}

fn dependability_breadth(ctx: &SourceContext<'_>, source: SourceId) -> f64 {
    let discussions = ctx.corpus.discussions_of_source(source);
    if discussions.is_empty() {
        return 0.0;
    }
    let comments: usize = discussions
        .iter()
        .map(|&d| ctx.corpus.comments_of_discussion(d).len())
        .sum();
    comments as f64 / discussions.len() as f64
}

fn dependability_liveliness(ctx: &SourceContext<'_>, source: SourceId) -> f64 {
    let discussions = ctx.corpus.discussions_of_source(source);
    if discussions.is_empty() {
        return 0.0;
    }
    // Per discussion: comments divided by the discussion's lifetime.
    let mut rate_sum = 0.0;
    for &d in discussions {
        let Ok(disc) = ctx.corpus.discussion(d) else {
            continue;
        };
        let comments = ctx.corpus.comments_of_discussion(d).len() as f64;
        let life_days = ctx.now.since(disc.opened_at).days_f64().max(1.0);
        rate_sum += comments / life_days;
    }
    rate_sum / discussions.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs_analytics::{AlexaPanel, FeedRegistry, LinkGraph};
    use obs_model::DomainOfInterest;
    use obs_synth::{World, WorldConfig};

    struct Fixture {
        world: World,
        panel: AlexaPanel,
        links: LinkGraph,
        feeds: FeedRegistry,
        di: DomainOfInterest,
    }

    impl Fixture {
        fn ctx(&self) -> SourceContext<'_> {
            SourceContext::new(
                &self.world.corpus,
                &self.panel,
                &self.links,
                &self.feeds,
                &self.di,
                self.world.now,
            )
        }
    }

    fn fixture() -> Fixture {
        let world = World::generate(WorldConfig::small(505));
        let panel = AlexaPanel::simulate(&world, 1);
        let links = LinkGraph::simulate(&world, 2);
        let feeds = FeedRegistry::simulate(&world, 3);
        let di = world.tourism_di();
        Fixture {
            world,
            panel,
            links,
            feeds,
            di,
        }
    }

    #[test]
    fn catalog_has_nineteen_measures_and_unique_ids() {
        let cat = source_catalog();
        assert_eq!(cat.len(), 19);
        let ids: std::collections::HashSet<_> = cat.iter().map(|m| m.spec.id).collect();
        assert_eq!(ids.len(), 19);
    }

    #[test]
    fn exactly_ten_measures_feed_the_componentization() {
        let cat = source_catalog();
        let comp: Vec<&str> = cat
            .iter()
            .filter(|m| m.spec.in_componentization)
            .map(|m| m.spec.id)
            .collect();
        assert_eq!(comp.len(), 10, "{comp:?}");
        // None of them may be domain-dependent (the paper: "Since
        // Google ranking is domain independent, we considered only
        // domain independent measures").
        for m in cat.iter().filter(|m| m.spec.in_componentization) {
            assert!(!m.spec.domain_dependent, "{}", m.spec.id);
        }
    }

    #[test]
    fn every_table_cell_is_covered() {
        // Count cells per (dimension, attribute); Table 1 has N/A
        // cells and one double cell (authority × relevance).
        let cat = source_catalog();
        let mut cells: HashMap<(QualityDimension, Attribute), usize> = HashMap::new();
        for m in &cat {
            *cells
                .entry((m.spec.dimension, m.spec.attribute))
                .or_insert(0) += 1;
        }
        assert_eq!(
            cells[&(QualityDimension::Authority, Attribute::Relevance)],
            2,
            "authority × relevance lists links + feeds"
        );
        // The N/A cells must stay empty.
        for na in [
            (QualityDimension::Accuracy, Attribute::Traffic),
            (QualityDimension::Accuracy, Attribute::Liveliness),
            (QualityDimension::Time, Attribute::Relevance),
            (QualityDimension::Interpretability, Attribute::Relevance),
            (QualityDimension::Interpretability, Attribute::Traffic),
            (QualityDimension::Interpretability, Attribute::Liveliness),
            (
                QualityDimension::Authority,
                Attribute::BreadthOfContributions,
            ),
            (QualityDimension::Dependability, Attribute::Traffic),
        ] {
            assert!(!cells.contains_key(&na), "{na:?} should be N/A");
        }
    }

    #[test]
    fn all_measures_evaluate_finite_on_every_source() {
        let f = fixture();
        let ctx = f.ctx();
        for m in source_catalog() {
            for s in f.world.corpus.sources() {
                let v = (m.eval)(&ctx, s.id);
                assert!(v.is_finite(), "{} on {} gave {v}", m.spec.id, s.id);
                assert!(v >= 0.0, "{} on {} negative: {v}", m.spec.id, s.id);
            }
        }
    }

    #[test]
    fn accuracy_relevance_is_a_fraction() {
        let f = fixture();
        let ctx = f.ctx();
        for s in f.world.corpus.sources() {
            let v = accuracy_relevance(&ctx, s.id);
            assert!((0.0..=1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn completeness_traffic_is_one_for_the_largest() {
        let f = fixture();
        let ctx = f.ctx();
        let best = f
            .world
            .corpus
            .sources()
            .iter()
            .filter(|s| s.kind.in_search_study())
            .map(|s| completeness_traffic(&ctx, s.id))
            .fold(0.0f64, f64::max);
        assert!(
            (best - 1.0).abs() < 1e-9,
            "largest should score 1, got {best}"
        );
    }

    #[test]
    fn centrality_counts_di_categories_only() {
        let f = fixture();
        let ctx = f.ctx();
        let di_cats = f.di.categories.len() as f64;
        for s in f.world.corpus.sources() {
            let v = completeness_relevance(&ctx, s.id);
            assert!(v <= di_cats, "centrality {v} exceeds DI size {di_cats}");
        }
    }

    #[test]
    fn traffic_rank_matches_panel() {
        let f = fixture();
        let ctx = f.ctx();
        for s in f.world.corpus.sources() {
            assert_eq!(
                time_traffic_rank(&ctx, s.id),
                f.panel.traffic(s.id).unwrap().traffic_rank as f64
            );
        }
    }

    #[test]
    fn adding_a_comment_never_lowers_comment_measures() {
        // Monotonicity: rebuild a tiny corpus with one extra comment
        // and check the comments-per-discussion measure grows.
        use obs_model::{AccountKind, CorpusBuilder, SourceKind, Timestamp};
        let build = |extra: bool| {
            let mut b = CorpusBuilder::new();
            let cat = b.add_category("attractions");
            let s = b.add_source(SourceKind::Blog, "b", Timestamp::EPOCH);
            let u = b.add_user("u", AccountKind::Person, Timestamp::EPOCH);
            let d = b.add_discussion(s, cat, "t", u, Timestamp::from_days(1));
            b.add_comment(d, u, "one", Timestamp::from_days(2));
            if extra {
                b.add_comment(d, u, "two", Timestamp::from_days(3));
            }
            b.build()
        };
        let c1 = build(false);
        let c2 = build(true);
        let world = World::generate(WorldConfig::small(1));
        let panel = AlexaPanel::simulate(&world, 1);
        let links = LinkGraph::simulate(&world, 1);
        let feeds = FeedRegistry::simulate(&world, 1);
        let di = DomainOfInterest::unconstrained("all");
        let now = Timestamp::from_days(10);
        let ctx1 = SourceContext::new(&c1, &panel, &links, &feeds, &di, now);
        let ctx2 = SourceContext::new(&c2, &panel, &links, &feeds, &di, now);
        let s = SourceId::new(0);
        assert!(dependability_breadth(&ctx2, s) > dependability_breadth(&ctx1, s));
        assert!(completeness_liveliness(&ctx2, s) > completeness_liveliness(&ctx1, s));
        assert!(dependability_liveliness(&ctx2, s) >= dependability_liveliness(&ctx1, s));
    }

    #[test]
    fn unconstrained_di_makes_relevance_total() {
        // With no category filter, every open discussion "covers" the
        // DI, so accuracy.relevance is 1 for sources with any open
        // discussion.
        let world = World::generate(WorldConfig::small(506));
        let panel = AlexaPanel::simulate(&world, 1);
        let links = LinkGraph::simulate(&world, 2);
        let feeds = FeedRegistry::simulate(&world, 3);
        let di = DomainOfInterest::unconstrained("all");
        let ctx = SourceContext::new(&world.corpus, &panel, &links, &feeds, &di, world.now);
        for s in world.corpus.sources() {
            let open = world
                .corpus
                .discussions_of_source(s.id)
                .iter()
                .any(|&d| ctx.is_open(d));
            if open {
                assert!((accuracy_relevance(&ctx, s.id) - 1.0).abs() < 1e-12);
            }
        }
    }
}
