//! The quality-model taxonomy: dimensions × attributes, measure
//! specifications, provenance and orientation.

use serde::{Deserialize, Serialize};

macro_rules! fmt_label {
    () => {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(self.label())
        }
    };
}

/// The six data-quality dimensions (rows of Tables 1 and 2),
/// inherited from the Batini et al. classification the paper builds
/// on: accuracy, completeness and time as universal dimensions;
/// interpretability, authority and dependability for semi- and
/// non-structured sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum QualityDimension {
    /// Correctness *and* topical coherence of contents ("out of scope
    /// discussions are considered as errors").
    Accuracy,
    /// Coverage of the relevant topics and conversations.
    Completeness,
    /// Freshness, age and responsiveness.
    Time,
    /// How well contents are self-described (tags).
    Interpretability,
    /// Recognition by others (links, subscriptions, visits, replies).
    Authority,
    /// Consistency of the community's engagement over time.
    Dependability,
}

impl QualityDimension {
    /// All dimensions, table order.
    pub const ALL: [QualityDimension; 6] = [
        QualityDimension::Accuracy,
        QualityDimension::Completeness,
        QualityDimension::Time,
        QualityDimension::Interpretability,
        QualityDimension::Authority,
        QualityDimension::Dependability,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            QualityDimension::Accuracy => "Accuracy",
            QualityDimension::Completeness => "Completeness",
            QualityDimension::Time => "Time",
            QualityDimension::Interpretability => "Interpretability",
            QualityDimension::Authority => "Authority",
            QualityDimension::Dependability => "Dependability",
        }
    }
}

impl std::fmt::Display for QualityDimension {
    fmt_label!();
}

/// Attribute columns. Tables 1 and 2 share Relevance, Breadth and
/// Liveliness; sources have **Traffic** where contributors have
/// **Activity** ("it is necessary to revisit the notion of traffic,
/// turning it into activity, i.e., the overall amount of user
/// interaction in the social network").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Attribute {
    /// Degree of specialization in the domain.
    Relevance,
    /// Overall range of issues covered.
    BreadthOfContributions,
    /// Volume of information produced/exchanged (sources).
    Traffic,
    /// Overall amount of social interaction (contributors).
    Activity,
    /// Responsiveness to new issues or events.
    Liveliness,
}

impl Attribute {
    /// The source-table columns, in order.
    pub const SOURCE: [Attribute; 4] = [
        Attribute::Relevance,
        Attribute::BreadthOfContributions,
        Attribute::Traffic,
        Attribute::Liveliness,
    ];

    /// The contributor-table columns, in order.
    pub const CONTRIBUTOR: [Attribute; 4] = [
        Attribute::Relevance,
        Attribute::BreadthOfContributions,
        Attribute::Activity,
        Attribute::Liveliness,
    ];

    /// Display label (paper wording).
    pub fn label(self) -> &'static str {
        match self {
            Attribute::Relevance => "Relevance",
            Attribute::BreadthOfContributions => "Breadth of Contributions",
            Attribute::Traffic => "Traffic",
            Attribute::Activity => "Activity",
            Attribute::Liveliness => "Liveliness",
        }
    }
}

impl std::fmt::Display for Attribute {
    fmt_label!();
}

/// Where a measure's raw value comes from (the parenthesized source
/// in Tables 1 and 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Provenance {
    /// Manual inspection or automated crawling of the source.
    Crawling,
    /// The Alexa-like traffic panel.
    Alexa,
    /// The Feedburner-like subscription registry.
    Feedburner,
}

impl Provenance {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Provenance::Crawling => "crawling",
            Provenance::Alexa => "www.alexa.com",
            Provenance::Feedburner => "Feedburner tool",
        }
    }
}

impl std::fmt::Display for Provenance {
    fmt_label!();
}

/// Whether larger raw values indicate better quality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Orientation {
    /// Bigger is better (comment counts, visitors, …).
    HigherIsBetter,
    /// Smaller is better (traffic **rank**, bounce rate).
    LowerIsBetter,
}

/// Static description of one measure (a cell of Table 1 or 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeasureSpec {
    /// Stable identifier, e.g. `"src.accuracy.relevance"`.
    pub id: &'static str,
    /// The paper's wording for the measure.
    pub name: &'static str,
    /// Table row.
    pub dimension: QualityDimension,
    /// Table column.
    pub attribute: Attribute,
    /// Whether the measure depends on the Domain of Interest
    /// (rendered in italics in the paper's tables).
    pub domain_dependent: bool,
    /// Raw-value origin.
    pub provenance: Provenance,
    /// Score orientation.
    pub orientation: Orientation,
    /// Whether the measure belongs to the ten domain-independent
    /// measures the paper feeds into the Table 3 componentization.
    pub in_componentization: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_dimensions_four_columns() {
        assert_eq!(QualityDimension::ALL.len(), 6);
        assert_eq!(Attribute::SOURCE.len(), 4);
        assert_eq!(Attribute::CONTRIBUTOR.len(), 4);
        assert!(Attribute::SOURCE.contains(&Attribute::Traffic));
        assert!(!Attribute::SOURCE.contains(&Attribute::Activity));
        assert!(Attribute::CONTRIBUTOR.contains(&Attribute::Activity));
        assert!(!Attribute::CONTRIBUTOR.contains(&Attribute::Traffic));
    }

    #[test]
    fn labels_match_paper_wording() {
        assert_eq!(
            Attribute::BreadthOfContributions.label(),
            "Breadth of Contributions"
        );
        assert_eq!(Provenance::Alexa.label(), "www.alexa.com");
        assert_eq!(QualityDimension::Dependability.to_string(), "Dependability");
    }
}
