//! Quality-based source ranking and ranking comparison.
//!
//! Section 4.1 re-ranks each query's top-20 search results by the
//! quality model and compares the two orderings with Kendall tau and
//! positional displacement statistics ("the found average distance
//! between the two rankings is 4 […] the percentage of cases in which
//! the difference is greater than 5 is at least the 35 % and it is
//! greater than 10 in about 2.5 % of the cases […] the percentage of
//! coincident ranking position is between 7 % and 8 %"). This module
//! provides both the re-ranking and the comparison statistics.

use crate::context::SourceContext;
use crate::score::{assess_source, Benchmarks, Weights};
use obs_model::SourceId;
use obs_stats::StatsError;

/// One entry of a quality ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedSource {
    /// The source.
    pub source: SourceId,
    /// Overall quality score.
    pub score: f64,
    /// 1-based position (1 = best).
    pub position: usize,
}

/// Ranks `candidates` by overall quality, best first. Ties break by
/// source id for determinism.
pub fn rank_sources(
    ctx: &SourceContext<'_>,
    candidates: &[SourceId],
    weights: &Weights,
    benchmarks: &Benchmarks,
) -> Vec<RankedSource> {
    let mut ranked: Vec<RankedSource> = candidates
        .iter()
        .map(|&source| RankedSource {
            source,
            score: assess_source(ctx, source, weights, benchmarks).overall,
            position: 0,
        })
        .collect();
    ranked.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.source.cmp(&b.source)));
    for (i, r) in ranked.iter_mut().enumerate() {
        r.position = i + 1;
    }
    ranked
}

/// Positional comparison of two rankings over the same items.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankingComparison {
    /// Number of compared items.
    pub n: usize,
    /// Mean absolute positional displacement.
    pub mean_displacement: f64,
    /// Fraction of items displaced by more than 5 positions.
    pub frac_over_5: f64,
    /// Fraction of items displaced by more than 10 positions.
    pub frac_over_10: f64,
    /// Fraction of items keeping the same position.
    pub frac_coincident: f64,
    /// Kendall tau-b between the two position vectors (`NaN` when
    /// degenerate, e.g. a single item).
    pub kendall_tau: f64,
}

/// Compares two position vectors (`a[i]` and `b[i]` are the positions
/// of item `i` in the two rankings).
pub fn compare_positions(a: &[usize], b: &[usize]) -> Result<RankingComparison, StatsError> {
    if a.len() != b.len() {
        return Err(StatsError::DimensionMismatch {
            context: "compare_positions",
            left: a.len(),
            right: b.len(),
        });
    }
    if a.is_empty() {
        return Err(StatsError::NotEnoughData {
            context: "compare_positions",
            needed: 1,
            got: 0,
        });
    }
    let n = a.len();
    let mut total = 0usize;
    let mut over_5 = 0usize;
    let mut over_10 = 0usize;
    let mut coincident = 0usize;
    for (&pa, &pb) in a.iter().zip(b) {
        let d = pa.abs_diff(pb);
        total += d;
        if d > 5 {
            over_5 += 1;
        }
        if d > 10 {
            over_10 += 1;
        }
        if d == 0 {
            coincident += 1;
        }
    }
    let af: Vec<f64> = a.iter().map(|&x| x as f64).collect();
    let bf: Vec<f64> = b.iter().map(|&x| x as f64).collect();
    let kendall_tau = obs_stats::kendall_tau_b(&af, &bf).unwrap_or(f64::NAN);
    Ok(RankingComparison {
        n,
        mean_displacement: total as f64 / n as f64,
        frac_over_5: over_5 as f64 / n as f64,
        frac_over_10: over_10 as f64 / n as f64,
        frac_coincident: coincident as f64 / n as f64,
        kendall_tau,
    })
}

/// Aggregates per-query comparisons into overall statistics (the
/// paper reports the averages over 100+ queries).
pub fn aggregate_comparisons(comparisons: &[RankingComparison]) -> Option<RankingComparison> {
    if comparisons.is_empty() {
        return None;
    }
    let total_items: usize = comparisons.iter().map(|c| c.n).sum();
    let weighted = |f: fn(&RankingComparison) -> f64| {
        comparisons.iter().map(|c| f(c) * c.n as f64).sum::<f64>() / total_items as f64
    };
    let taus: Vec<f64> = comparisons
        .iter()
        .map(|c| c.kendall_tau)
        .filter(|t| t.is_finite())
        .collect();
    let mean_tau = if taus.is_empty() {
        f64::NAN
    } else {
        taus.iter().sum::<f64>() / taus.len() as f64
    };
    Some(RankingComparison {
        n: total_items,
        mean_displacement: weighted(|c| c.mean_displacement),
        frac_over_5: weighted(|c| c.frac_over_5),
        frac_over_10: weighted(|c| c.frac_over_10),
        frac_coincident: weighted(|c| c.frac_coincident),
        kendall_tau: mean_tau,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs_analytics::{AlexaPanel, FeedRegistry, LinkGraph};
    use obs_synth::{World, WorldConfig};

    #[test]
    fn identical_rankings_have_zero_displacement() {
        let pos = vec![1, 2, 3, 4, 5];
        let c = compare_positions(&pos, &pos).unwrap();
        assert_eq!(c.mean_displacement, 0.0);
        assert_eq!(c.frac_coincident, 1.0);
        assert_eq!(c.frac_over_5, 0.0);
        assert!((c.kendall_tau - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversed_rankings_are_maximally_displaced() {
        let a: Vec<usize> = (1..=20).collect();
        let b: Vec<usize> = (1..=20).rev().collect();
        let c = compare_positions(&a, &b).unwrap();
        assert!((c.kendall_tau + 1.0).abs() < 1e-12);
        // Mean displacement of a 20-item reversal is 10.
        assert!((c.mean_displacement - 10.0).abs() < 1e-12);
        assert_eq!(c.frac_coincident, 0.0);
        assert!(c.frac_over_5 > 0.5);
    }

    #[test]
    fn known_small_displacement() {
        // Items at positions (1,2,3) vs (2,1,3): displacements 1,1,0.
        let c = compare_positions(&[1, 2, 3], &[2, 1, 3]).unwrap();
        assert!((c.mean_displacement - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.frac_coincident - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mismatched_or_empty_inputs_error() {
        assert!(compare_positions(&[1, 2], &[1]).is_err());
        assert!(compare_positions(&[], &[]).is_err());
    }

    #[test]
    fn rank_sources_is_a_total_order() {
        let world = World::generate(WorldConfig::small(808));
        let panel = AlexaPanel::simulate(&world, 1);
        let links = LinkGraph::simulate(&world, 2);
        let feeds = FeedRegistry::simulate(&world, 3);
        let di = world.open_di();
        let ctx = SourceContext::new(&world.corpus, &panel, &links, &feeds, &di, world.now);
        let weights = Weights::uniform();
        let benchmarks = Benchmarks::for_sources(&ctx, 0.9);
        let candidates: Vec<SourceId> = world.corpus.sources().iter().map(|s| s.id).collect();
        let ranked = rank_sources(&ctx, &candidates, &weights, &benchmarks);
        assert_eq!(ranked.len(), candidates.len());
        for w in ranked.windows(2) {
            assert!(w[0].score >= w[1].score);
            assert_eq!(w[0].position + 1, w[1].position);
        }
        assert_eq!(ranked[0].position, 1);
    }

    #[test]
    fn aggregation_weights_by_item_count() {
        let c1 = RankingComparison {
            n: 10,
            mean_displacement: 2.0,
            frac_over_5: 0.1,
            frac_over_10: 0.0,
            frac_coincident: 0.5,
            kendall_tau: 0.8,
        };
        let c2 = RankingComparison {
            n: 30,
            mean_displacement: 6.0,
            frac_over_5: 0.5,
            frac_over_10: 0.2,
            frac_coincident: 0.1,
            kendall_tau: 0.2,
        };
        let agg = aggregate_comparisons(&[c1, c2]).unwrap();
        assert_eq!(agg.n, 40);
        assert!((agg.mean_displacement - 5.0).abs() < 1e-12);
        assert!((agg.frac_coincident - 0.2).abs() < 1e-12);
        assert!((agg.kendall_tau - 0.5).abs() < 1e-12);
        assert!(aggregate_comparisons(&[]).is_none());
    }
}
