//! The Table 2 catalog: every contributor-quality measure.
//!
//! Section 3.2 revisits the source attributes for single users:
//! *traffic* becomes *activity* (the overall amount of the user's
//! social interaction), and the model deliberately separates
//! **absolute volumes** (activity column) from **relative volumes**
//! (relevance column) — the distinction validated by Table 4 and
//! exploited by the influencer/spam analysis.
//!
//! Interpretation notes (the paper gives each cell one line; where
//! the wording is ambiguous the chosen reading is documented on the
//! evaluation function):
//!
//! * "interaction" for a contributor means an *emission*: posts,
//!   comments, and active social gestures they perform;
//! * "replies received" counts both threaded replies to the user's
//!   comments and `Mention` interactions on their contents;
//! * "feedbacks" counts `Feedback` and `Retweet` interactions
//!   received (the Twitter reading of Section 4.2).

use crate::context::SourceContext;
use crate::taxonomy::{Attribute, MeasureSpec, Orientation, Provenance, QualityDimension};
use obs_model::{CategoryId, ContentRef, InteractionKind, UserId};
use std::collections::{HashMap, HashSet};

/// A Table 2 measure: spec + evaluation function over a user.
pub struct ContributorMeasure {
    /// Static description.
    pub spec: MeasureSpec,
    /// Computes the raw value for one user.
    pub eval: fn(&SourceContext<'_>, UserId) -> f64,
}

impl std::fmt::Debug for ContributorMeasure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContributorMeasure")
            .field("spec", &self.spec)
            .finish()
    }
}

/// The full Table 2 catalog, row-major.
pub fn contributor_catalog() -> Vec<ContributorMeasure> {
    use Attribute as A;
    use Orientation::HigherIsBetter;
    use Provenance::Crawling;
    use QualityDimension as D;

    let spec = |id, name, dimension, attribute, domain_dependent| MeasureSpec {
        id,
        name,
        dimension,
        attribute,
        domain_dependent,
        provenance: Crawling,
        orientation: HigherIsBetter,
        in_componentization: false,
    };

    vec![
        ContributorMeasure {
            spec: spec(
                "usr.accuracy.breadth",
                "average number of comments per content category",
                D::Accuracy,
                A::BreadthOfContributions,
                true,
            ),
            eval: accuracy_breadth,
        },
        ContributorMeasure {
            spec: spec(
                "usr.completeness.relevance",
                "centrality: number of covered content categories",
                D::Completeness,
                A::Relevance,
                true,
            ),
            eval: completeness_relevance,
        },
        ContributorMeasure {
            spec: spec(
                "usr.completeness.breadth",
                "number of open discussions",
                D::Completeness,
                A::BreadthOfContributions,
                true,
            ),
            eval: completeness_breadth,
        },
        ContributorMeasure {
            spec: spec(
                "usr.completeness.activity",
                "total number of interactions",
                D::Completeness,
                A::Activity,
                false,
            ),
            eval: completeness_activity,
        },
        ContributorMeasure {
            spec: spec(
                "usr.completeness.liveliness",
                "average number of interactions per user",
                D::Completeness,
                A::Liveliness,
                false,
            ),
            eval: completeness_liveliness,
        },
        ContributorMeasure {
            spec: spec(
                "usr.time.breadth",
                "age of the user",
                D::Time,
                A::BreadthOfContributions,
                false,
            ),
            eval: time_breadth,
        },
        ContributorMeasure {
            spec: spec(
                "usr.time.activity",
                "number of times comments are read by other users",
                D::Time,
                A::Activity,
                false,
            ),
            eval: time_activity,
        },
        ContributorMeasure {
            spec: spec(
                "usr.time.liveliness",
                "average number of new interactions per user per day",
                D::Time,
                A::Liveliness,
                false,
            ),
            eval: time_liveliness,
        },
        ContributorMeasure {
            spec: spec(
                "usr.interpretability.breadth",
                "average number of distinct tags per post",
                D::Interpretability,
                A::BreadthOfContributions,
                false,
            ),
            eval: interpretability_breadth,
        },
        ContributorMeasure {
            spec: spec(
                "usr.authority.relevance",
                "average number of replies received per comment",
                D::Authority,
                A::Relevance,
                true,
            ),
            eval: authority_relevance,
        },
        ContributorMeasure {
            spec: spec(
                "usr.authority.activity",
                "number of received replies",
                D::Authority,
                A::Activity,
                false,
            ),
            eval: authority_activity,
        },
        ContributorMeasure {
            spec: spec(
                "usr.dependability.relevance",
                "average number of feedbacks per comment",
                D::Dependability,
                A::Relevance,
                true,
            ),
            eval: dependability_relevance,
        },
        ContributorMeasure {
            spec: spec(
                "usr.dependability.breadth",
                "number of comments per discussion",
                D::Dependability,
                A::BreadthOfContributions,
                false,
            ),
            eval: dependability_breadth,
        },
        ContributorMeasure {
            spec: spec(
                "usr.dependability.activity",
                "number of feedbacks",
                D::Dependability,
                A::Activity,
                false,
            ),
            eval: dependability_activity,
        },
        ContributorMeasure {
            spec: spec(
                "usr.dependability.liveliness",
                "average number of interactions per discussion per day",
                D::Dependability,
                A::Liveliness,
                false,
            ),
            eval: dependability_liveliness,
        },
    ]
}

/// Looks a measure up by id.
pub fn contributor_measure(id: &str) -> Option<ContributorMeasure> {
    contributor_catalog().into_iter().find(|m| m.spec.id == id)
}

// ------------------------------------------------------------------
// Shared raw ingredients.
// ------------------------------------------------------------------

/// Total emissions of a user: posts + comments + active interactions
/// performed (the contributor reading of "interaction").
pub fn emissions(ctx: &SourceContext<'_>, user: UserId) -> usize {
    let active = ctx
        .corpus
        .interactions_of_actor(user)
        .iter()
        .filter(|&&i| ctx.corpus.interactions()[i.index()].kind.is_active())
        .count();
    ctx.corpus.posts_of_user(user).len() + ctx.corpus.comments_of_user(user).len() + active
}

/// Replies received: threaded replies to the user's comments plus
/// `Mention` interactions on the user's contents.
pub fn replies_received(ctx: &SourceContext<'_>, user: UserId) -> usize {
    let threaded: usize = ctx
        .corpus
        .comments_of_user(user)
        .iter()
        .map(|&c| ctx.corpus.replies_to(c).len())
        .sum();
    threaded
        + ctx
            .corpus
            .received_count_of_kind(user, InteractionKind::Mention)
}

/// Feedbacks received: `Feedback` + `Retweet` interactions on the
/// user's contents.
pub fn feedbacks_received(ctx: &SourceContext<'_>, user: UserId) -> usize {
    ctx.corpus
        .received_count_of_kind(user, InteractionKind::Feedback)
        + ctx
            .corpus
            .received_count_of_kind(user, InteractionKind::Retweet)
}

/// Distinct discussions the user commented or posted in.
fn discussions_touched(ctx: &SourceContext<'_>, user: UserId) -> HashSet<obs_model::DiscussionId> {
    let mut set: HashSet<obs_model::DiscussionId> = HashSet::new();
    for &c in ctx.corpus.comments_of_user(user) {
        if let Ok(comment) = ctx.corpus.comment(c) {
            set.insert(comment.discussion);
        }
    }
    for &p in ctx.corpus.posts_of_user(user) {
        if let Ok(post) = ctx.corpus.post(p) {
            set.insert(post.discussion);
        }
    }
    set
}

fn comment_count(ctx: &SourceContext<'_>, user: UserId) -> usize {
    ctx.corpus.comments_of_user(user).len()
}

fn accuracy_breadth(ctx: &SourceContext<'_>, user: UserId) -> f64 {
    // Comments grouped by the category of their discussion, averaged
    // over DI-covered categories the user touched.
    let mut by_cat: HashMap<CategoryId, usize> = HashMap::new();
    for &c in ctx.corpus.comments_of_user(user) {
        let Ok(comment) = ctx.corpus.comment(c) else {
            continue;
        };
        let Ok(disc) = ctx.corpus.discussion(comment.discussion) else {
            continue;
        };
        if ctx.di.covers_category(disc.category) {
            *by_cat.entry(disc.category).or_insert(0) += 1;
        }
    }
    if by_cat.is_empty() {
        return 0.0;
    }
    by_cat.values().sum::<usize>() as f64 / by_cat.len() as f64
}

fn completeness_relevance(ctx: &SourceContext<'_>, user: UserId) -> f64 {
    let mut covered: HashSet<CategoryId> = HashSet::new();
    for d in discussions_touched(ctx, user) {
        if let Ok(disc) = ctx.corpus.discussion(d) {
            if ctx.di.covers_category(disc.category) {
                covered.insert(disc.category);
            }
        }
    }
    covered.len() as f64
}

fn completeness_breadth(ctx: &SourceContext<'_>, user: UserId) -> f64 {
    // Open discussions the user opened (within DI categories).
    ctx.corpus
        .discussions_opened_by(user)
        .iter()
        .filter(|&&d| {
            ctx.is_open(d)
                && ctx
                    .corpus
                    .discussion(d)
                    .map(|x| ctx.di.covers_category(x.category))
                    .unwrap_or(false)
        })
        .count() as f64
}

fn completeness_activity(ctx: &SourceContext<'_>, user: UserId) -> f64 {
    emissions(ctx, user) as f64
}

fn completeness_liveliness(ctx: &SourceContext<'_>, user: UserId) -> f64 {
    // Average interactions per discussion the user participates in.
    let touched = discussions_touched(ctx, user);
    if touched.is_empty() {
        return 0.0;
    }
    emissions(ctx, user) as f64 / touched.len() as f64
}

fn time_breadth(ctx: &SourceContext<'_>, user: UserId) -> f64 {
    ctx.corpus
        .user(user)
        .map(|u| ctx.now.since(u.registered).days_f64())
        .unwrap_or(0.0)
}

fn time_activity(ctx: &SourceContext<'_>, user: UserId) -> f64 {
    // Reads received on the user's comments.
    let mut reads = 0usize;
    for &c in ctx.corpus.comments_of_user(user) {
        for &i in ctx.corpus.interactions_on(ContentRef::Comment(c)) {
            if ctx.corpus.interactions()[i.index()].kind == InteractionKind::Read {
                reads += 1;
            }
        }
    }
    reads as f64
}

fn time_liveliness(ctx: &SourceContext<'_>, user: UserId) -> f64 {
    let age_days = time_breadth(ctx, user).max(1.0);
    emissions(ctx, user) as f64 / age_days
}

fn interpretability_breadth(ctx: &SourceContext<'_>, user: UserId) -> f64 {
    let posts = ctx.corpus.posts_of_user(user);
    if posts.is_empty() {
        return 0.0;
    }
    let tags: usize = posts
        .iter()
        .filter_map(|&p| ctx.corpus.post(p).ok())
        .map(|post| post.distinct_tag_count())
        .sum();
    tags as f64 / posts.len() as f64
}

fn authority_relevance(ctx: &SourceContext<'_>, user: UserId) -> f64 {
    let comments = comment_count(ctx, user);
    if comments == 0 {
        return 0.0;
    }
    replies_received(ctx, user) as f64 / comments as f64
}

fn authority_activity(ctx: &SourceContext<'_>, user: UserId) -> f64 {
    replies_received(ctx, user) as f64
}

fn dependability_relevance(ctx: &SourceContext<'_>, user: UserId) -> f64 {
    let comments = comment_count(ctx, user);
    if comments == 0 {
        return 0.0;
    }
    feedbacks_received(ctx, user) as f64 / comments as f64
}

fn dependability_breadth(ctx: &SourceContext<'_>, user: UserId) -> f64 {
    let touched = discussions_touched(ctx, user);
    if touched.is_empty() {
        return 0.0;
    }
    comment_count(ctx, user) as f64 / touched.len() as f64
}

fn dependability_activity(ctx: &SourceContext<'_>, user: UserId) -> f64 {
    feedbacks_received(ctx, user) as f64
}

fn dependability_liveliness(ctx: &SourceContext<'_>, user: UserId) -> f64 {
    let touched = discussions_touched(ctx, user);
    if touched.is_empty() {
        return 0.0;
    }
    let age_days = time_breadth(ctx, user).max(1.0);
    emissions(ctx, user) as f64 / touched.len() as f64 / age_days
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs_analytics::{AlexaPanel, FeedRegistry, LinkGraph};
    use obs_model::DomainOfInterest;
    use obs_synth::{World, WorldConfig};

    struct Fixture {
        world: World,
        panel: AlexaPanel,
        links: LinkGraph,
        feeds: FeedRegistry,
        di: DomainOfInterest,
    }

    impl Fixture {
        fn ctx(&self) -> SourceContext<'_> {
            SourceContext::new(
                &self.world.corpus,
                &self.panel,
                &self.links,
                &self.feeds,
                &self.di,
                self.world.now,
            )
        }
    }

    fn fixture() -> Fixture {
        let world = World::generate(WorldConfig::small(606));
        let panel = AlexaPanel::simulate(&world, 1);
        let links = LinkGraph::simulate(&world, 2);
        let feeds = FeedRegistry::simulate(&world, 3);
        let di = DomainOfInterest::unconstrained("all");
        Fixture {
            world,
            panel,
            links,
            feeds,
            di,
        }
    }

    #[test]
    fn catalog_has_fifteen_measures_and_unique_ids() {
        let cat = contributor_catalog();
        assert_eq!(cat.len(), 15);
        let ids: std::collections::HashSet<_> = cat.iter().map(|m| m.spec.id).collect();
        assert_eq!(ids.len(), 15);
    }

    #[test]
    fn table2_na_cells_stay_empty() {
        let cat = contributor_catalog();
        let cells: HashSet<(QualityDimension, Attribute)> = cat
            .iter()
            .map(|m| (m.spec.dimension, m.spec.attribute))
            .collect();
        for na in [
            (QualityDimension::Accuracy, Attribute::Relevance),
            (QualityDimension::Accuracy, Attribute::Activity),
            (QualityDimension::Accuracy, Attribute::Liveliness),
            (QualityDimension::Time, Attribute::Relevance),
            (QualityDimension::Interpretability, Attribute::Relevance),
            (QualityDimension::Interpretability, Attribute::Activity),
            (QualityDimension::Interpretability, Attribute::Liveliness),
            (
                QualityDimension::Authority,
                Attribute::BreadthOfContributions,
            ),
            (QualityDimension::Authority, Attribute::Liveliness),
        ] {
            assert!(!cells.contains(&na), "{na:?} should be N/A");
        }
        // Activity column exists, Traffic never appears.
        assert!(cat.iter().any(|m| m.spec.attribute == Attribute::Activity));
        assert!(cat.iter().all(|m| m.spec.attribute != Attribute::Traffic));
    }

    #[test]
    fn all_measures_finite_and_nonnegative() {
        let f = fixture();
        let ctx = f.ctx();
        for m in contributor_catalog() {
            for u in f.world.corpus.users() {
                let v = (m.eval)(&ctx, u.id);
                assert!(
                    v.is_finite() && v >= 0.0,
                    "{} on {} gave {v}",
                    m.spec.id,
                    u.id
                );
            }
        }
    }

    #[test]
    fn relative_equals_absolute_over_comments() {
        let f = fixture();
        let ctx = f.ctx();
        for u in f.world.corpus.users() {
            let comments = ctx.corpus.comments_of_user(u.id).len();
            if comments > 0 {
                let abs = authority_activity(&ctx, u.id);
                let rel = authority_relevance(&ctx, u.id);
                assert!((rel - abs / comments as f64).abs() < 1e-12);
                let fabs = dependability_activity(&ctx, u.id);
                let frel = dependability_relevance(&ctx, u.id);
                assert!((frel - fabs / comments as f64).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn activity_counts_only_active_interactions() {
        use obs_model::{AccountKind, CorpusBuilder, SourceKind, Timestamp};
        let mut b = CorpusBuilder::new();
        let cat = b.add_category("c");
        let s = b.add_source(SourceKind::Blog, "b", Timestamp::EPOCH);
        let u = b.add_user("u", AccountKind::Person, Timestamp::EPOCH);
        let v = b.add_user("v", AccountKind::Person, Timestamp::EPOCH);
        let (_, p) = b.add_discussion_with_post(
            s,
            cat,
            "t",
            u,
            Timestamp::from_days(1),
            "body",
            vec![],
            None,
        );
        // v: one comment + one like + one read.
        let d = obs_model::DiscussionId::new(0);
        b.add_comment(d, v, "hi", Timestamp::from_days(2));
        b.add_interaction(
            v,
            ContentRef::Post(p),
            InteractionKind::Like,
            Timestamp::from_days(3),
        );
        b.add_interaction(
            v,
            ContentRef::Post(p),
            InteractionKind::Read,
            Timestamp::from_days(3),
        );
        let corpus = b.build();

        let world = World::generate(WorldConfig::small(1));
        let panel = AlexaPanel::simulate(&world, 1);
        let links = LinkGraph::simulate(&world, 1);
        let feeds = FeedRegistry::simulate(&world, 1);
        let di = DomainOfInterest::unconstrained("all");
        let ctx = SourceContext::new(
            &corpus,
            &panel,
            &links,
            &feeds,
            &di,
            Timestamp::from_days(10),
        );

        // v emitted 1 comment + 1 like = 2 (the read is passive).
        assert_eq!(emissions(&ctx, obs_model::UserId::new(1)), 2);
        // u emitted 1 post.
        assert_eq!(emissions(&ctx, obs_model::UserId::new(0)), 1);
    }

    #[test]
    fn replies_received_counts_threads_and_mentions() {
        use obs_model::{AccountKind, CorpusBuilder, SourceKind, Timestamp};
        let mut b = CorpusBuilder::new();
        let cat = b.add_category("c");
        let s = b.add_source(SourceKind::Microblog, "m", Timestamp::EPOCH);
        let u = b.add_user("u", AccountKind::Person, Timestamp::EPOCH);
        let v = b.add_user("v", AccountKind::Person, Timestamp::EPOCH);
        let d = b.add_discussion(s, cat, "t", u, Timestamp::from_days(1));
        let c1 = b.add_comment(d, u, "hello", Timestamp::from_days(2));
        let _r = b
            .add_reply(d, v, "re: hello", Timestamp::from_days(3), c1)
            .unwrap();
        b.add_interaction(
            v,
            ContentRef::Comment(c1),
            InteractionKind::Mention,
            Timestamp::from_days(4),
        );
        let corpus = b.build();

        let world = World::generate(WorldConfig::small(1));
        let panel = AlexaPanel::simulate(&world, 1);
        let links = LinkGraph::simulate(&world, 1);
        let feeds = FeedRegistry::simulate(&world, 1);
        let di = DomainOfInterest::unconstrained("all");
        let ctx = SourceContext::new(
            &corpus,
            &panel,
            &links,
            &feeds,
            &di,
            Timestamp::from_days(10),
        );

        assert_eq!(replies_received(&ctx, obs_model::UserId::new(0)), 2);
        assert_eq!(replies_received(&ctx, obs_model::UserId::new(1)), 0);
    }

    #[test]
    fn age_measured_from_registration() {
        let f = fixture();
        let ctx = f.ctx();
        for u in f.world.corpus.users() {
            let age = time_breadth(&ctx, u.id);
            let expected = f.world.now.since(u.registered).days_f64();
            assert!((age - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn silent_users_score_zero_everywhere_applicable() {
        use obs_model::{AccountKind, CorpusBuilder, SourceKind, Timestamp};
        let mut b = CorpusBuilder::new();
        b.add_category("c");
        b.add_source(SourceKind::Blog, "b", Timestamp::EPOCH);
        let silent = b.add_user("silent", AccountKind::Person, Timestamp::EPOCH);
        let corpus = b.build();
        let world = World::generate(WorldConfig::small(1));
        let panel = AlexaPanel::simulate(&world, 1);
        let links = LinkGraph::simulate(&world, 1);
        let feeds = FeedRegistry::simulate(&world, 1);
        let di = DomainOfInterest::unconstrained("all");
        let ctx = SourceContext::new(
            &corpus,
            &panel,
            &links,
            &feeds,
            &di,
            Timestamp::from_days(30),
        );
        for m in contributor_catalog() {
            let v = (m.eval)(&ctx, silent);
            if m.spec.id == "usr.time.breadth" {
                assert!(v > 0.0, "age is nonzero even for silent users");
            } else {
                assert_eq!(v, 0.0, "{} should be 0 for a silent user", m.spec.id);
            }
        }
    }
}
