//! Influencer detection and spam screening.
//!
//! Section 3.2: *"our model distinguishes between absolute volumes of
//! interactions […] and relative volumes of interactions […]. Such
//! distinction allows one identifying the abilities of a user to
//! generate reactions and also her efficiency in a given domain […]
//! Moreover a smart combination of these measures can also help
//! reduce the problems deriving from spammers and bots."*
//!
//! The combination implemented here scores each contributor by the
//! geometric mean of their percentile on **absolute** received
//! interactions and their percentile on **relative** received
//! interactions (received per emission). Accounts that blast content
//! without resonance (bots) collapse on the relative axis; accounts
//! with one lucky hit collapse on the absolute axis; influencers need
//! both.

use crate::context::SourceContext;
use crate::contributor_measures::{emissions, feedbacks_received, replies_received};
use obs_model::UserId;
use obs_stats::rank::{average_ranks, Direction};

/// The influence facts of one contributor.
#[derive(Debug, Clone, PartialEq)]
pub struct InfluenceProfile {
    /// The contributor.
    pub user: UserId,
    /// Emissions: posts + comments + active interactions performed.
    pub emissions: usize,
    /// Absolute received volume (replies + mentions + feedbacks +
    /// retweets received).
    pub received_absolute: f64,
    /// Relative received volume: absolute / emissions.
    pub received_relative: f64,
    /// Combined influence score in `[0, 1]`: geometric mean of the
    /// two percentile ranks.
    pub combined_score: f64,
    /// Percentile (0–1) on the absolute axis.
    pub absolute_percentile: f64,
    /// Percentile (0–1) on the relative axis.
    pub relative_percentile: f64,
}

/// Builds influence profiles for every user with at least one
/// emission, sorted by combined score descending.
pub fn influence_profiles(ctx: &SourceContext<'_>) -> Vec<InfluenceProfile> {
    let mut users = Vec::new();
    let mut absolutes = Vec::new();
    let mut relatives = Vec::new();
    for u in ctx.corpus.users() {
        let em = emissions(ctx, u.id);
        if em == 0 {
            continue;
        }
        let absolute = (replies_received(ctx, u.id) + feedbacks_received(ctx, u.id)) as f64;
        let relative = absolute / em as f64;
        users.push((u.id, em));
        absolutes.push(absolute);
        relatives.push(relative);
    }
    if users.is_empty() {
        return Vec::new();
    }

    let n = users.len() as f64;
    // Ascending ranks: percentile = rank / n (1.0 = best).
    let abs_ranks = average_ranks(&absolutes, Direction::Ascending);
    let rel_ranks = average_ranks(&relatives, Direction::Ascending);

    let mut profiles: Vec<InfluenceProfile> = users
        .into_iter()
        .enumerate()
        .map(|(i, (user, em))| {
            let ap = abs_ranks[i] / n;
            let rp = rel_ranks[i] / n;
            InfluenceProfile {
                user,
                emissions: em,
                received_absolute: absolutes[i],
                received_relative: relatives[i],
                combined_score: (ap * rp).sqrt(),
                absolute_percentile: ap,
                relative_percentile: rp,
            }
        })
        .collect();
    profiles.sort_by(|a, b| {
        b.combined_score
            .total_cmp(&a.combined_score)
            .then(a.user.cmp(&b.user))
    });
    profiles
}

/// The top `count` influencers by combined score.
pub fn influencers(profiles: &[InfluenceProfile], count: usize) -> Vec<UserId> {
    profiles.iter().take(count).map(|p| p.user).collect()
}

/// Contributors whose behaviour matches the bot signature: emission
/// volume in the top quartile while relative resonance sits in the
/// bottom quintile.
pub fn likely_spammers(profiles: &[InfluenceProfile]) -> Vec<UserId> {
    if profiles.is_empty() {
        return Vec::new();
    }
    let mut emission_counts: Vec<f64> = profiles.iter().map(|p| p.emissions as f64).collect();
    emission_counts.sort_by(|a, b| a.total_cmp(b));
    let q75 = obs_stats::desc::quantile(&emission_counts, 0.75).unwrap_or(f64::MAX);
    profiles
        .iter()
        .filter(|p| p.emissions as f64 >= q75 && p.relative_percentile <= 0.20)
        .map(|p| p.user)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs_analytics::{AlexaPanel, FeedRegistry, LinkGraph};
    use obs_model::DomainOfInterest;
    use obs_synth::{World, WorldConfig};

    struct Fixture {
        world: World,
        panel: AlexaPanel,
        links: LinkGraph,
        feeds: FeedRegistry,
        di: DomainOfInterest,
    }

    impl Fixture {
        fn ctx(&self) -> SourceContext<'_> {
            SourceContext::new(
                &self.world.corpus,
                &self.panel,
                &self.links,
                &self.feeds,
                &self.di,
                self.world.now,
            )
        }
    }

    fn fixture() -> Fixture {
        // A denser world so user behaviour differentiates.
        let world = World::generate(WorldConfig {
            users: 400,
            sources: 30,
            mean_discussions_per_source: 15.0,
            interaction_rate: 1.5,
            ..WorldConfig::small(909)
        });
        let panel = AlexaPanel::simulate(&world, 1);
        let links = LinkGraph::simulate(&world, 2);
        let feeds = FeedRegistry::simulate(&world, 3);
        let di = DomainOfInterest::unconstrained("all");
        Fixture {
            world,
            panel,
            links,
            feeds,
            di,
        }
    }

    #[test]
    fn profiles_are_sorted_and_bounded() {
        let f = fixture();
        let ctx = f.ctx();
        let profiles = influence_profiles(&ctx);
        assert!(!profiles.is_empty());
        for w in profiles.windows(2) {
            assert!(w[0].combined_score >= w[1].combined_score);
        }
        for p in &profiles {
            assert!((0.0..=1.0).contains(&p.combined_score));
            assert!((0.0..=1.0).contains(&p.absolute_percentile));
            assert!((0.0..=1.0).contains(&p.relative_percentile));
            assert!(p.emissions > 0);
        }
    }

    #[test]
    fn influencers_are_the_top_of_the_list() {
        let f = fixture();
        let ctx = f.ctx();
        let profiles = influence_profiles(&ctx);
        let top = influencers(&profiles, 10);
        assert_eq!(top.len(), 10.min(profiles.len()));
        assert_eq!(top[0], profiles[0].user);
    }

    #[test]
    fn high_influence_users_rank_above_spam_bots() {
        let f = fixture();
        let ctx = f.ctx();
        let profiles = influence_profiles(&ctx);

        // Ground truth: spam bots (world latents) should collect a
        // lower mean combined score than genuinely influential users.
        let mean_score = |flag: bool| {
            let xs: Vec<f64> = profiles
                .iter()
                .filter(|p| f.world.user_latents[p.user.index()].spammer == flag)
                .map(|p| p.combined_score)
                .collect();
            if xs.is_empty() {
                None
            } else {
                Some(xs.iter().sum::<f64>() / xs.len() as f64)
            }
        };
        if let (Some(spam), Some(legit)) = (mean_score(true), mean_score(false)) {
            assert!(
                spam < legit,
                "spam bots score {spam:.3} should be below legit {legit:.3}"
            );
        }
    }

    #[test]
    fn combined_rule_penalizes_spammers_more_than_absolute_only() {
        let f = fixture();
        let ctx = f.ctx();
        let profiles = influence_profiles(&ctx);
        let spammers: Vec<&InfluenceProfile> = profiles
            .iter()
            .filter(|p| f.world.user_latents[p.user.index()].spammer)
            .collect();
        if spammers.is_empty() {
            return; // this seed produced no active spammers
        }
        // On average, a spammer's combined score must sit below their
        // absolute percentile: the relative axis is what demotes them.
        let avg_combined: f64 =
            spammers.iter().map(|p| p.combined_score).sum::<f64>() / spammers.len() as f64;
        let avg_absolute: f64 =
            spammers.iter().map(|p| p.absolute_percentile).sum::<f64>() / spammers.len() as f64;
        assert!(
            avg_combined < avg_absolute,
            "combined {avg_combined:.3} vs absolute {avg_absolute:.3}"
        );
    }

    #[test]
    fn spam_screen_flags_ground_truth_spammers_disproportionately() {
        let f = fixture();
        let ctx = f.ctx();
        let profiles = influence_profiles(&ctx);
        let flagged = likely_spammers(&profiles);
        if flagged.is_empty() {
            return;
        }
        let spam_rate_flagged = flagged
            .iter()
            .filter(|u| f.world.user_latents[u.index()].spammer)
            .count() as f64
            / flagged.len() as f64;
        let spam_rate_overall = profiles
            .iter()
            .filter(|p| f.world.user_latents[p.user.index()].spammer)
            .count() as f64
            / profiles.len() as f64;
        assert!(
            spam_rate_flagged > spam_rate_overall,
            "flagged set ({spam_rate_flagged:.2}) should be enriched vs base ({spam_rate_overall:.2})"
        );
    }

    #[test]
    fn empty_corpus_gives_empty_profiles() {
        use obs_model::{CorpusBuilder, Timestamp};
        let corpus = CorpusBuilder::new().build();
        let world = World::generate(WorldConfig::small(1));
        let panel = AlexaPanel::simulate(&world, 1);
        let links = LinkGraph::simulate(&world, 1);
        let feeds = FeedRegistry::simulate(&world, 1);
        let di = DomainOfInterest::unconstrained("all");
        let ctx = SourceContext::new(&corpus, &panel, &links, &feeds, &di, Timestamp::EPOCH);
        assert!(influence_profiles(&ctx).is_empty());
        assert!(likely_spammers(&[]).is_empty());
    }
}
