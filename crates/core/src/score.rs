//! Benchmarks, weights and the weighted-average quality scores.
//!
//! Section 3.1: *"The overall source quality is thus obtained as a
//! weighted average of the different measures that are normalized by
//! considering benchmarks derived from the assessment of well-known,
//! highly-ranked sources."* [`Benchmarks`] derives those ceilings
//! from the corpus itself (a high quantile of each measure across
//! sources — "what the best-in-class achieve"); [`assess_source`] and
//! [`assess_contributor`] produce a [`QualityScore`] with the overall
//! weighted average plus per-dimension and per-attribute breakdowns.

use crate::context::SourceContext;
use crate::contributor_measures::{contributor_catalog, ContributorMeasure};
use crate::source_measures::{source_catalog, SourceMeasure};
use crate::taxonomy::{Attribute, MeasureSpec, Orientation, QualityDimension};
use obs_model::{SourceId, UserId};
use obs_stats::normalize::benchmark_relative;
use std::collections::HashMap;

/// Re-orients a raw value so that *higher is always better*. Measures
/// declared `LowerIsBetter` (traffic rank, bounce rate) map through
/// `1 / (1 + raw)`, which is monotone decreasing and keeps the value
/// positive for the benchmark division.
pub fn oriented(spec: &MeasureSpec, raw: f64) -> f64 {
    match spec.orientation {
        Orientation::HigherIsBetter => raw.max(0.0),
        Orientation::LowerIsBetter => 1.0 / (1.0 + raw.max(0.0)),
    }
}

/// Per-measure weighting; unlisted measures weigh 1.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Weights {
    overrides: HashMap<&'static str, f64>,
}

impl Weights {
    /// Uniform weights.
    pub fn uniform() -> Self {
        Weights::default()
    }

    /// Sets one measure's weight (builder style).
    pub fn with(mut self, id: &'static str, weight: f64) -> Self {
        self.overrides.insert(id, weight.max(0.0));
        self
    }

    /// Weight of a measure.
    pub fn weight_of(&self, id: &str) -> f64 {
        self.overrides.get(id).copied().unwrap_or(1.0)
    }
}

/// Per-measure normalization ceilings.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Benchmarks {
    per_measure: HashMap<String, f64>,
}

impl Benchmarks {
    /// Derives source benchmarks as the `quantile` (e.g. 0.9) of each
    /// measure's *oriented* value across all sources — the synthetic
    /// stand-in for "assessing well-known, highly-ranked sources".
    pub fn for_sources(ctx: &SourceContext<'_>, quantile: f64) -> Self {
        let catalog = source_catalog();
        let mut per_measure = HashMap::new();
        for m in &catalog {
            let values: Vec<f64> = ctx
                .corpus
                .sources()
                .iter()
                .map(|s| oriented(&m.spec, (m.eval)(ctx, s.id)))
                .collect();
            let bench = obs_stats::desc::quantile(&values, quantile).unwrap_or(1.0);
            per_measure.insert(m.spec.id.to_owned(), bench);
        }
        Benchmarks { per_measure }
    }

    /// Derives contributor benchmarks the same way over all users.
    pub fn for_contributors(ctx: &SourceContext<'_>, quantile: f64) -> Self {
        let catalog = contributor_catalog();
        let mut per_measure = HashMap::new();
        for m in &catalog {
            let values: Vec<f64> = ctx
                .corpus
                .users()
                .iter()
                .map(|u| oriented(&m.spec, (m.eval)(ctx, u.id)))
                .collect();
            let bench = obs_stats::desc::quantile(&values, quantile).unwrap_or(1.0);
            per_measure.insert(m.spec.id.to_owned(), bench);
        }
        Benchmarks { per_measure }
    }

    /// The ceiling for a measure (1 when unknown).
    pub fn benchmark(&self, id: &str) -> f64 {
        self.per_measure.get(id).copied().unwrap_or(1.0)
    }

    /// Manually sets a benchmark (for tests and custom panels).
    pub fn set(&mut self, id: impl Into<String>, value: f64) {
        self.per_measure.insert(id.into(), value);
    }
}

/// One evaluated measure inside a quality score.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasureScore {
    /// Measure id.
    pub id: &'static str,
    /// Raw value as defined in the paper's table.
    pub raw: f64,
    /// Benchmark-normalized, orientation-corrected value in `[0, 1]`.
    pub normalized: f64,
    /// Weight used in the aggregation.
    pub weight: f64,
    /// Table row.
    pub dimension: QualityDimension,
    /// Table column.
    pub attribute: Attribute,
    /// Whether the measure is DI-dependent.
    pub domain_dependent: bool,
}

/// A full quality assessment of a source or contributor.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityScore {
    /// Per-measure detail.
    pub measures: Vec<MeasureScore>,
    /// Weighted average of the normalized measures, in `[0, 1]`.
    pub overall: f64,
}

impl QualityScore {
    fn aggregate(measures: Vec<MeasureScore>) -> QualityScore {
        let wsum: f64 = measures.iter().map(|m| m.weight).sum();
        let overall = if wsum > 0.0 {
            measures
                .iter()
                .map(|m| m.normalized * m.weight)
                .sum::<f64>()
                / wsum
        } else {
            0.0
        };
        QualityScore { measures, overall }
    }

    /// Mean normalized score per dimension (present dimensions only).
    pub fn by_dimension(&self) -> Vec<(QualityDimension, f64)> {
        QualityDimension::ALL
            .iter()
            .filter_map(|&dim| {
                let vals: Vec<f64> = self
                    .measures
                    .iter()
                    .filter(|m| m.dimension == dim)
                    .map(|m| m.normalized)
                    .collect();
                if vals.is_empty() {
                    None
                } else {
                    Some((dim, vals.iter().sum::<f64>() / vals.len() as f64))
                }
            })
            .collect()
    }

    /// Mean normalized score per attribute (present attributes only).
    pub fn by_attribute(&self) -> Vec<(Attribute, f64)> {
        let mut out = Vec::new();
        for &attr in &[
            Attribute::Relevance,
            Attribute::BreadthOfContributions,
            Attribute::Traffic,
            Attribute::Activity,
            Attribute::Liveliness,
        ] {
            let vals: Vec<f64> = self
                .measures
                .iter()
                .filter(|m| m.attribute == attr)
                .map(|m| m.normalized)
                .collect();
            if !vals.is_empty() {
                out.push((attr, vals.iter().sum::<f64>() / vals.len() as f64));
            }
        }
        out
    }

    /// The raw value of one measure, when present.
    pub fn raw(&self, id: &str) -> Option<f64> {
        self.measures.iter().find(|m| m.id == id).map(|m| m.raw)
    }
}

fn score_measure(
    spec: &MeasureSpec,
    raw: f64,
    weights: &Weights,
    benchmarks: &Benchmarks,
) -> MeasureScore {
    let normalized = benchmark_relative(oriented(spec, raw), benchmarks.benchmark(spec.id));
    MeasureScore {
        id: spec.id,
        raw,
        normalized,
        weight: weights.weight_of(spec.id),
        dimension: spec.dimension,
        attribute: spec.attribute,
        domain_dependent: spec.domain_dependent,
    }
}

/// Assesses one source against the full Table 1 catalog.
pub fn assess_source(
    ctx: &SourceContext<'_>,
    source: SourceId,
    weights: &Weights,
    benchmarks: &Benchmarks,
) -> QualityScore {
    let measures = source_catalog()
        .iter()
        .map(|m: &SourceMeasure| score_measure(&m.spec, (m.eval)(ctx, source), weights, benchmarks))
        .collect();
    QualityScore::aggregate(measures)
}

/// Assesses one contributor against the full Table 2 catalog.
pub fn assess_contributor(
    ctx: &SourceContext<'_>,
    user: UserId,
    weights: &Weights,
    benchmarks: &Benchmarks,
) -> QualityScore {
    let measures = contributor_catalog()
        .iter()
        .map(|m: &ContributorMeasure| {
            score_measure(&m.spec, (m.eval)(ctx, user), weights, benchmarks)
        })
        .collect();
    QualityScore::aggregate(measures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::Provenance;
    use obs_analytics::{AlexaPanel, FeedRegistry, LinkGraph};
    use obs_model::DomainOfInterest;
    use obs_synth::{World, WorldConfig};

    struct Fixture {
        world: World,
        panel: AlexaPanel,
        links: LinkGraph,
        feeds: FeedRegistry,
        di: DomainOfInterest,
    }

    impl Fixture {
        fn ctx(&self) -> SourceContext<'_> {
            SourceContext::new(
                &self.world.corpus,
                &self.panel,
                &self.links,
                &self.feeds,
                &self.di,
                self.world.now,
            )
        }
    }

    fn fixture() -> Fixture {
        let world = World::generate(WorldConfig::small(707));
        let panel = AlexaPanel::simulate(&world, 1);
        let links = LinkGraph::simulate(&world, 2);
        let feeds = FeedRegistry::simulate(&world, 3);
        let di = world.tourism_di();
        Fixture {
            world,
            panel,
            links,
            feeds,
            di,
        }
    }

    #[test]
    fn orientation_flips_rank_like_measures() {
        let spec = MeasureSpec {
            id: "t",
            name: "t",
            dimension: QualityDimension::Time,
            attribute: Attribute::Traffic,
            domain_dependent: false,
            provenance: Provenance::Alexa,
            orientation: Orientation::LowerIsBetter,
            in_componentization: true,
        };
        assert!(oriented(&spec, 1.0) > oriented(&spec, 10.0));
        let spec_hi = MeasureSpec {
            orientation: Orientation::HigherIsBetter,
            ..spec
        };
        assert!(oriented(&spec_hi, 10.0) > oriented(&spec_hi, 1.0));
    }

    #[test]
    fn scores_are_in_unit_interval() {
        let f = fixture();
        let ctx = f.ctx();
        let weights = Weights::uniform();
        let benchmarks = Benchmarks::for_sources(&ctx, 0.9);
        for s in f.world.corpus.sources() {
            let score = assess_source(&ctx, s.id, &weights, &benchmarks);
            assert!((0.0..=1.0).contains(&score.overall), "{}", score.overall);
            for m in &score.measures {
                assert!(
                    (0.0..=1.0).contains(&m.normalized),
                    "{}: {}",
                    m.id,
                    m.normalized
                );
            }
            assert_eq!(score.measures.len(), 19);
        }
    }

    #[test]
    fn contributor_scores_cover_table2() {
        let f = fixture();
        let ctx = f.ctx();
        let weights = Weights::uniform();
        let benchmarks = Benchmarks::for_contributors(&ctx, 0.9);
        let u = f.world.corpus.users().first().unwrap();
        let score = assess_contributor(&ctx, u.id, &weights, &benchmarks);
        assert_eq!(score.measures.len(), 15);
        assert!((0.0..=1.0).contains(&score.overall));
        // Activity attribute present, Traffic absent.
        assert!(score
            .by_attribute()
            .iter()
            .any(|(a, _)| *a == Attribute::Activity));
        assert!(score
            .by_attribute()
            .iter()
            .all(|(a, _)| *a != Attribute::Traffic));
    }

    #[test]
    fn benchmarks_cap_top_sources_near_one() {
        let f = fixture();
        let ctx = f.ctx();
        let weights = Weights::uniform();
        let benchmarks = Benchmarks::for_sources(&ctx, 0.9);
        // At least one source reaches normalized 1.0 on some measure
        // (whoever is above the 90th percentile saturates).
        let saturated = f.world.corpus.sources().iter().any(|s| {
            assess_source(&ctx, s.id, &weights, &benchmarks)
                .measures
                .iter()
                .any(|m| (m.normalized - 1.0).abs() < 1e-12)
        });
        assert!(saturated);
    }

    #[test]
    fn weights_shift_the_overall() {
        let f = fixture();
        let ctx = f.ctx();
        let benchmarks = Benchmarks::for_sources(&ctx, 0.9);
        let s = f.world.corpus.sources().first().unwrap();
        let uniform = assess_source(&ctx, s.id, &Weights::uniform(), &benchmarks);
        // Put all weight on one measure: overall becomes that
        // measure's normalized value.
        let mut only_bounce = Weights::uniform();
        for m in crate::source_measures::source_catalog() {
            only_bounce = only_bounce.with(m.spec.id, 0.0);
        }
        let only_bounce = only_bounce.with("src.dependability.relevance", 1.0);
        let weighted = assess_source(&ctx, s.id, &only_bounce, &benchmarks);
        let bounce_norm = weighted
            .measures
            .iter()
            .find(|m| m.id == "src.dependability.relevance")
            .unwrap()
            .normalized;
        assert!((weighted.overall - bounce_norm).abs() < 1e-12);
        assert_ne!(uniform.overall, weighted.overall);
    }

    #[test]
    fn dimension_breakdown_covers_all_six() {
        let f = fixture();
        let ctx = f.ctx();
        let weights = Weights::uniform();
        let benchmarks = Benchmarks::for_sources(&ctx, 0.9);
        let s = f.world.corpus.sources().first().unwrap();
        let score = assess_source(&ctx, s.id, &weights, &benchmarks);
        assert_eq!(score.by_dimension().len(), 6);
    }

    #[test]
    fn manual_benchmark_override() {
        let mut b = Benchmarks::default();
        assert_eq!(b.benchmark("x"), 1.0);
        b.set("x", 50.0);
        assert_eq!(b.benchmark("x"), 50.0);
    }
}
