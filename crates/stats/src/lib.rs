//! # obs-stats — self-contained statistics substrate
//!
//! The paper validates its quality model with an SPSS-style toolbox:
//! Kendall tau rank correlation (Section 4.1), principal-component
//! factor analysis and linear regressions with significance levels
//! (Table 3), and one-way ANOVA with Bonferroni post-hoc paired
//! comparisons (Table 4). No statistics crate is available offline, so
//! this crate implements the whole chain from special functions up:
//!
//! * [`special`] — log-gamma, regularized incomplete beta, `erf`;
//! * [`dist`] — Student-t, Fisher F and normal distributions (CDFs and
//!   tail probabilities used to turn statistics into p-values);
//! * [`desc`] — descriptive statistics;
//! * [`matrix`] — a small dense row-major matrix;
//! * [`rank`] — average ranks with tie handling;
//! * [`correlation`] — Pearson, Spearman, Kendall tau-b (Knight's
//!   O(n log n) algorithm);
//! * [`regression`] — OLS with coefficient t-tests, R², F-test;
//! * [`eigen`] — cyclic Jacobi eigendecomposition of symmetric
//!   matrices;
//! * [`pca`] — correlation-matrix PCA with varimax rotation and
//!   Kaiser component retention;
//! * [`anova`] — one-way ANOVA and Bonferroni-adjusted pairwise
//!   comparisons;
//! * [`normalize`] — min-max, z-score and benchmark-relative scaling
//!   (the paper normalizes measures against "benchmarks derived from
//!   the assessment of well-known, highly-ranked sources").
//!
//! Every algorithm is validated against closed-form cases in unit
//! tests and against brute-force reference implementations in
//! property tests.

#![warn(missing_docs)]

pub mod anova;
pub mod correlation;
pub mod desc;
pub mod dist;
pub mod eigen;
mod error;
pub mod matrix;
pub mod normalize;
pub mod pca;
pub mod rank;
pub mod regression;
pub mod special;

pub use anova::{bonferroni_pairwise, one_way_anova, AnovaResult, PairwiseComparison};
pub use correlation::{kendall_tau_b, pearson, spearman};
pub use desc::Summary;
pub use error::StatsError;
pub use matrix::Matrix;
pub use pca::{Pca, PcaOptions};
pub use rank::{average_ranks, Direction};
pub use regression::{ols, simple_regression, Ols};
