//! Errors raised by statistical routines.

/// Errors raised by the statistics substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// Two inputs were expected to have the same length/shape.
    DimensionMismatch {
        /// What was being computed.
        context: &'static str,
        /// First dimension observed.
        left: usize,
        /// Second dimension observed.
        right: usize,
    },
    /// The input is too small for the requested statistic.
    NotEnoughData {
        /// What was being computed.
        context: &'static str,
        /// Observations required.
        needed: usize,
        /// Observations provided.
        got: usize,
    },
    /// A linear system was singular (collinear regressors, zero
    /// variance, …).
    Singular(&'static str),
    /// An iterative algorithm failed to converge.
    NoConvergence(&'static str),
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::DimensionMismatch {
                context,
                left,
                right,
            } => {
                write!(f, "{context}: dimension mismatch ({left} vs {right})")
            }
            StatsError::NotEnoughData {
                context,
                needed,
                got,
            } => {
                write!(
                    f,
                    "{context}: needs at least {needed} observations, got {got}"
                )
            }
            StatsError::Singular(context) => write!(f, "{context}: singular system"),
            StatsError::NoConvergence(context) => write!(f, "{context}: did not converge"),
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_context() {
        let e = StatsError::DimensionMismatch {
            context: "pearson",
            left: 3,
            right: 4,
        };
        assert!(e.to_string().contains("pearson"));
        assert!(e.to_string().contains("3 vs 4"));
        let e = StatsError::NotEnoughData {
            context: "anova",
            needed: 2,
            got: 1,
        };
        assert!(e.to_string().contains("at least 2"));
    }
}
