//! Rank assignment with tie handling.
//!
//! The Section 4.1 experiment compares two *orderings* of the same
//! search results; both Spearman correlation and positional distances
//! need fractional ("average") ranks when scores tie.

/// Whether larger values should receive better (smaller) ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Rank 1 goes to the smallest value.
    Ascending,
    /// Rank 1 goes to the largest value (typical for quality scores).
    Descending,
}

/// Assigns 1-based average ranks to `xs`.
///
/// Tied values share the mean of the ranks they span, so the output
/// sums to `n(n+1)/2` regardless of ties.
pub fn average_ranks(xs: &[f64], direction: Direction) -> Vec<f64> {
    let n = xs.len();
    let mut order: Vec<usize> = (0..n).collect();
    match direction {
        Direction::Ascending => order.sort_by(|&a, &b| xs[a].total_cmp(&xs[b])),
        Direction::Descending => order.sort_by(|&a, &b| xs[b].total_cmp(&xs[a])),
    }
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        // Find the tie group [i, j).
        let mut j = i + 1;
        while j < n && xs[order[j]] == xs[order[i]] {
            j += 1;
        }
        // Average of 1-based ranks i+1 ..= j.
        let avg = (i + 1 + j) as f64 / 2.0;
        for &idx in &order[i..j] {
            ranks[idx] = avg;
        }
        i = j;
    }
    ranks
}

/// Assigns strict 1-based positions (ties broken by original index,
/// i.e. a stable sort). This mirrors what a search-result page shows:
/// every item has exactly one position.
pub fn positions(xs: &[f64], direction: Direction) -> Vec<usize> {
    let n = xs.len();
    let mut order: Vec<usize> = (0..n).collect();
    match direction {
        Direction::Ascending => order.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]).then(a.cmp(&b))),
        Direction::Descending => order.sort_by(|&a, &b| xs[b].total_cmp(&xs[a]).then(a.cmp(&b))),
    }
    let mut pos = vec![0usize; n];
    for (p, &idx) in order.iter().enumerate() {
        pos[idx] = p + 1;
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_without_ties() {
        let r = average_ranks(&[10.0, 30.0, 20.0], Direction::Ascending);
        assert_eq!(r, vec![1.0, 3.0, 2.0]);
        let r = average_ranks(&[10.0, 30.0, 20.0], Direction::Descending);
        assert_eq!(r, vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn tied_values_share_average_rank() {
        let r = average_ranks(&[1.0, 2.0, 2.0, 3.0], Direction::Ascending);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn rank_sum_is_invariant_under_ties() {
        let with_ties = average_ranks(&[5.0, 5.0, 5.0, 1.0], Direction::Descending);
        let sum: f64 = with_ties.iter().sum();
        assert_eq!(sum, 10.0); // 4·5/2
    }

    #[test]
    fn positions_are_a_permutation() {
        let p = positions(&[0.5, 0.9, 0.1, 0.9], Direction::Descending);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3, 4]);
        // Stable tie-break: first 0.9 beats second 0.9.
        assert!(p[1] < p[3]);
    }

    #[test]
    fn empty_input() {
        assert!(average_ranks(&[], Direction::Ascending).is_empty());
        assert!(positions(&[], Direction::Descending).is_empty());
    }

    #[test]
    fn all_equal_values() {
        let r = average_ranks(&[7.0; 5], Direction::Ascending);
        assert!(r.iter().all(|&x| x == 3.0));
    }
}
