//! Descriptive statistics.

/// Arithmetic mean; `None` for empty input.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Unbiased sample variance (n − 1 denominator); `None` when fewer
/// than two observations.
pub fn variance(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    Some(ss / (xs.len() - 1) as f64)
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Linear-interpolated quantile `q ∈ [0, 1]` (type-7, the R default);
/// `None` for empty input.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let h = q * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let frac = h - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (0.5 quantile).
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Five-number-plus summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub median: f64,
    /// Sample standard deviation (0 when n < 2).
    pub std_dev: f64,
}

impl Summary {
    /// Summarizes a sample; `None` for empty input.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
        }
        Some(Summary {
            n: xs.len(),
            min,
            max,
            mean: mean(xs)?,
            median: median(xs)?,
            std_dev: std_dev(xs).unwrap_or(0.0),
        })
    }

    /// Max/min span in orders of magnitude (base 10); `None` when the
    /// minimum is non-positive. Section 4.2 of the paper characterizes
    /// its Twitter dataset by a ~4-order-of-magnitude spread.
    pub fn orders_of_magnitude(&self) -> Option<f64> {
        if self.min <= 0.0 || self.max <= 0.0 {
            return None;
        }
        Some((self.max / self.min).log10())
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} min={:.3} med={:.3} mean={:.3} max={:.3} sd={:.3}",
            self.n, self.min, self.median, self.mean, self.max, self.std_dev
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), Some(5.0));
        // Sample variance = 32/7.
        assert!((variance(&xs).unwrap() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_yield_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[1.0]), None);
        assert_eq!(median(&[]), None);
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert!((quantile(&xs, 0.25).unwrap() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn summary_of_singleton() {
        let s = Summary::of(&[5.0]).unwrap();
        assert_eq!(s.n, 1);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn orders_of_magnitude() {
        let s = Summary::of(&[1.0, 10_000.0]).unwrap();
        assert!((s.orders_of_magnitude().unwrap() - 4.0).abs() < 1e-12);
        let z = Summary::of(&[0.0, 10.0]).unwrap();
        assert_eq!(z.orders_of_magnitude(), None);
    }

    #[test]
    fn quantile_clamps_q() {
        let xs = [1.0, 2.0];
        assert_eq!(quantile(&xs, -0.5), Some(1.0));
        assert_eq!(quantile(&xs, 1.5), Some(2.0));
    }
}
