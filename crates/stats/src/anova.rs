//! One-way ANOVA and Bonferroni post-hoc pairwise comparisons.
//!
//! Section 4.2: *"we used the ANOVA test […] A further post-hoc
//! analysis has then allowed us to make an ordinal comparison among
//! the different variables […] performed through the Bonferroni
//! test"*. Table 4 reports, per measure and per pair of account
//! kinds, whether the mean difference is `> 0`, `< 0` or `= 0`
//! together with the significance. [`one_way_anova`] and
//! [`bonferroni_pairwise`] regenerate those cells.

use crate::dist::{FisherF, StudentT};
use crate::StatsError;

/// Result of a one-way ANOVA.
#[derive(Debug, Clone, PartialEq)]
pub struct AnovaResult {
    /// F statistic.
    pub f_statistic: f64,
    /// p-value of the F test.
    pub p_value: f64,
    /// Between-groups degrees of freedom (k − 1).
    pub df_between: usize,
    /// Within-groups degrees of freedom (N − k).
    pub df_within: usize,
    /// Between-groups sum of squares.
    pub ss_between: f64,
    /// Within-groups sum of squares.
    pub ss_within: f64,
    /// Mean square within (the pooled variance reused by the
    /// post-hoc tests).
    pub ms_within: f64,
    /// Group means, in input order.
    pub group_means: Vec<f64>,
    /// Group sizes, in input order.
    pub group_sizes: Vec<usize>,
}

/// Direction of a paired mean difference, as printed in Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DifferenceDirection {
    /// First group's mean is significantly larger (`> 0`).
    Greater,
    /// First group's mean is significantly smaller (`< 0`).
    Less,
    /// No significant difference (`= 0`).
    Equal,
}

impl DifferenceDirection {
    /// Table 4 rendering.
    pub fn symbol(self) -> &'static str {
        match self {
            DifferenceDirection::Greater => "> 0",
            DifferenceDirection::Less => "< 0",
            DifferenceDirection::Equal => "= 0",
        }
    }
}

impl std::fmt::Display for DifferenceDirection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.symbol())
    }
}

/// One Bonferroni-adjusted pairwise comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct PairwiseComparison {
    /// Index of the first group.
    pub group_a: usize,
    /// Index of the second group.
    pub group_b: usize,
    /// Mean difference `mean_a − mean_b`.
    pub mean_difference: f64,
    /// t statistic (pooled MSW variance).
    pub t_statistic: f64,
    /// Bonferroni-adjusted two-sided p-value (clamped to 1).
    pub p_adjusted: f64,
    /// Direction at the given significance threshold.
    pub direction: DifferenceDirection,
}

/// Runs a one-way ANOVA over `groups` (each slice is one group's
/// observations).
pub fn one_way_anova(groups: &[&[f64]]) -> Result<AnovaResult, StatsError> {
    let k = groups.len();
    if k < 2 {
        return Err(StatsError::NotEnoughData {
            context: "one_way_anova: groups",
            needed: 2,
            got: k,
        });
    }
    let n_total: usize = groups.iter().map(|g| g.len()).sum();
    for g in groups {
        if g.is_empty() {
            return Err(StatsError::NotEnoughData {
                context: "one_way_anova: empty group",
                needed: 1,
                got: 0,
            });
        }
    }
    if n_total <= k {
        return Err(StatsError::NotEnoughData {
            context: "one_way_anova: observations",
            needed: k + 1,
            got: n_total,
        });
    }

    let grand_mean: f64 = groups.iter().flat_map(|g| g.iter()).sum::<f64>() / n_total as f64;

    let mut group_means = Vec::with_capacity(k);
    let mut group_sizes = Vec::with_capacity(k);
    let mut ss_between = 0.0;
    let mut ss_within = 0.0;
    for g in groups {
        let m = g.iter().sum::<f64>() / g.len() as f64;
        ss_between += g.len() as f64 * (m - grand_mean) * (m - grand_mean);
        ss_within += g.iter().map(|x| (x - m) * (x - m)).sum::<f64>();
        group_means.push(m);
        group_sizes.push(g.len());
    }

    let df_between = k - 1;
    let df_within = n_total - k;
    let ms_between = ss_between / df_between as f64;
    let ms_within = ss_within / df_within as f64;

    let (f_statistic, p_value) = if ms_within <= 0.0 {
        // All groups internally constant: either no effect at all or
        // an infinitely strong one.
        if ss_between <= 0.0 {
            (0.0, 1.0)
        } else {
            (f64::INFINITY, 0.0)
        }
    } else {
        let f = ms_between / ms_within;
        (f, FisherF::new(df_between as f64, df_within as f64).sf(f))
    };

    Ok(AnovaResult {
        f_statistic,
        p_value,
        df_between,
        df_within,
        ss_between,
        ss_within,
        ms_within,
        group_means,
        group_sizes,
    })
}

/// All pairwise comparisons with Bonferroni adjustment, using the
/// ANOVA's pooled within-group variance (the SPSS procedure the paper
/// followed). `alpha` is the family-wise significance threshold used
/// to call a direction (the paper uses 0.05).
pub fn bonferroni_pairwise(
    groups: &[&[f64]],
    alpha: f64,
) -> Result<Vec<PairwiseComparison>, StatsError> {
    let anova = one_way_anova(groups)?;
    let k = groups.len();
    let n_pairs = (k * (k - 1) / 2) as f64;
    let t_dist = StudentT::new(anova.df_within as f64);

    let mut out = Vec::with_capacity(k * (k - 1) / 2);
    for a in 0..k {
        for b in (a + 1)..k {
            let diff = anova.group_means[a] - anova.group_means[b];
            let (t, p_adj) = if anova.ms_within <= 0.0 {
                if diff == 0.0 {
                    (0.0, 1.0)
                } else {
                    (f64::INFINITY * diff.signum(), 0.0)
                }
            } else {
                let se = (anova.ms_within
                    * (1.0 / anova.group_sizes[a] as f64 + 1.0 / anova.group_sizes[b] as f64))
                    .sqrt();
                let t = diff / se;
                let p = t_dist.two_sided_p(t);
                (t, (p * n_pairs).min(1.0))
            };
            let direction = if p_adj < alpha {
                if diff > 0.0 {
                    DifferenceDirection::Greater
                } else {
                    DifferenceDirection::Less
                }
            } else {
                DifferenceDirection::Equal
            };
            out.push(PairwiseComparison {
                group_a: a,
                group_b: b,
                mean_difference: diff,
                t_statistic: t,
                p_adjusted: p_adj,
                direction,
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn anova_matches_hand_computation() {
        // Classic textbook example.
        // g1 = [6,8,4,5,3,4], g2 = [8,12,9,11,6,8], g3 = [13,9,11,8,7,12]
        // F = 9.3, p ≈ 0.0023 (df 2, 15)
        let g1 = [6.0, 8.0, 4.0, 5.0, 3.0, 4.0];
        let g2 = [8.0, 12.0, 9.0, 11.0, 6.0, 8.0];
        let g3 = [13.0, 9.0, 11.0, 8.0, 7.0, 12.0];
        let res = one_way_anova(&[&g1, &g2, &g3]).unwrap();
        assert_eq!(res.df_between, 2);
        assert_eq!(res.df_within, 15);
        close(res.f_statistic, 9.3, 0.05);
        assert!(res.p_value < 0.01);
        close(res.group_means[0], 5.0, 1e-12);
        close(res.group_means[1], 9.0, 1e-12);
        close(res.group_means[2], 10.0, 1e-12);
    }

    #[test]
    fn identical_groups_give_f_zero() {
        let g = [1.0, 2.0, 3.0];
        let res = one_way_anova(&[&g, &g]).unwrap();
        close(res.f_statistic, 0.0, 1e-12);
        close(res.p_value, 1.0, 1e-9);
    }

    #[test]
    fn two_group_anova_equals_t_test_squared() {
        let a = [5.1, 4.9, 6.0, 5.5, 5.2];
        let b = [6.8, 7.2, 6.5, 7.0, 6.9];
        let res = one_way_anova(&[&a, &b]).unwrap();
        // Pooled two-sample t for these groups.
        let pairs = bonferroni_pairwise(&[&a, &b], 0.05).unwrap();
        assert_eq!(pairs.len(), 1);
        close(pairs[0].t_statistic.powi(2), res.f_statistic, 1e-9);
        // One pair => Bonferroni multiplier 1, so p values agree.
        close(pairs[0].p_adjusted, res.p_value, 1e-9);
    }

    #[test]
    fn directions_reflect_mean_ordering() {
        let low = [1.0, 1.2, 0.8, 1.1, 0.9, 1.0, 1.05, 0.95];
        let mid = [5.0, 5.2, 4.8, 5.1, 4.9, 5.0, 5.05, 4.95];
        let high = [9.0, 9.2, 8.8, 9.1, 8.9, 9.0, 9.05, 8.95];
        let pairs = bonferroni_pairwise(&[&low, &mid, &high], 0.05).unwrap();
        assert_eq!(pairs.len(), 3);
        // (low, mid): low < mid
        assert_eq!(pairs[0].direction, DifferenceDirection::Less);
        // (low, high)
        assert_eq!(pairs[1].direction, DifferenceDirection::Less);
        // (mid, high)
        assert_eq!(pairs[2].direction, DifferenceDirection::Less);
        assert!(pairs.iter().all(|p| p.p_adjusted < 0.001));
    }

    #[test]
    fn overlapping_groups_are_equal() {
        let a = [4.9, 5.1, 5.0, 5.2, 4.8, 5.0];
        let b = [5.0, 5.05, 4.95, 5.15, 4.85, 5.05];
        let pairs = bonferroni_pairwise(&[&a, &b], 0.05).unwrap();
        assert_eq!(pairs[0].direction, DifferenceDirection::Equal);
        assert_eq!(pairs[0].direction.symbol(), "= 0");
    }

    #[test]
    fn bonferroni_inflates_p_values() {
        // Three groups → 3 comparisons → p multiplied by 3.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [1.5, 2.5, 3.5, 4.5, 5.5];
        let c = [10.0, 11.0, 12.0, 13.0, 14.0];
        let pairs = bonferroni_pairwise(&[&a, &b, &c], 0.05).unwrap();
        let anova = one_way_anova(&[&a, &b, &c]).unwrap();
        let t_dist = StudentT::new(anova.df_within as f64);
        let raw_p = t_dist.two_sided_p(pairs[0].t_statistic);
        close(pairs[0].p_adjusted, (raw_p * 3.0).min(1.0), 1e-12);
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        let g = [1.0, 2.0];
        assert!(one_way_anova(&[&g]).is_err());
        let empty: [f64; 0] = [];
        assert!(one_way_anova(&[&g, &empty]).is_err());
        let single_a = [1.0];
        let single_b = [2.0];
        assert!(one_way_anova(&[&single_a, &single_b]).is_err());
    }

    #[test]
    fn constant_groups_with_different_means() {
        let a = [2.0, 2.0, 2.0];
        let b = [3.0, 3.0, 3.0];
        let res = one_way_anova(&[&a, &b]).unwrap();
        assert!(res.f_statistic.is_infinite());
        close(res.p_value, 0.0, 1e-12);
        let pairs = bonferroni_pairwise(&[&a, &b], 0.05).unwrap();
        assert_eq!(pairs[0].direction, DifferenceDirection::Less);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn f_is_nonnegative_and_p_in_unit_interval(
                g1 in proptest::collection::vec(-100.0f64..100.0, 3..20),
                g2 in proptest::collection::vec(-100.0f64..100.0, 3..20),
                g3 in proptest::collection::vec(-100.0f64..100.0, 3..20),
            ) {
                let res = one_way_anova(&[&g1, &g2, &g3]).unwrap();
                prop_assert!(res.f_statistic >= 0.0);
                prop_assert!((0.0..=1.0).contains(&res.p_value));
                prop_assert!(res.ss_between >= -1e-9);
                prop_assert!(res.ss_within >= -1e-9);
            }

            #[test]
            fn pairwise_directions_are_antisymmetric_in_mean_sign(
                g1 in proptest::collection::vec(-50.0f64..50.0, 4..15),
                g2 in proptest::collection::vec(-50.0f64..50.0, 4..15),
            ) {
                let ab = bonferroni_pairwise(&[&g1, &g2], 0.05).unwrap();
                let ba = bonferroni_pairwise(&[&g2, &g1], 0.05).unwrap();
                prop_assert!((ab[0].mean_difference + ba[0].mean_difference).abs() < 1e-9);
                prop_assert!((ab[0].p_adjusted - ba[0].p_adjusted).abs() < 1e-9);
                let flipped = match ab[0].direction {
                    DifferenceDirection::Greater => DifferenceDirection::Less,
                    DifferenceDirection::Less => DifferenceDirection::Greater,
                    DifferenceDirection::Equal => DifferenceDirection::Equal,
                };
                prop_assert_eq!(ba[0].direction, flipped);
            }
        }
    }
}
