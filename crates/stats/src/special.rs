//! Special functions: log-gamma, regularized incomplete beta, `erf`.
//!
//! These are the numerical bedrock for every p-value in the crate:
//! the Student-t and F tail probabilities reduce to the regularized
//! incomplete beta function, and the normal CDF reduces to `erf`.
//! Implementations follow the classic Lanczos / modified-Lentz
//! formulations with double-precision accuracy (absolute error below
//! ~1e-10 across the tested domain).

/// Natural log of the gamma function, Lanczos approximation (g = 7,
/// 9 coefficients). Valid for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients from the Lanczos g=7, n=9 fit.
    const COEFFS: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    debug_assert!(x > 0.0, "ln_gamma needs x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    // Lanczos g=7 leading coefficient; the trailing digit beyond f64
    // precision is dropped (same bit pattern).
    let mut acc = 0.999_999_999_999_809_9;
    for (i, &c) in COEFFS.iter().enumerate() {
        acc += c / (x + (i + 1) as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Continued-fraction kernel of the incomplete beta function
/// (modified Lentz's method, Numerical Recipes `betacf`).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-14;
    const FPMIN: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            return h;
        }
    }
    // Convergence is extremely robust for the (a, b) ranges used by
    // t/F tails; return the best estimate rather than poisoning the
    // caller with NaN.
    h
}

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0`
/// and `x ∈ [0, 1]`.
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && b > 0.0, "beta_inc needs a,b > 0");
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Regularized lower incomplete gamma `P(a, x)`: series expansion for
/// `x < a + 1`, continued fraction otherwise (Numerical Recipes
/// `gammp`, double precision).
pub fn gamma_p(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && x >= 0.0, "gamma_p needs a > 0, x >= 0");
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && x >= 0.0, "gamma_q needs a > 0, x >= 0");
    if x <= 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_series(a, x)
    } else {
        gamma_cf(a, x)
    }
}

/// Series representation of `P(a, x)`, convergent for `x < a + 1`.
fn gamma_series(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 3e-16;
    let mut ap = a;
    let mut term = 1.0 / a;
    let mut sum = term;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction representation of `Q(a, x)`, convergent for
/// `x ≥ a + 1` (modified Lentz).
fn gamma_cf(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 3e-16;
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Error function via the identity `erf(x) = P(1/2, x²)` (double
/// precision, ~1e-14 relative accuracy).
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let v = gamma_p(0.5, x * x);
    if x > 0.0 {
        v
    } else {
        -v
    }
}

/// Complementary error function `erfc(x) = Q(1/2, x²)` for positive
/// `x` (keeps full precision in the far tail).
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x == 0.0 {
        return 1.0;
    }
    gamma_q(0.5, x * x)
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_known_values() {
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), 24f64.ln(), 1e-10); // Γ(5) = 4! = 24
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-10);
        close(ln_gamma(10.0), 362_880f64.ln(), 1e-9); // 9!
    }

    #[test]
    fn ln_gamma_reflection_region() {
        // Γ(0.25) ≈ 3.625609908
        close(ln_gamma(0.25), 3.625_609_908_221_908f64.ln(), 1e-9);
    }

    #[test]
    fn beta_inc_boundaries() {
        assert_eq!(beta_inc(2.0, 3.0, 0.0), 0.0);
        assert_eq!(beta_inc(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn beta_inc_symmetry() {
        // I_x(a,b) = 1 − I_{1−x}(b,a)
        for &(a, b, x) in &[(2.0, 3.0, 0.3), (0.5, 0.5, 0.7), (5.0, 1.5, 0.42)] {
            close(beta_inc(a, b, x), 1.0 - beta_inc(b, a, 1.0 - x), 1e-10);
        }
    }

    #[test]
    fn beta_inc_uniform_case() {
        // I_x(1,1) = x
        for x in [0.1, 0.25, 0.5, 0.9] {
            close(beta_inc(1.0, 1.0, x), x, 1e-12);
        }
    }

    #[test]
    fn beta_inc_closed_form_a2_b1() {
        // I_x(2,1) = x^2
        for x in [0.2, 0.5, 0.8] {
            close(beta_inc(2.0, 1.0, x), x * x, 1e-12);
        }
    }

    #[test]
    fn beta_inc_is_monotone_in_x() {
        let mut prev = 0.0;
        for i in 0..=100 {
            let x = i as f64 / 100.0;
            let v = beta_inc(3.5, 2.25, x);
            assert!(v >= prev - 1e-14, "non-monotone at x={x}");
            prev = v;
        }
    }

    #[test]
    fn erf_known_values() {
        close(erf(0.0), 0.0, 1e-12);
        close(erf(1.0), 0.842_700_792_949_715, 2e-7);
        close(erf(2.0), 0.995_322_265_018_953, 2e-7);
        close(erf(-1.0), -0.842_700_792_949_715, 2e-7);
    }

    #[test]
    fn normal_cdf_known_values() {
        close(normal_cdf(0.0), 0.5, 1e-9);
        close(normal_cdf(1.959_964), 0.975, 1e-5);
        close(normal_cdf(-1.959_964), 0.025, 1e-5);
        close(normal_cdf(3.0), 0.998_650_101_968_37, 1e-6);
    }

    #[test]
    fn erfc_tail_is_positive_and_tiny() {
        let v = erfc(5.0);
        assert!(v > 0.0);
        assert!(v < 2e-11);
    }
}
