//! Principal-component factor analysis with varimax rotation.
//!
//! Section 4.1: *"we performed a factor analysis, based on the
//! principal component technique […] this analysis allowed us to
//! reduce the measures to three component indicators: traffic,
//! participation, and time, each one aggregating a subset of the
//! original measures"* (Table 3). This module provides exactly that
//! pipeline: correlation-matrix PCA, Kaiser retention, varimax
//! rotation, and the variable→component assignment that forms the
//! table's grouping.

use crate::eigen::symmetric_eigen;
use crate::matrix::Matrix;
use crate::StatsError;

/// How many components to retain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Retention {
    /// Keep components with eigenvalue > 1 (Kaiser criterion, the
    /// SPSS default the paper's era used).
    Kaiser,
    /// Keep exactly `k` components.
    Fixed(usize),
    /// Keep the smallest number of components explaining at least
    /// this fraction of total variance.
    ExplainedVariance(f64),
}

/// PCA configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcaOptions {
    /// Component retention rule.
    pub retention: Retention,
    /// Whether to varimax-rotate the retained loadings.
    pub varimax: bool,
    /// Iteration cap for the rotation.
    pub max_rotation_iter: usize,
}

impl Default for PcaOptions {
    fn default() -> Self {
        PcaOptions {
            retention: Retention::Kaiser,
            varimax: true,
            max_rotation_iter: 100,
        }
    }
}

/// A fitted PCA / factor model.
#[derive(Debug, Clone, PartialEq)]
pub struct Pca {
    /// All eigenvalues of the correlation matrix, descending.
    pub eigenvalues: Vec<f64>,
    /// Fraction of total variance per eigenvalue.
    pub explained: Vec<f64>,
    /// Number of retained components.
    pub retained: usize,
    /// Loadings (variables × retained components), rotated when
    /// requested.
    pub loadings: Matrix,
    /// Standardized component scores (observations × retained
    /// components), rotated consistently with the loadings.
    pub scores: Matrix,
    /// Per-variable means used for standardization.
    pub means: Vec<f64>,
    /// Per-variable standard deviations used for standardization.
    pub std_devs: Vec<f64>,
}

impl Pca {
    /// The component a variable loads on most strongly (by absolute
    /// loading).
    pub fn component_of(&self, variable: usize) -> usize {
        let mut best = 0;
        let mut best_abs = -1.0;
        for j in 0..self.retained {
            let a = self.loadings[(variable, j)].abs();
            if a > best_abs {
                best_abs = a;
                best = j;
            }
        }
        best
    }

    /// Variables grouped by dominant component: `grouping()[c]` lists
    /// the variable indexes assigned to component `c`. This is the
    /// structure of the paper's Table 3.
    pub fn grouping(&self) -> Vec<Vec<usize>> {
        let p = self.loadings.rows();
        let mut groups = vec![Vec::new(); self.retained];
        for v in 0..p {
            groups[self.component_of(v)].push(v);
        }
        groups
    }

    /// Communality of a variable (fraction of its variance captured
    /// by the retained components); invariant under rotation.
    pub fn communality(&self, variable: usize) -> f64 {
        (0..self.retained)
            .map(|j| self.loadings[(variable, j)].powi(2))
            .sum()
    }

    /// Cumulative explained variance over the retained components.
    pub fn cumulative_explained(&self) -> f64 {
        self.explained.iter().take(self.retained).sum()
    }
}

/// Runs a correlation-matrix PCA over `variables` (each inner vector
/// is one variable's observations; all must share the same length).
pub fn pca(variables: &[Vec<f64>], options: PcaOptions) -> Result<Pca, StatsError> {
    let p = variables.len();
    if p < 2 {
        return Err(StatsError::NotEnoughData {
            context: "pca",
            needed: 2,
            got: p,
        });
    }
    let n = variables[0].len();
    for v in variables {
        if v.len() != n {
            return Err(StatsError::DimensionMismatch {
                context: "pca",
                left: n,
                right: v.len(),
            });
        }
    }
    if n < 3 {
        return Err(StatsError::NotEnoughData {
            context: "pca",
            needed: 3,
            got: n,
        });
    }

    // Standardize: z = (x − mean) / sd (population sd, the PCA
    // convention that makes Z'Z/n the correlation matrix exactly).
    let mut means = Vec::with_capacity(p);
    let mut sds = Vec::with_capacity(p);
    let mut z = Matrix::zeros(n, p);
    for (j, var) in variables.iter().enumerate() {
        let mean = var.iter().sum::<f64>() / n as f64;
        let var_pop = var.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let sd = var_pop.sqrt();
        if sd == 0.0 {
            return Err(StatsError::Singular("pca: zero-variance variable"));
        }
        for i in 0..n {
            z[(i, j)] = (var[i] - mean) / sd;
        }
        means.push(mean);
        sds.push(sd);
    }

    // Correlation matrix R = ZᵀZ / n.
    let mut r = Matrix::zeros(p, p);
    for a in 0..p {
        for b in a..p {
            let mut s = 0.0;
            for i in 0..n {
                s += z[(i, a)] * z[(i, b)];
            }
            let v = s / n as f64;
            r[(a, b)] = v;
            r[(b, a)] = v;
        }
    }

    let eig = symmetric_eigen(&r)?;
    let total: f64 = eig.values.iter().sum();
    let explained: Vec<f64> = eig.values.iter().map(|&v| (v / total).max(0.0)).collect();

    let retained = match options.retention {
        Retention::Kaiser => eig.values.iter().filter(|&&v| v > 1.0).count().max(1),
        Retention::Fixed(k) => k.clamp(1, p),
        Retention::ExplainedVariance(frac) => {
            let mut acc = 0.0;
            let mut k = 0;
            for &e in &explained {
                acc += e;
                k += 1;
                if acc >= frac {
                    break;
                }
            }
            k.max(1)
        }
    };

    // Loadings: column j = eigvec_j · √λ_j.
    let mut loadings = Matrix::from_fn(p, retained, |i, j| {
        eig.vectors[(i, j)] * eig.values[j].max(0.0).sqrt()
    });

    // Standardized principal-component scores: Z v_j / √λ_j.
    let mut scores = Matrix::from_fn(n, retained, |i, j| {
        let lambda = eig.values[j].max(1e-12);
        let mut s = 0.0;
        for k in 0..p {
            s += z[(i, k)] * eig.vectors[(k, j)];
        }
        s / lambda.sqrt()
    });

    if options.varimax && retained > 1 {
        let rotation = varimax(&mut loadings, options.max_rotation_iter);
        scores = scores.mul(&rotation)?;
    }

    Ok(Pca {
        eigenvalues: eig.values,
        explained,
        retained,
        loadings,
        scores,
        means,
        std_devs: sds,
    })
}

/// In-place varimax rotation with Kaiser row normalization; returns
/// the accumulated orthogonal rotation matrix.
fn varimax(loadings: &mut Matrix, max_iter: usize) -> Matrix {
    let p = loadings.rows();
    let k = loadings.cols();

    // Kaiser normalization: scale rows to unit communality.
    let mut h = vec![0.0; p];
    for i in 0..p {
        let comm: f64 = (0..k).map(|j| loadings[(i, j)].powi(2)).sum();
        h[i] = comm.sqrt().max(1e-12);
        for j in 0..k {
            loadings[(i, j)] /= h[i];
        }
    }

    let mut rotation = Matrix::identity(k);
    for _ in 0..max_iter {
        let mut total_angle = 0.0;
        for a in 0..k {
            for b in (a + 1)..k {
                let (mut s_u, mut s_v, mut s_c, mut s_d) = (0.0, 0.0, 0.0, 0.0);
                for i in 0..p {
                    let x = loadings[(i, a)];
                    let y = loadings[(i, b)];
                    let u = x * x - y * y;
                    let v = 2.0 * x * y;
                    s_u += u;
                    s_v += v;
                    s_c += u * u - v * v;
                    s_d += 2.0 * u * v;
                }
                let num = s_d - 2.0 * s_u * s_v / p as f64;
                let den = s_c - (s_u * s_u - s_v * s_v) / p as f64;
                let phi = 0.25 * num.atan2(den);
                if phi.abs() < 1e-10 {
                    continue;
                }
                total_angle += phi.abs();
                let (c, s) = (phi.cos(), phi.sin());
                for i in 0..p {
                    let x = loadings[(i, a)];
                    let y = loadings[(i, b)];
                    loadings[(i, a)] = c * x + s * y;
                    loadings[(i, b)] = -s * x + c * y;
                }
                for i in 0..k {
                    let x = rotation[(i, a)];
                    let y = rotation[(i, b)];
                    rotation[(i, a)] = c * x + s * y;
                    rotation[(i, b)] = -s * x + c * y;
                }
            }
        }
        if total_angle < 1e-9 {
            break;
        }
    }

    // Undo Kaiser normalization.
    for i in 0..p {
        for j in 0..k {
            loadings[(i, j)] *= h[i];
        }
    }
    rotation
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    /// Two perfectly correlated variables: one component captures
    /// everything.
    #[test]
    fn perfectly_correlated_pair() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 1.0).collect();
        let fit = pca(&[x, y], PcaOptions::default()).unwrap();
        close(fit.eigenvalues[0], 2.0, 1e-9);
        close(fit.eigenvalues[1], 0.0, 1e-9);
        assert_eq!(fit.retained, 1);
        close(fit.explained[0], 1.0, 1e-9);
        // Both variables load ±1 on the single component.
        close(fit.loadings[(0, 0)].abs(), 1.0, 1e-9);
        close(fit.loadings[(1, 0)].abs(), 1.0, 1e-9);
    }

    /// Two independent blocks of correlated variables separate into
    /// two components, and the grouping recovers the blocks.
    #[test]
    fn block_structure_is_recovered() {
        let n = 200;
        // Deterministic pseudo-noise from a tiny LCG, no rand needed.
        let mut state = 12345u64;
        let mut noise = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let f1: Vec<f64> = (0..n).map(|_| noise()).collect();
        let f2: Vec<f64> = (0..n).map(|_| noise()).collect();
        let v0: Vec<f64> = f1.iter().map(|v| v + 0.05 * noise()).collect();
        let v1: Vec<f64> = f1.iter().map(|v| 2.0 * v + 0.05 * noise()).collect();
        let v2: Vec<f64> = f2.iter().map(|v| -v + 0.05 * noise()).collect();
        let v3: Vec<f64> = f2.iter().map(|v| 0.5 * v + 0.05 * noise()).collect();

        let fit = pca(&[v0, v1, v2, v3], PcaOptions::default()).unwrap();
        assert_eq!(fit.retained, 2);
        let groups = fit.grouping();
        let mut g0 = groups[fit.component_of(0)].clone();
        g0.sort_unstable();
        let mut g2 = groups[fit.component_of(2)].clone();
        g2.sort_unstable();
        assert_eq!(g0, vec![0, 1]);
        assert_eq!(g2, vec![2, 3]);
    }

    #[test]
    fn communalities_are_rotation_invariant() {
        let n = 120;
        let mut state = 99u64;
        let mut noise = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let f1: Vec<f64> = (0..n).map(|_| noise()).collect();
        let f2: Vec<f64> = (0..n).map(|_| noise()).collect();
        let vars: Vec<Vec<f64>> = vec![
            f1.iter().map(|v| v + 0.1 * noise()).collect(),
            f1.iter().map(|v| v - 0.1 * noise()).collect(),
            f2.iter().map(|v| v + 0.1 * noise()).collect(),
            f2.iter().map(|v| v - 0.1 * noise()).collect(),
        ];
        let plain = pca(
            &vars,
            PcaOptions {
                varimax: false,
                ..PcaOptions::default()
            },
        )
        .unwrap();
        let rotated = pca(&vars, PcaOptions::default()).unwrap();
        assert_eq!(plain.retained, rotated.retained);
        for v in 0..4 {
            close(plain.communality(v), rotated.communality(v), 1e-8);
        }
    }

    #[test]
    fn scores_are_standardized_and_uncorrelated() {
        let n = 300;
        let mut state = 7u64;
        let mut noise = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let f1: Vec<f64> = (0..n).map(|_| noise()).collect();
        let f2: Vec<f64> = (0..n).map(|_| noise()).collect();
        let vars: Vec<Vec<f64>> = vec![
            f1.iter().map(|v| v + 0.2 * noise()).collect(),
            f1.iter().map(|v| 0.8 * v + 0.2 * noise()).collect(),
            f2.iter().map(|v| v + 0.2 * noise()).collect(),
            f2.iter().map(|v| 1.2 * v + 0.2 * noise()).collect(),
        ];
        let fit = pca(&vars, PcaOptions::default()).unwrap();
        assert_eq!(fit.retained, 2);
        for j in 0..fit.retained {
            let col = fit.scores.column(j);
            let mean = col.iter().sum::<f64>() / n as f64;
            let var = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
            close(mean, 0.0, 1e-9);
            close(var, 1.0, 0.05);
        }
        // Orthogonality of score columns.
        let c0 = fit.scores.column(0);
        let c1 = fit.scores.column(1);
        let dot: f64 = c0.iter().zip(&c1).map(|(a, b)| a * b).sum();
        close(dot / n as f64, 0.0, 0.05);
    }

    #[test]
    fn fixed_retention_is_respected() {
        let x: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v * v).collect();
        let z: Vec<f64> = x.iter().map(|v| v.sin()).collect();
        let fit = pca(
            &[x, y, z],
            PcaOptions {
                retention: Retention::Fixed(2),
                ..PcaOptions::default()
            },
        )
        .unwrap();
        assert_eq!(fit.retained, 2);
        assert_eq!(fit.loadings.cols(), 2);
        assert_eq!(fit.scores.cols(), 2);
    }

    #[test]
    fn explained_variance_retention() {
        let x: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v).collect();
        let fit = pca(
            &[x.clone(), y],
            PcaOptions {
                retention: Retention::ExplainedVariance(0.9),
                ..PcaOptions::default()
            },
        )
        .unwrap();
        assert_eq!(fit.retained, 1);
        assert!(fit.cumulative_explained() >= 0.9);
    }

    #[test]
    fn zero_variance_variable_is_rejected() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let c = vec![5.0; 10];
        assert!(matches!(
            pca(&[x, c], PcaOptions::default()),
            Err(StatsError::Singular(_))
        ));
    }

    #[test]
    fn shape_errors() {
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![1.0, 2.0];
        assert!(pca(&[x.clone(), y], PcaOptions::default()).is_err());
        assert!(pca(&[x], PcaOptions::default()).is_err());
    }
}
