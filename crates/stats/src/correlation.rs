//! Correlation coefficients: Pearson, Spearman, Kendall tau-b.
//!
//! Section 4.1 of the paper uses *"the Kendall tau, a statistic
//! measure to evaluate the similarity of the orderings of the data
//! when ranked by each of the quantities"*. Search rankings contain
//! ties (equal scores), so we implement the tie-corrected tau-b, with
//! Knight's O(n log n) merge-sort formulation and an O(n²) reference
//! used by the property tests and the ablation benches.

use crate::rank::{average_ranks, Direction};
use crate::StatsError;

fn check_pair(context: &'static str, x: &[f64], y: &[f64]) -> Result<(), StatsError> {
    if x.len() != y.len() {
        return Err(StatsError::DimensionMismatch {
            context,
            left: x.len(),
            right: y.len(),
        });
    }
    if x.len() < 2 {
        return Err(StatsError::NotEnoughData {
            context,
            needed: 2,
            got: x.len(),
        });
    }
    Ok(())
}

/// Pearson product-moment correlation.
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
    check_pair("pearson", x, y)?;
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(StatsError::Singular("pearson: zero variance"));
    }
    Ok((sxy / (sxx * syy).sqrt()).clamp(-1.0, 1.0))
}

/// Spearman rank correlation (Pearson over average ranks, so ties are
/// handled correctly).
pub fn spearman(x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
    check_pair("spearman", x, y)?;
    let rx = average_ranks(x, Direction::Ascending);
    let ry = average_ranks(y, Direction::Ascending);
    pearson(&rx, &ry)
}

/// Kendall tau-b with tie correction, Knight's O(n log n) algorithm.
pub fn kendall_tau_b(x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
    check_pair("kendall_tau_b", x, y)?;
    let n = x.len();

    // Sort indices by (x asc, y asc): within x-tie groups y is already
    // ordered, so y-inversions across the sorted sequence are exactly
    // the discordant pairs.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| x[a].total_cmp(&x[b]).then(y[a].total_cmp(&y[b])));

    let pairs = |t: u64| t * (t - 1) / 2;
    let n0 = pairs(n as u64);

    // Ties in x, and joint ties in (x, y).
    let mut n1 = 0u64;
    let mut n3 = 0u64;
    {
        let mut i = 0;
        while i < n {
            let mut j = i + 1;
            while j < n && x[order[j]] == x[order[i]] {
                j += 1;
            }
            n1 += pairs((j - i) as u64);
            // Joint-tie subgroups inside [i, j): y is sorted here.
            let mut k = i;
            while k < j {
                let mut l = k + 1;
                while l < j && y[order[l]] == y[order[k]] {
                    l += 1;
                }
                n3 += pairs((l - k) as u64);
                k = l;
            }
            i = j;
        }
    }

    // Count y-inversions (strict) with a merge sort.
    let mut ys: Vec<f64> = order.iter().map(|&i| y[i]).collect();
    let mut buf = vec![0.0; n];
    let swaps = merge_count(&mut ys, &mut buf);

    // Ties in y (ys is now sorted).
    let mut n2 = 0u64;
    {
        let mut i = 0;
        while i < n {
            let mut j = i + 1;
            while j < n && ys[j] == ys[i] {
                j += 1;
            }
            n2 += pairs((j - i) as u64);
            i = j;
        }
    }

    let denom = ((n0 - n1) as f64) * ((n0 - n2) as f64);
    if denom <= 0.0 {
        return Err(StatsError::Singular("kendall_tau_b: constant input"));
    }
    let concordant_minus_discordant =
        n0 as i64 - n1 as i64 - n2 as i64 + n3 as i64 - 2 * swaps as i64;
    Ok((concordant_minus_discordant as f64 / denom.sqrt()).clamp(-1.0, 1.0))
}

/// Counts strict inversions while merge-sorting `xs` in place.
fn merge_count(xs: &mut [f64], buf: &mut [f64]) -> u64 {
    let n = xs.len();
    if n < 2 {
        return 0;
    }
    let mid = n / 2;
    let (left, right) = xs.split_at_mut(mid);
    let mut swaps = merge_count(left, buf) + merge_count(right, buf);
    // Merge into buf, then copy back.
    let (mut i, mut j, mut k) = (0, 0, 0);
    while i < left.len() && j < right.len() {
        if left[i] <= right[j] {
            buf[k] = left[i];
            i += 1;
        } else {
            buf[k] = right[j];
            j += 1;
            // Every remaining left element forms a strict inversion.
            swaps += (left.len() - i) as u64;
        }
        k += 1;
    }
    while i < left.len() {
        buf[k] = left[i];
        i += 1;
        k += 1;
    }
    while j < right.len() {
        buf[k] = right[j];
        j += 1;
        k += 1;
    }
    xs.copy_from_slice(&buf[..n]);
    swaps
}

/// O(n²) reference tau-b, used by property tests and the ablation
/// benchmarks to validate the fast path.
pub fn kendall_tau_b_reference(x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
    check_pair("kendall_tau_b_reference", x, y)?;
    let n = x.len();
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_x = 0i64;
    let mut ties_y = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = x[i] - x[j];
            let dy = y[i] - y[j];
            if dx == 0.0 && dy == 0.0 {
                ties_x += 1;
                ties_y += 1;
            } else if dx == 0.0 {
                ties_x += 1;
            } else if dy == 0.0 {
                ties_y += 1;
            } else if dx * dy > 0.0 {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as i64;
    let denom = ((n0 - ties_x) as f64) * ((n0 - ties_y) as f64);
    if denom <= 0.0 {
        return Err(StatsError::Singular("kendall_tau_b: constant input"));
    }
    Ok(((concordant - discordant) as f64 / denom.sqrt()).clamp(-1.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v + 1.0).collect();
        close(pearson(&x, &y).unwrap(), 1.0, 1e-12);
        let z: Vec<f64> = x.iter().map(|v| -v).collect();
        close(pearson(&x, &z).unwrap(), -1.0, 1e-12);
    }

    #[test]
    fn pearson_known_value() {
        // R: cor(c(1,2,3,4,5), c(2,1,4,3,5)) = 0.8
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 1.0, 4.0, 3.0, 5.0];
        close(pearson(&x, &y).unwrap(), 0.8, 1e-12);
    }

    #[test]
    fn pearson_rejects_constant_series() {
        assert!(matches!(
            pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]),
            Err(StatsError::Singular(_))
        ));
    }

    #[test]
    fn spearman_is_rank_invariant() {
        // Monotone transform leaves Spearman at 1.
        let x = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v| f64::exp(*v)).collect();
        close(spearman(&x, &y).unwrap(), 1.0, 1e-12);
    }

    #[test]
    fn spearman_known_value_with_ties() {
        // R: cor(rank(c(1,2,2,4)), rank(c(10,20,20,40))) = 1
        let x = [1.0, 2.0, 2.0, 4.0];
        let y = [10.0, 20.0, 20.0, 40.0];
        close(spearman(&x, &y).unwrap(), 1.0, 1e-12);
    }

    #[test]
    fn kendall_perfect_orders() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [10.0, 20.0, 30.0, 40.0, 50.0];
        close(kendall_tau_b(&x, &y).unwrap(), 1.0, 1e-12);
        let rev: Vec<f64> = y.iter().rev().copied().collect();
        close(kendall_tau_b(&x, &rev).unwrap(), -1.0, 1e-12);
    }

    #[test]
    fn kendall_known_value() {
        // Hand count: C = 7, D = 3, n0 = 10 → tau = 0.4.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [3.0, 1.0, 4.0, 2.0, 5.0];
        close(kendall_tau_b(&x, &y).unwrap(), 0.4, 1e-12);
    }

    #[test]
    fn kendall_with_ties_known_value() {
        // Hand count: C = 4, D = 0, one x-tie, one y-tie, n0 = 6
        // → tau_b = 4 / √(5·5) = 0.8.
        let x = [1.0, 1.0, 2.0, 3.0];
        let y = [1.0, 2.0, 2.0, 3.0];
        close(kendall_tau_b(&x, &y).unwrap(), 0.8, 1e-12);
    }

    #[test]
    fn fast_matches_reference_on_fixed_cases() {
        let cases: Vec<(Vec<f64>, Vec<f64>)> = vec![
            (vec![1.0, 2.0, 3.0], vec![3.0, 2.0, 1.0]),
            (vec![1.0, 1.0, 1.0, 2.0], vec![4.0, 3.0, 2.0, 1.0]),
            (
                vec![5.0, 3.0, 3.0, 8.0, 1.0, 9.0, 3.0],
                vec![2.0, 2.0, 7.0, 1.0, 1.0, 4.0, 4.0],
            ),
        ];
        for (x, y) in cases {
            close(
                kendall_tau_b(&x, &y).unwrap(),
                kendall_tau_b_reference(&x, &y).unwrap(),
                1e-12,
            );
        }
    }

    #[test]
    fn constant_input_is_singular() {
        assert!(kendall_tau_b(&[1.0, 1.0], &[2.0, 3.0]).is_err());
        assert!(kendall_tau_b(&[1.0, 2.0], &[3.0, 3.0]).is_err());
    }

    #[test]
    fn mismatched_lengths_error() {
        assert!(matches!(
            kendall_tau_b(&[1.0, 2.0], &[1.0]),
            Err(StatsError::DimensionMismatch { .. })
        ));
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn tau_fast_equals_reference(
                pairs in proptest::collection::vec((-50i32..50, -50i32..50), 2..60)
            ) {
                let x: Vec<f64> = pairs.iter().map(|p| p.0 as f64).collect();
                let y: Vec<f64> = pairs.iter().map(|p| p.1 as f64).collect();
                let fast = kendall_tau_b(&x, &y);
                let slow = kendall_tau_b_reference(&x, &y);
                match (fast, slow) {
                    (Ok(a), Ok(b)) => prop_assert!((a - b).abs() < 1e-10, "{a} vs {b}"),
                    (Err(_), Err(_)) => {}
                    (a, b) => prop_assert!(false, "divergent results {a:?} vs {b:?}"),
                }
            }

            #[test]
            fn correlations_stay_in_unit_interval(
                pairs in proptest::collection::vec(
                    (-1000.0f64..1000.0, -1000.0f64..1000.0), 3..40
                )
            ) {
                let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
                let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
                if let Ok(r) = pearson(&x, &y) {
                    prop_assert!((-1.0..=1.0).contains(&r));
                }
                if let Ok(t) = kendall_tau_b(&x, &y) {
                    prop_assert!((-1.0..=1.0).contains(&t));
                }
                if let Ok(s) = spearman(&x, &y) {
                    prop_assert!((-1.0..=1.0).contains(&s));
                }
            }

            #[test]
            fn tau_is_antisymmetric_under_negation(
                pairs in proptest::collection::vec((-30i32..30, -30i32..30), 2..40)
            ) {
                let x: Vec<f64> = pairs.iter().map(|p| p.0 as f64).collect();
                let y: Vec<f64> = pairs.iter().map(|p| p.1 as f64).collect();
                let neg_y: Vec<f64> = y.iter().map(|v| -v).collect();
                if let (Ok(t), Ok(nt)) = (kendall_tau_b(&x, &y), kendall_tau_b(&x, &neg_y)) {
                    prop_assert!((t + nt).abs() < 1e-10);
                }
            }
        }
    }
}
