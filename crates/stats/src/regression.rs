//! Ordinary least squares with coefficient significance tests.
//!
//! Table 3 of the paper reports, for each principal component, the
//! *direction* of its relation with Google rank and a significance
//! level ("positive (sig < 0.001)"). [`Ols`] produces exactly those
//! ingredients: coefficients, two-sided t-test p-values, and the
//! conventional significance buckets.

use crate::dist::{FisherF, StudentT};
use crate::matrix::Matrix;
use crate::StatsError;

/// Conventional significance buckets used in the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Significance {
    /// p < 0.001
    P001,
    /// p < 0.01
    P01,
    /// p < 0.05
    P05,
    /// p ≥ 0.05
    NotSignificant,
}

impl Significance {
    /// Buckets a p-value.
    pub fn of(p: f64) -> Self {
        if p < 0.001 {
            Significance::P001
        } else if p < 0.01 {
            Significance::P01
        } else if p < 0.05 {
            Significance::P05
        } else {
            Significance::NotSignificant
        }
    }

    /// The paper's rendering ("sig < 0.001", …).
    pub fn label(self) -> &'static str {
        match self {
            Significance::P001 => "sig < 0.001",
            Significance::P01 => "sig < 0.010",
            Significance::P05 => "sig < 0.050",
            Significance::NotSignificant => "n.s.",
        }
    }

    /// Whether the bucket clears the 0.05 bar.
    pub fn is_significant(self) -> bool {
        self != Significance::NotSignificant
    }
}

impl std::fmt::Display for Significance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A fitted OLS model. Coefficient 0 is the intercept; coefficient
/// `j ≥ 1` belongs to predictor `j − 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct Ols {
    /// `[intercept, b1, …, bp]`.
    pub coefficients: Vec<f64>,
    /// Standard errors, aligned with `coefficients`.
    pub std_errors: Vec<f64>,
    /// t statistics, aligned with `coefficients`.
    pub t_stats: Vec<f64>,
    /// Two-sided p-values, aligned with `coefficients`.
    pub p_values: Vec<f64>,
    /// Coefficient of determination.
    pub r_squared: f64,
    /// Adjusted R².
    pub adj_r_squared: f64,
    /// Overall F statistic (model vs. intercept-only).
    pub f_statistic: f64,
    /// p-value of the overall F test.
    pub f_p_value: f64,
    /// Residual degrees of freedom (n − p − 1).
    pub df_residual: usize,
    /// Residuals, in input order.
    pub residuals: Vec<f64>,
}

impl Ols {
    /// Number of predictors (excluding intercept).
    pub fn predictors(&self) -> usize {
        self.coefficients.len() - 1
    }

    /// Slope of predictor `j` (0-based).
    pub fn slope(&self, j: usize) -> f64 {
        self.coefficients[j + 1]
    }

    /// Two-sided p-value of predictor `j` (0-based).
    pub fn slope_p(&self, j: usize) -> f64 {
        self.p_values[j + 1]
    }

    /// Significance bucket of predictor `j` (0-based).
    pub fn slope_significance(&self, j: usize) -> Significance {
        Significance::of(self.slope_p(j))
    }
}

/// Fits `y ~ 1 + X` where `predictors` holds the columns of `X`.
pub fn ols(y: &[f64], predictors: &[Vec<f64>]) -> Result<Ols, StatsError> {
    let n = y.len();
    let p = predictors.len();
    for col in predictors {
        if col.len() != n {
            return Err(StatsError::DimensionMismatch {
                context: "ols",
                left: n,
                right: col.len(),
            });
        }
    }
    if n < p + 2 {
        return Err(StatsError::NotEnoughData {
            context: "ols",
            needed: p + 2,
            got: n,
        });
    }

    // Design matrix with intercept column.
    let x = Matrix::from_fn(
        n,
        p + 1,
        |i, j| if j == 0 { 1.0 } else { predictors[j - 1][i] },
    );
    let xt = x.transpose();
    let xtx = xt.mul(&x)?;
    let xtx_inv = xtx
        .inverse()
        .map_err(|_| StatsError::Singular("ols: collinear predictors"))?;
    let xty = xt.mul_vec(y)?;
    let beta = xtx_inv.mul_vec(&xty)?;

    let fitted = x.mul_vec(&beta)?;
    let residuals: Vec<f64> = y.iter().zip(&fitted).map(|(a, b)| a - b).collect();
    let rss: f64 = residuals.iter().map(|r| r * r).sum();
    let y_mean = y.iter().sum::<f64>() / n as f64;
    let tss: f64 = y.iter().map(|v| (v - y_mean) * (v - y_mean)).sum();
    if tss == 0.0 {
        return Err(StatsError::Singular("ols: constant response"));
    }

    let df_residual = n - p - 1;
    let sigma2 = rss / df_residual as f64;
    let t_dist = StudentT::new(df_residual as f64);

    let mut std_errors = Vec::with_capacity(p + 1);
    let mut t_stats = Vec::with_capacity(p + 1);
    let mut p_values = Vec::with_capacity(p + 1);
    for j in 0..=p {
        let se = (sigma2 * xtx_inv[(j, j)]).max(0.0).sqrt();
        std_errors.push(se);
        let t = if se > 0.0 {
            beta[j] / se
        } else {
            f64::INFINITY
        };
        t_stats.push(t);
        p_values.push(if se > 0.0 { t_dist.two_sided_p(t) } else { 0.0 });
    }

    let r_squared = 1.0 - rss / tss;
    let adj_r_squared = 1.0 - (1.0 - r_squared) * ((n - 1) as f64 / df_residual as f64);
    let (f_statistic, f_p_value) = if p == 0 {
        (0.0, 1.0)
    } else if rss <= f64::EPSILON * tss {
        (f64::INFINITY, 0.0)
    } else {
        let f = ((tss - rss) / p as f64) / sigma2;
        (f, FisherF::new(p as f64, df_residual as f64).sf(f))
    };

    Ok(Ols {
        coefficients: beta,
        std_errors,
        t_stats,
        p_values,
        r_squared,
        adj_r_squared,
        f_statistic,
        f_p_value,
        df_residual,
        residuals,
    })
}

/// Fits the one-predictor model `y ~ 1 + x`.
pub fn simple_regression(x: &[f64], y: &[f64]) -> Result<Ols, StatsError> {
    ols(y, &[x.to_vec()])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn exact_linear_fit() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 2.0).collect();
        let fit = simple_regression(&x, &y).unwrap();
        close(fit.coefficients[0], 2.0, 1e-9);
        close(fit.coefficients[1], 3.0, 1e-9);
        close(fit.r_squared, 1.0, 1e-12);
        assert!(fit.residuals.iter().all(|r| r.abs() < 1e-9));
    }

    #[test]
    fn known_regression_hand_computed() {
        // x = 1..5, y = (2,4,5,4,5): Sxx = 10, Sxy = 6 → slope 0.6,
        // intercept 2.2, RSS = 2.4, σ² = 0.8, se(slope) = √0.08,
        // t = 0.6/√0.08 = 2.12132, two-sided p(df=3) = 0.124017,
        // R² = 1 − 2.4/6 = 0.6.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 4.0, 5.0, 4.0, 5.0];
        let fit = simple_regression(&x, &y).unwrap();
        close(fit.coefficients[0], 2.2, 1e-9);
        close(fit.coefficients[1], 0.6, 1e-9);
        close(fit.std_errors[1], 0.08f64.sqrt(), 1e-9);
        close(fit.t_stats[1], 2.121_320_34, 1e-7);
        close(fit.p_values[1], 0.124_027, 5e-5);
        close(fit.r_squared, 0.6, 1e-9);
    }

    #[test]
    fn multiple_regression_recovers_plane() {
        // y = 1 + 2a − 3b, no noise.
        let a: Vec<f64> = (0..20).map(|i| (i % 7) as f64).collect();
        let b: Vec<f64> = (0..20).map(|i| ((i * 3) % 5) as f64).collect();
        let y: Vec<f64> = a
            .iter()
            .zip(&b)
            .map(|(&ai, &bi)| 1.0 + 2.0 * ai - 3.0 * bi)
            .collect();
        let fit = ols(&y, &[a, b]).unwrap();
        close(fit.coefficients[0], 1.0, 1e-8);
        close(fit.slope(0), 2.0, 1e-8);
        close(fit.slope(1), -3.0, 1e-8);
        assert_eq!(fit.predictors(), 2);
    }

    #[test]
    fn collinear_predictors_are_rejected() {
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let b: Vec<f64> = a.iter().map(|v| 2.0 * v).collect();
        let y = vec![1.0, 2.0, 2.5, 4.0, 5.5];
        assert!(matches!(ols(&y, &[a, b]), Err(StatsError::Singular(_))));
    }

    #[test]
    fn constant_response_is_rejected() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert!(matches!(
            simple_regression(&x, &[5.0, 5.0, 5.0, 5.0]),
            Err(StatsError::Singular(_))
        ));
    }

    #[test]
    fn too_few_observations() {
        assert!(matches!(
            simple_regression(&[1.0, 2.0], &[1.0, 2.0]),
            Err(StatsError::NotEnoughData { .. })
        ));
    }

    #[test]
    fn f_test_matches_t_test_for_single_predictor() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let y = [1.1, 2.3, 2.8, 4.5, 4.9, 6.2];
        let fit = simple_regression(&x, &y).unwrap();
        // F = t² and same p-value for one predictor.
        close(fit.f_statistic, fit.t_stats[1] * fit.t_stats[1], 1e-9);
        close(fit.f_p_value, fit.p_values[1], 1e-9);
    }

    #[test]
    fn significance_buckets() {
        assert_eq!(Significance::of(0.0005), Significance::P001);
        assert_eq!(Significance::of(0.005), Significance::P01);
        assert_eq!(Significance::of(0.03), Significance::P05);
        assert_eq!(Significance::of(0.2), Significance::NotSignificant);
        assert!(Significance::of(0.03).is_significant());
        assert!(!Significance::of(0.5).is_significant());
        assert_eq!(Significance::P001.label(), "sig < 0.001");
    }

    #[test]
    fn residuals_are_orthogonal_to_predictors() {
        let x = [1.0, 2.0, 4.0, 5.0, 7.0, 8.0];
        let y = [2.0, 3.0, 3.5, 6.0, 7.0, 7.5];
        let fit = simple_regression(&x, &y).unwrap();
        let dot: f64 = fit.residuals.iter().zip(&x).map(|(r, v)| r * v).sum();
        close(dot, 0.0, 1e-8);
        let sum: f64 = fit.residuals.iter().sum();
        close(sum, 0.0, 1e-8);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn r_squared_in_unit_interval_and_residuals_centered(
                points in proptest::collection::vec(
                    (-100.0f64..100.0, -100.0f64..100.0), 4..50
                )
            ) {
                let x: Vec<f64> = points.iter().map(|p| p.0).collect();
                let y: Vec<f64> = points.iter().map(|p| p.1).collect();
                if let Ok(fit) = simple_regression(&x, &y) {
                    prop_assert!(fit.r_squared >= -1e-9);
                    prop_assert!(fit.r_squared <= 1.0 + 1e-9);
                    let sum: f64 = fit.residuals.iter().sum();
                    prop_assert!(sum.abs() < 1e-5 * (1.0 + y.iter().map(|v| v.abs()).sum::<f64>()));
                }
            }
        }
    }
}
