//! A small dense row-major matrix.
//!
//! Sized for the statistics in this crate: correlation matrices over
//! a dozen measures, design matrices over a few thousand rows. Not a
//! BLAS — clarity and correctness first.

use crate::StatsError;

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a shape and a generator function.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Builds a matrix from nested rows; every row must have the same
    /// length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, StatsError> {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        for row in rows {
            if row.len() != c {
                return Err(StatsError::DimensionMismatch {
                    context: "Matrix::from_rows",
                    left: c,
                    right: row.len(),
                });
            }
        }
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Builds a matrix whose columns are the given variable vectors.
    pub fn from_columns(cols: &[Vec<f64>]) -> Result<Self, StatsError> {
        let c = cols.len();
        let r = cols.first().map_or(0, Vec::len);
        for col in cols {
            if col.len() != r {
                return Err(StatsError::DimensionMismatch {
                    context: "Matrix::from_columns",
                    left: r,
                    right: col.len(),
                });
            }
        }
        Ok(Matrix::from_fn(r, c, |i, j| cols[j][i]))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy of column `j`.
    pub fn column(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix product `self · rhs`.
    pub fn mul(&self, rhs: &Matrix) -> Result<Matrix, StatsError> {
        if self.cols != rhs.rows {
            return Err(StatsError::DimensionMismatch {
                context: "Matrix::mul",
                left: self.cols,
                right: rhs.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>, StatsError> {
        if self.cols != v.len() {
            return Err(StatsError::DimensionMismatch {
                context: "Matrix::mul_vec",
                left: self.cols,
                right: v.len(),
            });
        }
        Ok((0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Whether the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// In-place Gauss–Jordan inverse with partial pivoting. Errors on
    /// non-square or singular input.
    pub fn inverse(&self) -> Result<Matrix, StatsError> {
        if self.rows != self.cols {
            return Err(StatsError::DimensionMismatch {
                context: "Matrix::inverse",
                left: self.rows,
                right: self.cols,
            });
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Partial pivot.
            let pivot_row = (col..n)
                .max_by(|&r1, &r2| a[(r1, col)].abs().total_cmp(&a[(r2, col)].abs()))
                .unwrap();
            let pivot = a[(pivot_row, col)];
            if pivot.abs() < 1e-12 {
                return Err(StatsError::Singular("Matrix::inverse"));
            }
            a.swap_rows(col, pivot_row);
            inv.swap_rows(col, pivot_row);
            let inv_pivot = 1.0 / a[(col, col)];
            for j in 0..n {
                a[(col, j)] *= inv_pivot;
                inv[(col, j)] *= inv_pivot;
            }
            for row in 0..n {
                if row == col {
                    continue;
                }
                let factor = a[(row, col)];
                if factor == 0.0 {
                    continue;
                }
                for j in 0..n {
                    let sub_a = a[(col, j)];
                    let sub_i = inv[(col, j)];
                    a[(row, j)] -= factor * sub_a;
                    inv[(row, j)] -= factor * sub_i;
                }
            }
        }
        Ok(inv)
    }

    fn swap_rows(&mut self, r1: usize, r2: usize) {
        if r1 == r2 {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(r1 * self.cols + j, r2 * self.cols + j);
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_validates_shape() {
        assert!(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).is_err());
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn from_columns_transposes() {
        let m = Matrix::from_columns(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m.column(1), vec![3.0, 4.0]);
    }

    #[test]
    fn transpose_involutes() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn multiplication_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let ab = a.mul(&b).unwrap();
        assert_eq!(
            ab,
            Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn multiplication_by_identity_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(a.mul(&Matrix::identity(2)).unwrap(), a);
        assert_eq!(Matrix::identity(2).mul(&a).unwrap(), a);
    }

    #[test]
    fn mul_vec_matches_mul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(a.mul_vec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn inverse_of_known_matrix() {
        let a = Matrix::from_rows(&[vec![4.0, 7.0], vec![2.0, 6.0]]).unwrap();
        let inv = a.inverse().unwrap();
        let expected = Matrix::from_rows(&[vec![0.6, -0.7], vec![-0.2, 0.4]]).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((inv[(i, j)] - expected[(i, j)]).abs() < 1e-12);
            }
        }
        // a · a⁻¹ = I
        let prod = a.mul(&inv).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert_eq!(
            a.inverse().unwrap_err(),
            StatsError::Singular("Matrix::inverse")
        );
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 5.0]]).unwrap();
        assert!(s.is_symmetric(1e-12));
        let ns = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]).unwrap();
        assert!(!ns.is_symmetric(1e-12));
        let rect = Matrix::zeros(2, 3);
        assert!(!rect.is_symmetric(1e-12));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let inv = a.inverse().unwrap();
        assert_eq!(inv, a); // permutation matrices are their own inverse
    }
}
