//! Probability distributions used to convert statistics to p-values.

use crate::special::{beta_inc, normal_cdf};

/// Student's t distribution with `df` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentT {
    /// Degrees of freedom (> 0).
    pub df: f64,
}

impl StudentT {
    /// Creates the distribution; panics on non-positive df.
    pub fn new(df: f64) -> Self {
        assert!(df > 0.0, "t distribution needs df > 0, got {df}");
        StudentT { df }
    }

    /// Cumulative distribution function `P(T ≤ t)`.
    pub fn cdf(&self, t: f64) -> f64 {
        let x = self.df / (self.df + t * t);
        let tail = 0.5 * beta_inc(0.5 * self.df, 0.5, x);
        if t >= 0.0 {
            1.0 - tail
        } else {
            tail
        }
    }

    /// Two-sided p-value `P(|T| ≥ |t|)`.
    pub fn two_sided_p(&self, t: f64) -> f64 {
        let x = self.df / (self.df + t * t);
        beta_inc(0.5 * self.df, 0.5, x).clamp(0.0, 1.0)
    }
}

/// Fisher–Snedecor F distribution with `(df1, df2)` degrees of
/// freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FisherF {
    /// Numerator degrees of freedom.
    pub df1: f64,
    /// Denominator degrees of freedom.
    pub df2: f64,
}

impl FisherF {
    /// Creates the distribution; panics on non-positive df.
    pub fn new(df1: f64, df2: f64) -> Self {
        assert!(df1 > 0.0 && df2 > 0.0, "F distribution needs df > 0");
        FisherF { df1, df2 }
    }

    /// Cumulative distribution function `P(F ≤ f)`.
    pub fn cdf(&self, f: f64) -> f64 {
        if f <= 0.0 {
            return 0.0;
        }
        beta_inc(
            0.5 * self.df1,
            0.5 * self.df2,
            self.df1 * f / (self.df1 * f + self.df2),
        )
    }

    /// Survival function `P(F ≥ f)` — the ANOVA / regression p-value.
    pub fn sf(&self, f: f64) -> f64 {
        if f <= 0.0 {
            return 1.0;
        }
        beta_inc(
            0.5 * self.df2,
            0.5 * self.df1,
            self.df2 / (self.df2 + self.df1 * f),
        )
        .clamp(0.0, 1.0)
    }
}

/// Standard normal distribution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StdNormal;

impl StdNormal {
    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        normal_cdf(x)
    }

    /// Two-sided p-value `P(|Z| ≥ |z|)`.
    pub fn two_sided_p(&self, z: f64) -> f64 {
        (2.0 * (1.0 - normal_cdf(z.abs()))).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn t_cdf_is_symmetric_around_zero() {
        let t = StudentT::new(7.0);
        close(t.cdf(0.0), 0.5, 1e-12);
        for v in [0.5, 1.3, 2.7] {
            close(t.cdf(v) + t.cdf(-v), 1.0, 1e-12);
        }
    }

    #[test]
    fn t_critical_values_match_tables() {
        // t_{0.975, 10} = 2.228139; t_{0.95, 10} = 1.812461
        let t = StudentT::new(10.0);
        close(t.cdf(2.228_139), 0.975, 1e-5);
        close(t.cdf(1.812_461), 0.95, 1e-5);
        // t_{0.975, 1} = 12.7062
        let t1 = StudentT::new(1.0);
        close(t1.cdf(12.706_2), 0.975, 1e-4);
    }

    #[test]
    fn t_two_sided_p_matches_tables() {
        let t = StudentT::new(10.0);
        close(t.two_sided_p(2.228_139), 0.05, 1e-5);
        close(t.two_sided_p(-2.228_139), 0.05, 1e-5);
        close(t.two_sided_p(0.0), 1.0, 1e-12);
    }

    #[test]
    fn t_approaches_normal_for_large_df() {
        let t = StudentT::new(1e6);
        let n = StdNormal;
        for v in [-2.0, -0.5, 0.0, 1.0, 2.5] {
            close(t.cdf(v), n.cdf(v), 1e-4);
        }
    }

    #[test]
    fn f_critical_values_match_tables() {
        // F_{0.95}(1, 10) = 4.9646
        close(FisherF::new(1.0, 10.0).sf(4.964_6), 0.05, 1e-4);
        // F_{0.95}(2, 20) = 3.4928
        close(FisherF::new(2.0, 20.0).sf(3.492_8), 0.05, 1e-4);
        // F_{0.99}(3, 30) = 4.5097
        close(FisherF::new(3.0, 30.0).sf(4.509_7), 0.01, 1e-4);
    }

    #[test]
    fn f_cdf_plus_sf_is_one() {
        let f = FisherF::new(3.0, 12.0);
        for v in [0.1, 0.5, 1.0, 2.0, 5.0] {
            close(f.cdf(v) + f.sf(v), 1.0, 1e-10);
        }
    }

    #[test]
    fn f_of_t_squared_matches_t_two_sided() {
        // If T ~ t(df) then T² ~ F(1, df): P(F ≥ t²) = two-sided t p.
        let t = StudentT::new(15.0);
        let f = FisherF::new(1.0, 15.0);
        for v in [0.5, 1.0, 2.0, 3.0] {
            close(f.sf(v * v), t.two_sided_p(v), 1e-10);
        }
    }

    #[test]
    fn normal_two_sided() {
        let n = StdNormal;
        close(n.two_sided_p(1.959_964), 0.05, 1e-4);
        close(n.two_sided_p(0.0), 1.0, 1e-12);
    }

    #[test]
    #[should_panic(expected = "df > 0")]
    fn t_rejects_zero_df() {
        let _ = StudentT::new(0.0);
    }
}
