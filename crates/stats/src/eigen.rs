//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! PCA diagonalizes a correlation matrix — symmetric by construction
//! and tiny (one row per measure), which is exactly where Jacobi
//! shines: simple, unconditionally stable, and accurate to machine
//! precision.

use crate::matrix::Matrix;
use crate::StatsError;

/// Eigenvalues (descending) with matching eigenvectors (columns of
/// `vectors`).
#[derive(Debug, Clone, PartialEq)]
pub struct Eigen {
    /// Eigenvalues, sorted descending.
    pub values: Vec<f64>,
    /// Column `j` of the matrix is the unit eigenvector for
    /// `values[j]`.
    pub vectors: Matrix,
}

/// Decomposes a symmetric matrix. Errors when the input is not
/// (numerically) symmetric or the sweep limit is exhausted.
pub fn symmetric_eigen(m: &Matrix) -> Result<Eigen, StatsError> {
    if !m.is_symmetric(1e-9) {
        return Err(StatsError::Singular(
            "symmetric_eigen: matrix not symmetric",
        ));
    }
    let n = m.rows();
    let mut a = m.clone();
    let mut v = Matrix::identity(n);

    const MAX_SWEEPS: usize = 100;
    for _sweep in 0..MAX_SWEEPS {
        // Sum of squared off-diagonal entries.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += a[(i, j)] * a[(i, j)];
            }
        }
        if off < 1e-22 {
            return Ok(sorted_eigen(a, v));
        }

        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = a[(p, p)];
                let aqq = a[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                // tan of rotation angle, the stable small-root choice.
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                // Apply the rotation G(p,q,θ)ᵀ · A · G(p,q,θ).
                for k in 0..n {
                    let akp = a[(k, p)];
                    let akq = a[(k, q)];
                    a[(k, p)] = c * akp - s * akq;
                    a[(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[(p, k)];
                    let aqk = a[(q, k)];
                    a[(p, k)] = c * apk - s * aqk;
                    a[(q, k)] = s * apk + c * aqk;
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    Err(StatsError::NoConvergence("symmetric_eigen"))
}

fn sorted_eigen(a: Matrix, v: Matrix) -> Eigen {
    let n = a.rows();
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| a[(i, i)]).collect();
    order.sort_by(|&i, &j| diag[j].total_cmp(&diag[i]));

    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        // Canonical sign: make the largest-magnitude entry positive,
        // so decompositions are deterministic across runs.
        let col: Vec<f64> = (0..n).map(|r| v[(r, old_col)]).collect();
        let max_idx = col
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let sign = if col[max_idx] < 0.0 { -1.0 } else { 1.0 };
        for r in 0..n {
            vectors[(r, new_col)] = sign * col[r];
        }
    }
    Eigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_diagonal() {
        let m = Matrix::from_rows(&[
            vec![3.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ])
        .unwrap();
        let e = symmetric_eigen(&m).unwrap();
        assert_eq!(e.values.len(), 3);
        close(e.values[0], 3.0, 1e-12);
        close(e.values[1], 2.0, 1e-12);
        close(e.values[2], 1.0, 1e-12);
    }

    #[test]
    fn known_2x2_decomposition() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let e = symmetric_eigen(&m).unwrap();
        close(e.values[0], 3.0, 1e-10);
        close(e.values[1], 1.0, 1e-10);
        // Eigenvector for 3 is (1,1)/√2.
        let inv_sqrt2 = 1.0 / 2f64.sqrt();
        close(e.vectors[(0, 0)].abs(), inv_sqrt2, 1e-10);
        close(e.vectors[(1, 0)].abs(), inv_sqrt2, 1e-10);
    }

    #[test]
    fn reconstruction_a_v_equals_v_lambda() {
        let m = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 2.0],
        ])
        .unwrap();
        let e = symmetric_eigen(&m).unwrap();
        let av = m.mul(&e.vectors).unwrap();
        for j in 0..3 {
            for i in 0..3 {
                close(av[(i, j)], e.values[j] * e.vectors[(i, j)], 1e-9);
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m = Matrix::from_rows(&[
            vec![5.0, 2.0, 1.0, 0.0],
            vec![2.0, 4.0, 0.5, 0.3],
            vec![1.0, 0.5, 3.0, 0.7],
            vec![0.0, 0.3, 0.7, 2.0],
        ])
        .unwrap();
        let e = symmetric_eigen(&m).unwrap();
        let vtv = e.vectors.transpose().mul(&e.vectors).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let want = if i == j { 1.0 } else { 0.0 };
                close(vtv[(i, j)], want, 1e-9);
            }
        }
    }

    #[test]
    fn trace_is_preserved() {
        let m = Matrix::from_rows(&[
            vec![1.0, 0.3, 0.3],
            vec![0.3, 1.0, 0.3],
            vec![0.3, 0.3, 1.0],
        ])
        .unwrap();
        let e = symmetric_eigen(&m).unwrap();
        let trace: f64 = e.values.iter().sum();
        close(trace, 3.0, 1e-10);
    }

    #[test]
    fn asymmetric_matrix_is_rejected() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]).unwrap();
        assert!(symmetric_eigen(&m).is_err());
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn random_symmetric(seed_vals: &[f64], n: usize) -> Matrix {
            let mut m = Matrix::zeros(n, n);
            let mut k = 0;
            for i in 0..n {
                for j in i..n {
                    let v = seed_vals[k % seed_vals.len()];
                    m[(i, j)] = v;
                    m[(j, i)] = v;
                    k += 1;
                }
            }
            m
        }

        proptest! {
            #[test]
            fn eigen_invariants_hold(
                vals in proptest::collection::vec(-10.0f64..10.0, 10..=10),
                n in 2usize..5
            ) {
                let m = random_symmetric(&vals, n);
                let e = symmetric_eigen(&m).unwrap();
                // Trace preserved.
                let trace_m: f64 = (0..n).map(|i| m[(i, i)]).sum();
                let trace_e: f64 = e.values.iter().sum();
                prop_assert!((trace_m - trace_e).abs() < 1e-8);
                // Values sorted descending.
                for w in e.values.windows(2) {
                    prop_assert!(w[0] >= w[1] - 1e-12);
                }
                // Orthonormal vectors.
                let vtv = e.vectors.transpose().mul(&e.vectors).unwrap();
                for i in 0..n {
                    for j in 0..n {
                        let want = if i == j { 1.0 } else { 0.0 };
                        prop_assert!((vtv[(i, j)] - want).abs() < 1e-8);
                    }
                }
            }
        }
    }
}
