//! Measure normalization schemes.
//!
//! Section 3.1: *"The overall source quality is thus obtained as a
//! weighted average of the different measures that are normalized by
//! considering benchmarks derived from the assessment of well-known,
//! highly-ranked sources."* [`benchmark_relative`] is that scheme;
//! min-max and z-score are provided as the ablation alternatives
//! benchmarked in `obs-bench`.

/// Scales `value` against a benchmark ceiling: `min(value / benchmark, 1)`.
///
/// The benchmark is typically the value observed on a well-known,
/// highly-ranked source; anything at or above the benchmark saturates
/// at 1. Non-positive benchmarks map everything positive to 1.
pub fn benchmark_relative(value: f64, benchmark: f64) -> f64 {
    if !value.is_finite() || value <= 0.0 {
        return 0.0;
    }
    if benchmark <= 0.0 || !benchmark.is_finite() {
        return 1.0;
    }
    (value / benchmark).min(1.0)
}

/// Min-max scaling of a whole sample into `[0, 1]`. Constant samples
/// map to 0.5 (no information).
pub fn min_max(xs: &[f64]) -> Vec<f64> {
    if xs.is_empty() {
        return Vec::new();
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in xs {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    if hi - lo <= 0.0 {
        return vec![0.5; xs.len()];
    }
    xs.iter().map(|&x| (x - lo) / (hi - lo)).collect()
}

/// Z-score standardization (population standard deviation). Constant
/// samples map to all zeros.
pub fn z_scores(xs: &[f64]) -> Vec<f64> {
    if xs.is_empty() {
        return Vec::new();
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    let sd = var.sqrt();
    if sd == 0.0 {
        return vec![0.0; xs.len()];
    }
    xs.iter().map(|&x| (x - mean) / sd).collect()
}

/// Winsorized min-max: clips to the `[p, 1−p]` quantiles before
/// scaling, so a single outlier source cannot flatten everyone else.
pub fn robust_min_max(xs: &[f64], p: f64) -> Vec<f64> {
    if xs.is_empty() {
        return Vec::new();
    }
    let p = p.clamp(0.0, 0.5);
    let lo = crate::desc::quantile(xs, p).unwrap();
    let hi = crate::desc::quantile(xs, 1.0 - p).unwrap();
    if hi - lo <= 0.0 {
        return vec![0.5; xs.len()];
    }
    xs.iter()
        .map(|&x| ((x - lo) / (hi - lo)).clamp(0.0, 1.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_relative_saturates() {
        assert_eq!(benchmark_relative(50.0, 100.0), 0.5);
        assert_eq!(benchmark_relative(100.0, 100.0), 1.0);
        assert_eq!(benchmark_relative(250.0, 100.0), 1.0);
        assert_eq!(benchmark_relative(0.0, 100.0), 0.0);
        assert_eq!(benchmark_relative(-3.0, 100.0), 0.0);
        assert_eq!(benchmark_relative(5.0, 0.0), 1.0);
        assert_eq!(benchmark_relative(f64::NAN, 10.0), 0.0);
    }

    #[test]
    fn min_max_maps_extremes() {
        let v = min_max(&[2.0, 4.0, 6.0]);
        assert_eq!(v, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn min_max_constant_sample() {
        assert_eq!(min_max(&[3.0, 3.0]), vec![0.5, 0.5]);
        assert!(min_max(&[]).is_empty());
    }

    #[test]
    fn z_scores_have_zero_mean_unit_sd() {
        let z = z_scores(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let mean: f64 = z.iter().sum::<f64>() / z.len() as f64;
        let var: f64 = z.iter().map(|x| x * x).sum::<f64>() / z.len() as f64;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    fn z_scores_constant_sample() {
        assert_eq!(z_scores(&[7.0, 7.0, 7.0]), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn robust_min_max_tames_outliers() {
        let mut xs = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        xs.push(10_000.0);
        let plain = min_max(&xs);
        // p = 0.15 puts the upper clip inside the ordinary values
        // (interpolated 0.85-quantile of n=10 is below the outlier).
        let robust = robust_min_max(&xs, 0.15);
        // With plain scaling every ordinary value is squashed near 0.
        assert!(plain[8] < 0.001);
        // Robust scaling keeps the ordinary values spread out.
        assert!(robust[8] > 0.9);
        assert_eq!(robust[9], 1.0);
    }

    mod proptests {
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn min_max_stays_in_unit_interval(
                xs in proptest::collection::vec(-1e6f64..1e6, 1..100)
            ) {
                for v in super::min_max(&xs) {
                    prop_assert!((0.0..=1.0).contains(&v));
                }
            }

            #[test]
            fn benchmark_relative_in_unit_interval(
                v in -1e6f64..1e6, b in -1e6f64..1e6
            ) {
                let out = super::benchmark_relative(v, b);
                prop_assert!((0.0..=1.0).contains(&out));
            }

            #[test]
            fn robust_min_max_in_unit_interval(
                xs in proptest::collection::vec(-1e6f64..1e6, 1..100),
                p in 0.0f64..0.4
            ) {
                for v in super::robust_min_max(&xs, p) {
                    prop_assert!((0.0..=1.0).contains(&v));
                }
            }
        }
    }
}
