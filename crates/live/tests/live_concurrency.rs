//! Concurrent correctness of the snapshot-serving layer.
//!
//! N reader threads hammer snapshots while one writer ingests a
//! known sequence of deltas. The test is deterministic in what it
//! *asserts* (not in thread interleaving, which is the point): the
//! expected engine state at every sequence number is precomputed by
//! replaying the same deltas on a scratch engine, so every snapshot
//! any reader observes — whichever write it races with — must match
//! one of the precomputed states *exactly*, and the sequence numbers
//! each reader observes must be monotone. A torn read (half-applied
//! delta) would fail both checks.
//!
//! Run this under `--release` too: races hide in debug timings (CI
//! does — see the test job).

use obs_analytics::{AlexaPanel, LinkGraph};
use obs_live::LiveService;
use obs_model::{CorpusDelta, PostId, Timestamp};
use obs_search::{BlendWeights, SearchEngine, SearchHit};
use obs_synth::{World, WorldConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "obs_live_conc_{}_{}.journal",
        std::process::id(),
        tag
    ))
}

const PROBE: [&str; 4] = ["duomo", "rooftop", "castle", "gardens"];

/// The full expected trajectory: doc count and probe-query result
/// after each delta (index = sequence number).
struct Expected {
    docs: Vec<usize>,
    hits: Vec<Vec<SearchHit>>,
}

fn probe_query(engine: &SearchEngine) -> Vec<SearchHit> {
    engine.query(&PROBE, 20)
}

#[test]
fn readers_never_observe_torn_or_regressing_snapshots() {
    let world = World::generate(WorldConfig {
        sources: 60,
        users: 300,
        ..WorldConfig::small(7007)
    });
    let panel = AlexaPanel::simulate(&world, 1);
    let links = LinkGraph::simulate(&world, 2);
    let full = SearchEngine::build(&world.corpus, &panel, &links, BlendWeights::default());

    // Start stale (recent posts absent), stream them back in batches.
    let midpoint = Timestamp(world.now.seconds() / 2);
    let recent: Vec<PostId> = world
        .corpus
        .posts()
        .iter()
        .filter(|p| p.published > midpoint)
        .map(|p| p.id)
        .collect();
    assert!(recent.len() >= 16, "world too small: {}", recent.len());
    let mut stale = full.clone();
    stale.apply_delta(&CorpusDelta::for_removals(&world.corpus, &recent).unwrap());

    let deltas: Vec<CorpusDelta> = recent
        .chunks(recent.len().div_ceil(16))
        .map(|chunk| CorpusDelta::for_posts(&world.corpus, chunk).unwrap())
        .collect();

    // Precompute the expected state at every sequence number.
    let mut expected = Expected {
        docs: vec![stale.doc_count()],
        hits: vec![probe_query(&stale)],
    };
    {
        let mut scratch = stale.clone();
        for delta in &deltas {
            scratch.apply_delta(delta);
            expected.docs.push(scratch.doc_count());
            expected.hits.push(probe_query(&scratch));
        }
    }
    let expected = Arc::new(expected);
    let final_seq = deltas.len() as u64;

    let path = temp_path("torn");
    let mut service = LiveService::start(stale, &path).unwrap();
    let snapshots_checked = AtomicU64::new(0);

    std::thread::scope(|scope| {
        // 4 reader threads, each validating every snapshot it sees
        // against the precomputed trajectory until the final
        // sequence lands.
        let mut readers = Vec::new();
        for reader_id in 0..4 {
            let reader = service.reader();
            let expected = Arc::clone(&expected);
            let checked = &snapshots_checked;
            readers.push(scope.spawn(move || {
                let mut last_seq = 0u64;
                loop {
                    let snap = reader.snapshot();
                    let seq = snap.seq();
                    assert!(
                        seq >= last_seq,
                        "reader {reader_id}: sequence regressed {last_seq} -> {seq}"
                    );
                    last_seq = seq;
                    let engine = snap.engine();
                    assert_eq!(
                        engine.doc_count(),
                        expected.docs[seq as usize],
                        "reader {reader_id}: torn doc count at seq {seq}"
                    );
                    assert_eq!(
                        probe_query(engine),
                        expected.hits[seq as usize],
                        "reader {reader_id}: torn query result at seq {seq}"
                    );
                    checked.fetch_add(1, Ordering::Relaxed);
                    if seq == final_seq {
                        break;
                    }
                }
            }));
        }

        // The writer: journal → apply → publish, one delta at a time.
        for delta in &deltas {
            service.ingest(delta).unwrap();
        }

        for handle in readers {
            handle.join().expect("reader thread panicked");
        }
    });

    // Every reader ran to the final sequence and at least one
    // snapshot per reader was validated.
    assert!(snapshots_checked.load(Ordering::Relaxed) >= 4);
    assert_eq!(service.seq(), final_seq);
    assert_eq!(service.doc_count(), full.doc_count());
    std::fs::remove_file(&path).ok();
}

#[test]
fn readers_racing_batched_ingest_observe_only_batch_boundaries() {
    // Group-commit ingestion publishes once per *batch*: the states
    // "inside" a batch must never be served. Readers validate every
    // snapshot against the precomputed per-batch trajectory and
    // assert the observed sequence is always a batch boundary.
    let world = World::generate(WorldConfig {
        sources: 60,
        users: 300,
        ..WorldConfig::small(7009)
    });
    let panel = AlexaPanel::simulate(&world, 1);
    let links = LinkGraph::simulate(&world, 2);
    let full = SearchEngine::build(&world.corpus, &panel, &links, BlendWeights::default());

    let midpoint = Timestamp(world.now.seconds() / 2);
    let recent: Vec<PostId> = world
        .corpus
        .posts()
        .iter()
        .filter(|p| p.published > midpoint)
        .map(|p| p.id)
        .collect();
    assert!(recent.len() >= 16, "world too small: {}", recent.len());
    let mut stale = full.clone();
    stale.apply_delta(&CorpusDelta::for_removals(&world.corpus, &recent).unwrap());

    // 16 deltas, group-committed 4 at a time: the only observable
    // sequences are 0, 4, 8, 12, 16.
    let deltas: Vec<CorpusDelta> = recent
        .chunks(recent.len().div_ceil(16))
        .map(|chunk| CorpusDelta::for_posts(&world.corpus, chunk).unwrap())
        .collect();
    let batches: Vec<&[CorpusDelta]> = deltas.chunks(4).collect();

    // Expected state per *batch boundary* sequence.
    let mut boundary_docs = std::collections::HashMap::new();
    let mut boundary_hits = std::collections::HashMap::new();
    boundary_docs.insert(0u64, stale.doc_count());
    boundary_hits.insert(0u64, probe_query(&stale));
    {
        let mut scratch = stale.clone();
        let mut seq = 0u64;
        for batch in &batches {
            for delta in *batch {
                scratch.apply_delta(delta);
                seq += 1;
            }
            boundary_docs.insert(seq, scratch.doc_count());
            boundary_hits.insert(seq, probe_query(&scratch));
        }
    }
    let boundary_docs = Arc::new(boundary_docs);
    let boundary_hits = Arc::new(boundary_hits);
    let final_seq = deltas.len() as u64;

    let path = temp_path("batch_boundaries");
    let mut service = LiveService::start(stale, &path).unwrap();
    let snapshots_checked = AtomicU64::new(0);

    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for reader_id in 0..4 {
            let reader = service.reader();
            let docs = Arc::clone(&boundary_docs);
            let hits = Arc::clone(&boundary_hits);
            let checked = &snapshots_checked;
            readers.push(scope.spawn(move || {
                let mut last_seq = 0u64;
                loop {
                    let snap = reader.snapshot();
                    let seq = snap.seq();
                    assert!(
                        seq >= last_seq,
                        "reader {reader_id}: sequence regressed {last_seq} -> {seq}"
                    );
                    last_seq = seq;
                    let expected_docs = docs.get(&seq).unwrap_or_else(|| {
                        panic!("reader {reader_id}: observed mid-batch seq {seq}")
                    });
                    let engine = snap.engine();
                    assert_eq!(
                        engine.doc_count(),
                        *expected_docs,
                        "reader {reader_id}: torn doc count at seq {seq}"
                    );
                    assert_eq!(
                        &probe_query(engine),
                        hits.get(&seq).unwrap(),
                        "reader {reader_id}: torn query result at seq {seq}"
                    );
                    checked.fetch_add(1, Ordering::Relaxed);
                    if seq == final_seq {
                        break;
                    }
                }
            }));
        }

        // The writer: one group commit per batch. The middle batch
        // suffers an injected fsync failure first — readers must be
        // none the wiser, and the retry must succeed transparently.
        for (i, batch) in batches.iter().enumerate() {
            if i == batches.len() / 2 {
                let seq_before = service.seq();
                let journal_len = service.journal_len();
                service.inject_journal_sync_failures(1);
                service
                    .ingest_batch(batch)
                    .expect_err("injected fsync failure must surface");
                assert_eq!(service.seq(), seq_before);
                assert_eq!(service.journal_len(), journal_len);
            }
            service.ingest_batch(batch).unwrap();
        }

        for handle in readers {
            handle.join().expect("reader thread panicked");
        }
    });

    assert!(snapshots_checked.load(Ordering::Relaxed) >= 4);
    assert_eq!(service.seq(), final_seq);
    assert_eq!(service.doc_count(), full.doc_count());
    std::fs::remove_file(&path).ok();
}

#[test]
fn failed_batch_sync_is_never_replayed_by_recovery() {
    // The all-or-nothing contract, end to end: a batch whose fsync
    // failed must leave no trace — not in the served snapshots, not
    // in the journal file, not in what recover() replays.
    let world = World::generate(WorldConfig {
        sources: 60,
        users: 300,
        ..WorldConfig::small(7010)
    });
    let panel = AlexaPanel::simulate(&world, 1);
    let links = LinkGraph::simulate(&world, 2);
    let full = SearchEngine::build(&world.corpus, &panel, &links, BlendWeights::default());

    let midpoint = Timestamp(world.now.seconds() / 2);
    let recent: Vec<PostId> = world
        .corpus
        .posts()
        .iter()
        .filter(|p| p.published > midpoint)
        .map(|p| p.id)
        .collect();
    let mut stale = full.clone();
    stale.apply_delta(&CorpusDelta::for_removals(&world.corpus, &recent).unwrap());

    let deltas: Vec<CorpusDelta> = recent
        .chunks(recent.len().div_ceil(8))
        .map(|chunk| CorpusDelta::for_posts(&world.corpus, chunk).unwrap())
        .collect();
    let (first_half, second_half) = deltas.split_at(deltas.len() / 2);

    let path = temp_path("no_replay");
    let mut service = LiveService::start(stale.clone(), &path).unwrap();
    service.ingest_batch(first_half).unwrap();
    let committed_seq = service.seq();
    let committed_hits = probe_query(service.reader().snapshot().engine());

    service.inject_journal_sync_failures(1);
    service
        .ingest_batch(second_half)
        .expect_err("injected fsync failure must surface");
    // Served state: untouched, down to the query results.
    let snap = service.reader().snapshot();
    assert_eq!(snap.seq(), committed_seq);
    assert_eq!(probe_query(snap.engine()), committed_hits);

    // Crash right here (drop without shutdown): recovery over the
    // original checkpoint must replay exactly the committed batch
    // and nothing of the failed one.
    drop(service);
    let (recovered, report) = LiveService::recover(stale, 0, &path).unwrap();
    assert_eq!(report.replayed as u64, committed_seq);
    assert!(!report.torn_tail_dropped, "retraction must be clean");
    assert_eq!(recovered.seq(), committed_seq);
    let snap = recovered.reader().snapshot();
    assert_eq!(probe_query(snap.engine()), committed_hits);

    // And the recovered service continues the stream where the
    // acknowledged prefix ended.
    let mut recovered = recovered;
    recovered.ingest_batch(second_half).unwrap();
    assert_eq!(recovered.seq(), deltas.len() as u64);
    assert_eq!(recovered.doc_count(), full.doc_count());
    std::fs::remove_file(&path).ok();
}

#[test]
fn writer_throughput_is_not_gated_by_slow_readers() {
    // A reader that *holds* a snapshot for the whole run must not
    // stop the writer from publishing: old epochs stay alive, new
    // ones keep flowing.
    let world = World::generate(WorldConfig::small(7008));
    let panel = AlexaPanel::simulate(&world, 1);
    let links = LinkGraph::simulate(&world, 2);
    let engine = SearchEngine::build(&world.corpus, &panel, &links, BlendWeights::default());

    let last = world.corpus.posts().last().unwrap().id;
    let removal = CorpusDelta::for_removals(&world.corpus, &[last]).unwrap();
    let readd = CorpusDelta::for_posts(&world.corpus, &[last]).unwrap();

    let path = temp_path("epochs");
    let mut service = LiveService::start(engine.clone(), &path).unwrap();
    let reader = service.reader();

    let pinned = reader.snapshot(); // held across all writes
    let pinned_docs = pinned.engine().doc_count();
    let pinned_hits = probe_query(pinned.engine());

    for _ in 0..25 {
        service.ingest(&removal).unwrap();
        service.ingest(&readd).unwrap();
    }

    // The pinned epoch is untouched by 50 published snapshots…
    assert_eq!(pinned.seq(), 0);
    assert_eq!(pinned.engine().doc_count(), pinned_docs);
    assert_eq!(probe_query(pinned.engine()), pinned_hits);
    // …and the current epoch has moved on.
    let current = reader.snapshot();
    assert_eq!(current.seq(), 50);
    assert_eq!(current.engine().doc_count(), pinned_docs);
    std::fs::remove_file(&path).ok();
}
