//! Cache transparency under concurrent ingest: readers racing
//! `ingest_batch` through a cached [`ShardedReader`] never observe a
//! stale hit.
//!
//! The contract under test is the one the snapshot-keyed
//! [`QueryCache`](obs_live::QueryCache) is built on: a cache entry is
//! keyed by the exact snapshot `Arc`s (one per shard, plus the global
//! blend) that produced it, so a hit can only ever be served to a
//! reader *holding those same epochs*. The test makes the contract
//! observable — each reader iteration pins a view, asks the cached
//! path and the uncached oracle for the same query **on that pin**,
//! and demands bit-identical rankings — while a writer publishes new
//! epochs underneath it as fast as it can. A cache that survived an
//! epoch swap (or leaked an entry across blend re-publication) would
//! hand a reader a ranking from documents its pinned snapshots don't
//! hold, and the oracle comparison would fail.
//!
//! Determinism discipline matches `live_concurrency.rs`: the thread
//! interleaving is free, the assertions are not. Run under
//! `--release` too (CI does) — races hide in debug timings.

use obs_analytics::{AlexaPanel, LinkGraph};
use obs_live::{CacheMetrics, QueryCache, ShardedLiveService};
use obs_model::{CorpusDelta, PostId};
use obs_search::{BlendWeights, SearchEngine};
use obs_synth::{World, WorldConfig};
use obs_telemetry::Registry;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("obs_live_cachet_{}_{}", std::process::id(), tag))
}

/// An engine carrying the world's static signals but zero documents.
fn empty_seed(world: &World, engine: &SearchEngine) -> SearchEngine {
    let all: Vec<PostId> = world.corpus.posts().iter().map(|p| p.id).collect();
    let mut empty = engine.clone();
    empty.apply_delta(&CorpusDelta::for_removals(&world.corpus, &all).unwrap());
    empty
}

fn delta_stream(world: &World, chunk: usize) -> Vec<CorpusDelta> {
    let posts: Vec<PostId> = world.corpus.posts().iter().map(|p| p.id).collect();
    posts
        .chunks(chunk)
        .map(|c| CorpusDelta::for_posts(&world.corpus, c).unwrap())
        .collect()
}

fn cleanup(dir: &Path) {
    std::fs::remove_dir_all(dir).ok();
}

const QUERIES: [&[&str]; 4] = [
    &["duomo", "rooftop"],
    &["castle", "gardens"],
    &["market", "fountain"],
    &["duomo", "castle", "museum"],
];

#[test]
fn racing_readers_never_observe_a_stale_cache_hit() {
    let world = World::generate(WorldConfig {
        sources: 60,
        users: 300,
        ..WorldConfig::small(9119)
    });
    let panel = AlexaPanel::simulate(&world, 1);
    let links = LinkGraph::simulate(&world, 2);
    let full = SearchEngine::build(&world.corpus, &panel, &links, BlendWeights::default());
    let seed = empty_seed(&world, &full);
    let stream = delta_stream(&world, 9);

    let dir = temp_dir("race");
    let registry = Registry::new();
    let metrics = CacheMetrics::new(&registry);
    let mut service = ShardedLiveService::start(&seed, 3, &dir)
        .unwrap()
        .with_query_cache(QueryCache::new(256).with_metrics(metrics.clone()));

    // Prime one burst so readers racing the very first publish still
    // have a non-empty corpus to rank.
    service.ingest_batch(&stream[..1]).unwrap();

    let reader = service.reader();
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        // 6 reader threads, each cycling the query mix against its
        // own pinned views while the writer publishes underneath.
        for t in 0..6usize {
            let reader = reader.clone();
            let done = &done;
            scope.spawn(move || {
                let mut iterations = 0usize;
                loop {
                    let finished = done.load(Ordering::Acquire);
                    let terms = QUERIES[(t + iterations) % QUERIES.len()];
                    let pinned = reader.pin();
                    let cached = reader.query_pinned(&pinned, terms, 25);
                    let oracle = reader.query_uncached(&pinned, terms, 25);
                    assert_eq!(
                        cached,
                        oracle,
                        "reader {t} iteration {iterations}: cached ranking diverged \
                         from a fresh query over the same pinned epochs {:?}",
                        pinned.seqs()
                    );
                    iterations += 1;
                    // One full pass after the writer finishes, so the
                    // final epochs are exercised too.
                    if finished && iterations >= QUERIES.len() {
                        break;
                    }
                }
            });
        }
        // The writer: publish every remaining burst, then signal.
        for batch in stream[1..].chunks(2) {
            service.ingest_batch(batch).unwrap();
        }
        done.store(true, Ordering::Release);
    });

    assert_eq!(service.doc_count(), full.doc_count());
    // The mix repeats queries within an epoch, so the cache must have
    // actually served hits — otherwise this test exercised nothing.
    assert!(
        metrics.hits() > 0,
        "cache never hit: the race test is vacuous"
    );
    assert!(metrics.fills() > 0);
    cleanup(&dir);
}

#[test]
fn epoch_publication_invalidates_without_explicit_flush() {
    let world = World::generate(WorldConfig::small(9120));
    let panel = AlexaPanel::simulate(&world, 1);
    let links = LinkGraph::simulate(&world, 2);
    let full = SearchEngine::build(&world.corpus, &panel, &links, BlendWeights::default());
    let seed = empty_seed(&world, &full);
    let stream = delta_stream(&world, 11);

    let dir = temp_dir("epochs");
    let registry = Registry::new();
    let metrics = CacheMetrics::new(&registry);
    let mut service = ShardedLiveService::start(&seed, 2, &dir)
        .unwrap()
        .with_query_cache(QueryCache::new(64).with_metrics(metrics.clone()));
    let reader = service.reader();
    let probe = ["duomo", "gardens"];

    let mut last = None;
    for batch in stream.chunks(3) {
        service.ingest_batch(batch).unwrap();
        // Same terms, same k — but fresh epochs, so the cached path
        // must recompute and track the growing corpus.
        let pinned = reader.pin();
        let hits = reader.query_pinned(&pinned, &probe, 30);
        assert_eq!(hits, reader.query_uncached(&pinned, &probe, 30));
        // Second ask on the same pin is a pure hit, same answer.
        assert_eq!(hits, reader.query_pinned(&pinned, &probe, 30));
        last = Some(hits);
    }
    let unsharded = full.query(&probe, 30);
    assert_eq!(
        last.unwrap(),
        unsharded,
        "final cached ranking must match the batch engine"
    );
    // Every chunk filled a fresh entry; every second ask hit.
    let chunks = stream.chunks(3).count() as u64;
    assert_eq!(metrics.fills(), chunks);
    assert!(metrics.hits() >= chunks);
    cleanup(&dir);
}
