//! The live service: crawl ticks in, durable snapshots out.
//!
//! [`LiveService`] owns the three moving parts — journal, writer,
//! snapshot store — and enforces the one ordering that makes crashes
//! safe: **journal (fsync) → apply → publish**. A delta is applied
//! to the served engine only after it is durable, so the journal is
//! always a superset of every published snapshot, and replaying it
//! over a checkpoint reproduces the pre-crash engine exactly.

use crate::error::LiveError;
use crate::journal::DeltaJournal;
use crate::metrics::LiveMetrics;
use crate::snapshot::{LiveWriter, SnapshotReader};
use obs_model::{Clock, CorpusDelta};
use obs_search::SearchEngine;
use obs_wrappers::{CrawlReport, Crawler, DataService, HighWaterMarks, SweepReport};
use std::path::Path;

/// What [`LiveService::recover`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Journal records replayed into the checkpoint engine.
    pub replayed: usize,
    /// Records skipped because the checkpoint already covered them.
    pub skipped: usize,
    /// Whether a truncated final record was dropped (torn tail).
    pub torn_tail_dropped: bool,
    /// Sequence the recovered service resumed at.
    pub recovered_seq: u64,
}

/// A continuously-updatable, concurrently-queryable engine.
#[derive(Debug)]
pub struct LiveService {
    writer: LiveWriter,
    journal: DeltaJournal,
    metrics: Option<LiveMetrics>,
}

impl LiveService {
    /// Starts a fresh service over `engine`, creating (truncating)
    /// the journal at `journal_path`. The engine is published
    /// immediately as snapshot 0.
    pub fn start(
        engine: SearchEngine,
        journal_path: impl AsRef<Path>,
    ) -> Result<LiveService, LiveError> {
        Ok(LiveService {
            writer: LiveWriter::new(engine, 0),
            journal: DeltaJournal::create(journal_path)?,
            metrics: None,
        })
    }

    /// Attaches commit-pipeline metrics: every subsequent ingest
    /// records per-stage durations (journal/fsync/apply/publish, or
    /// the fused `journal_fsync` on the batch path), batch sizes,
    /// and the commit/retraction/rollback counters. Attach after
    /// [`LiveService::start`] or [`LiveService::recover`]; the
    /// uninstrumented service records nothing and pays nothing.
    pub fn with_metrics(mut self, metrics: LiveMetrics) -> LiveService {
        self.metrics = Some(metrics);
        self
    }

    /// Rebuilds the exact pre-crash service: opens the journal at
    /// `journal_path` (healing any torn tail) and replays every
    /// record past `checkpoint_seq` into `checkpoint` — the engine
    /// state that covered sequences `..=checkpoint_seq`. For a
    /// journal that was never compacted, the checkpoint is simply
    /// the engine the service originally started with and
    /// `checkpoint_seq` is 0.
    ///
    /// Fails with [`LiveError::CheckpointGap`] if compaction has
    /// dropped records the checkpoint does not cover.
    pub fn recover(
        checkpoint: SearchEngine,
        checkpoint_seq: u64,
        journal_path: impl AsRef<Path>,
    ) -> Result<(LiveService, RecoveryReport), LiveError> {
        let (mut journal, replay) = DeltaJournal::open(journal_path)?;
        let mut report = RecoveryReport {
            torn_tail_dropped: replay.torn_tail_dropped,
            ..RecoveryReport::default()
        };
        if let Some(first) = replay.records.first() {
            if first.seq > checkpoint_seq + 1 {
                return Err(LiveError::CheckpointGap {
                    checkpoint_seq,
                    journal_first_seq: first.seq,
                });
            }
        }
        let mut writer = LiveWriter::new(checkpoint, checkpoint_seq);
        for record in &replay.records {
            if record.seq <= checkpoint_seq {
                report.skipped += 1;
                continue;
            }
            writer.apply(record.seq, &record.delta);
            report.replayed += 1;
        }
        writer.publish();
        report.recovered_seq = writer.seq();
        // A fully-compacted journal file carries no records to derive
        // its position from; the checkpoint knows better. Without
        // this, the first post-recovery ingest would be stamped seq 1
        // and rejected by the writer.
        journal.resume_at(report.recovered_seq + 1);
        Ok((
            LiveService {
                writer,
                journal,
                metrics: None,
            },
            report,
        ))
    }

    /// Ingests one delta: journals it durably (append + fsync),
    /// applies it to the engine, publishes the new snapshot. Returns
    /// the sequence number the delta was stamped with. On a journal
    /// failure the engine and the served snapshot are untouched, and
    /// a record whose fsync failed is retracted from the journal —
    /// it was never acknowledged, so it must neither occupy the
    /// sequence the retry will claim nor resurface on recovery.
    ///
    /// An **empty delta is a cheap no-op** returning the current
    /// sequence: it journals nothing, syncs nothing and publishes
    /// nothing, so a tick over an already-caught-up source leaves
    /// the journal byte-identical instead of burning a sequence
    /// number and an fsync on zero changes.
    pub fn ingest(&mut self, delta: &CorpusDelta) -> Result<u64, LiveError> {
        if delta.is_empty() {
            return Ok(self.seq());
        }
        let mut watch = self.metrics.as_ref().map(LiveMetrics::stopwatch);
        let seq = self.journal.append(delta)?;
        if let (Some(m), Some(w)) = (&self.metrics, watch.as_mut()) {
            w.lap_into(&m.stage_journal);
        }
        if let Err(sync_err) = self.journal.sync() {
            if let Some(m) = &self.metrics {
                m.retractions.inc();
            }
            // Best effort: if the retract also fails the journal and
            // writer sequences have diverged and only recover() can
            // rebuild a consistent service; surface the original
            // failure either way.
            let _ = self.journal.retract_staged(); // lint:allow(discard): best effort per the comment above; the sync error wins
            return Err(sync_err.into());
        }
        if let (Some(m), Some(w)) = (&self.metrics, watch.as_mut()) {
            w.lap_into(&m.stage_fsync);
        }
        self.writer.apply(seq, delta);
        if let (Some(m), Some(w)) = (&self.metrics, watch.as_mut()) {
            w.lap_into(&m.stage_apply);
        }
        self.writer.publish();
        if let (Some(m), Some(w)) = (&self.metrics, watch.as_mut()) {
            w.lap_into(&m.stage_publish);
            m.commits.inc();
        }
        Ok(seq)
    }

    /// Ingests a burst of deltas as one *group commit*: every
    /// non-empty delta is journaled with its own sequence number but
    /// the whole batch shares **one** fsync, one copy-on-write index
    /// detach, one static-signal re-blend and one published
    /// snapshot. Returns the sequence of the last delta in the batch
    /// (the current sequence when the batch carries no changes).
    ///
    /// All-or-nothing: a batch whose fsync fails is retracted in
    /// full — no record of it survives in the journal, the engine
    /// and the served snapshot are untouched, and a retry re-claims
    /// the same sequence numbers. Empty deltas are skipped without
    /// burning sequences, mirroring [`LiveService::ingest`].
    ///
    /// Readers of snapshots only ever observe batch boundaries: the
    /// intermediate states "inside" a batch are never published.
    /// Recovery replays the per-delta records one at a time and
    /// reproduces the identical engine *by construction* — the live
    /// batch applies the same deltas in the same order, just with
    /// the re-blend deferred to the end (proved at the workspace
    /// level down to BM25 score maps).
    pub fn ingest_batch(&mut self, deltas: &[CorpusDelta]) -> Result<u64, LiveError> {
        let fresh: Vec<&CorpusDelta> = deltas.iter().filter(|d| !d.is_empty()).collect();
        let mut watch = self.metrics.as_ref().map(LiveMetrics::stopwatch);
        let appended = match self.journal.append_batch(&fresh) {
            Ok(appended) => appended,
            Err(e) => {
                // `append_batch` already retracted the staged batch
                // (all-or-nothing); account for it.
                if let Some(m) = &self.metrics {
                    m.retractions.inc();
                }
                return Err(e.into());
            }
        };
        let Some((first, _)) = appended else {
            return Ok(self.seq());
        };
        // The batch path journals and fsyncs inside one
        // `append_batch` call — that fusion *is* the group commit —
        // so the stage label is the fused `journal_fsync`.
        if let (Some(m), Some(w)) = (&self.metrics, watch.as_mut()) {
            w.lap_into(&m.stage_journal_fsync);
            m.batch_deltas.record(fresh.len() as u64);
        }
        self.writer.apply_batch(first, &fresh);
        if let (Some(m), Some(w)) = (&self.metrics, watch.as_mut()) {
            w.lap_into(&m.stage_apply);
        }
        self.writer.publish();
        if let (Some(m), Some(w)) = (&self.metrics, watch.as_mut()) {
            w.lap_into(&m.stage_publish);
            m.commits.inc();
        }
        Ok(self.seq())
    }

    /// One crawl tick: crawls `service` since its high-water mark
    /// (advancing it), and — if anything new was observed — ingests
    /// the resulting delta. Returns the current sequence and the
    /// crawl report; an empty tick journals nothing.
    ///
    /// If the journal refuses the delta, the source's high-water
    /// mark is rolled back to its pre-tick value: content the
    /// journal never accepted must stay observable, or a retried
    /// tick would skip it forever.
    pub fn tick(
        &mut self,
        crawler: &Crawler,
        service: &mut dyn DataService,
        clock: &mut Clock,
        marks: &mut HighWaterMarks,
    ) -> Result<(u64, CrawlReport), LiveError> {
        let source = service.descriptor().source;
        let pre_tick_mark = marks.since(source);
        let (delta, crawl_report) = crawler.crawl_tick(service, clock, marks)?;
        // An empty tick is a no-op inside `ingest` — nothing
        // journaled, nothing published.
        if let Err(e) = self.ingest(&delta) {
            marks.rollback(source, pre_tick_mark);
            if let Some(m) = &self.metrics {
                m.rollbacks.inc();
            }
            return Err(e);
        }
        Ok((self.seq(), crawl_report))
    }

    /// One sweep tick over *every* registered service: crawls each
    /// since its high-water mark
    /// ([`Crawler::crawl_sweep`](obs_wrappers::Crawler::crawl_sweep))
    /// and ingests the whole burst as one group commit — one fsync,
    /// one engine application, one published snapshot, however many
    /// sources had fresh content. Returns the current sequence and
    /// the sweep report.
    ///
    /// With `CrawlerConfig::workers > 1` the crawl half of the sweep
    /// fans out across that many worker threads; the burst joins
    /// back in service order, so the journal, the engine and the
    /// published snapshot are byte-for-byte what a sequential sweep
    /// produces (proptest-enforced at the workspace level). The
    /// journal → fsync → apply → publish ordering is untouched:
    /// parallelism ends at the join, before the first byte is
    /// journaled.
    ///
    /// Failure is all-or-nothing at both layers. A crawl failure
    /// advances no mark (the sequential path rolls back the marks it
    /// had advanced; the parallel path never advances them before
    /// the join succeeds) and nothing is journaled. If the journal
    /// refuses the batch, **every participating source's** mark is
    /// rolled back to its pre-sweep value — including sources whose
    /// crawls all succeeded: content the journal never accepted must
    /// stay observable, or a retried sweep would skip it forever.
    pub fn tick_sweep(
        &mut self,
        crawler: &Crawler,
        services: &mut [Box<dyn DataService + '_>],
        clock: &mut Clock,
        marks: &mut HighWaterMarks,
    ) -> Result<(u64, SweepReport), LiveError> {
        // Each layer guards its own failure domain: `crawl_sweep`
        // restores the marks when a *crawl* fails, this copy
        // restores them when the *journal* refuses the batch after
        // every crawl succeeded. The copy is O(sources) — noise next
        // to the sweep it protects.
        let pre_sweep = marks.clone();
        let (deltas, report) = crawler.crawl_sweep(services, clock, marks)?;
        if let Err(e) = self.ingest_batch(&deltas) {
            *marks = pre_sweep;
            if let Some(m) = &self.metrics {
                m.rollbacks.inc();
            }
            return Err(e);
        }
        Ok((self.seq(), report))
    }

    /// Arms the next `n` journal fsyncs to fail deterministically —
    /// durability fault injection for tests (see
    /// [`DeltaJournal::inject_sync_failures`]). A failed ingest must
    /// leave the engine, the served snapshot and the journal exactly
    /// as they were.
    pub fn inject_journal_sync_failures(&mut self, n: u32) {
        self.journal.inject_sync_failures(n);
    }

    /// A cloneable handle for reader threads. Snapshots acquired
    /// through it never block on an in-flight ingest.
    pub fn reader(&self) -> SnapshotReader {
        self.writer.reader()
    }

    /// Sequence of the last ingested delta (0 before the first).
    pub fn seq(&self) -> u64 {
        self.writer.seq()
    }

    /// The served engine's current document count.
    pub fn doc_count(&self) -> usize {
        self.writer.engine().doc_count()
    }

    /// Captures a checkpoint: a clone of the current engine (cheap —
    /// the index is shared copy-on-write) plus the sequence it
    /// covers. Feed it back to [`LiveService::recover`], and once it
    /// is safely stored, to [`LiveService::compact_through`].
    pub fn checkpoint(&self) -> (SearchEngine, u64) {
        (self.writer.engine().clone(), self.writer.seq())
    }

    /// Compacts the journal prefix `..=through_seq`. Only legal once
    /// a checkpoint covering `through_seq` exists outside the
    /// journal; recovery from an older checkpoint will fail with
    /// [`LiveError::CheckpointGap`] afterwards. Returns the number
    /// of records dropped.
    pub fn compact_through(&mut self, through_seq: u64) -> Result<usize, LiveError> {
        Ok(self.journal.compact_through(through_seq)?)
    }

    /// Number of records currently in the journal file.
    pub fn journal_len(&self) -> usize {
        self.journal.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs_analytics::{AlexaPanel, LinkGraph};
    use obs_model::{PostId, Timestamp};
    use obs_search::BlendWeights;
    use obs_synth::{World, WorldConfig};
    use obs_wrappers::service_for;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "obs_live_service_{}_{}_{}.journal",
            std::process::id(),
            tag,
            n
        ))
    }

    fn world_and_engine(seed: u64) -> (World, SearchEngine) {
        let world = World::generate(WorldConfig::small(seed));
        let panel = AlexaPanel::simulate(&world, 1);
        let links = LinkGraph::simulate(&world, 2);
        let engine = SearchEngine::build(&world.corpus, &panel, &links, BlendWeights::default());
        (world, engine)
    }

    /// Splits the most recent posts into `batches` delta batches.
    fn recent_batches(world: &World, batches: usize) -> Vec<CorpusDelta> {
        let midpoint = Timestamp(world.now.seconds() / 2);
        let recent: Vec<PostId> = world
            .corpus
            .posts()
            .iter()
            .filter(|p| p.published > midpoint)
            .map(|p| p.id)
            .collect();
        assert!(!recent.is_empty(), "world has no recent posts");
        let per = recent.len().div_ceil(batches);
        recent
            .chunks(per.max(1))
            .map(|chunk| CorpusDelta::for_posts(&world.corpus, chunk).unwrap())
            .collect()
    }

    /// An engine wound back to before `deltas` were applied.
    fn stale_engine(world: &World, engine: &SearchEngine) -> SearchEngine {
        let midpoint = Timestamp(world.now.seconds() / 2);
        let recent: Vec<PostId> = world
            .corpus
            .posts()
            .iter()
            .filter(|p| p.published > midpoint)
            .map(|p| p.id)
            .collect();
        let mut stale = engine.clone();
        stale.apply_delta(&CorpusDelta::for_removals(&world.corpus, &recent).unwrap());
        stale
    }

    #[test]
    fn ingest_journals_then_publishes() {
        let (world, engine) = world_and_engine(501);
        let stale = stale_engine(&world, &engine);
        let path = temp_path("ingest");
        let mut service = LiveService::start(stale.clone(), &path).unwrap();
        let reader = service.reader();
        assert_eq!(reader.snapshot().seq(), 0);

        for (i, delta) in recent_batches(&world, 4).iter().enumerate() {
            let seq = service.ingest(delta).unwrap();
            assert_eq!(seq, i as u64 + 1);
            let snap = reader.snapshot();
            assert_eq!(snap.seq(), seq);
            assert_eq!(snap.engine().doc_count(), service.doc_count());
        }
        // The converged engine equals the never-stale engine.
        assert_eq!(service.doc_count(), engine.doc_count());
        assert_eq!(service.journal_len(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_delta_ingest_is_a_cheap_no_op() {
        let (world, engine) = world_and_engine(507);
        let stale = stale_engine(&world, &engine);
        let path = temp_path("empty_ingest");
        let mut service = LiveService::start(stale, &path).unwrap();
        let batches = recent_batches(&world, 2);
        service.ingest(&batches[0]).unwrap();
        let seq = service.seq();
        let journal_bytes = std::fs::read(&path).unwrap();
        let snapshot_before = service.reader().snapshot();

        // An empty delta returns the current seq without journaling,
        // publishing or burning a sequence number.
        assert_eq!(service.ingest(&CorpusDelta::new()).unwrap(), seq);
        assert_eq!(service.seq(), seq);
        assert_eq!(service.journal_len(), 1);
        assert_eq!(std::fs::read(&path).unwrap(), journal_bytes);
        // Not even a republish: the served snapshot is the same Arc.
        assert!(service
            .reader()
            .snapshot()
            .engine()
            .shares_index_with(snapshot_before.engine()));

        // The next real ingest claims the next sequence — nothing
        // was burned.
        assert_eq!(service.ingest(&batches[1]).unwrap(), seq + 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tick_on_a_caught_up_source_leaves_the_journal_byte_identical() {
        let (world, engine) = world_and_engine(508);
        let path = temp_path("caught_up");
        // Start from the *full* engine: every source is already
        // caught up once the marks sit at `world.now`.
        let mut service = LiveService::start(engine, &path).unwrap();
        let crawler = Crawler::default();
        let mut marks = HighWaterMarks::new();
        for source in world.corpus.sources() {
            marks.advance(source.id, world.now);
        }
        let journal_bytes = std::fs::read(&path).unwrap();
        let seq = service.seq();
        for source in world.corpus.sources() {
            let mut clock = Clock::starting_at(world.now);
            let mut api = service_for(&world.corpus, source.id, world.now).unwrap();
            let (tick_seq, _) = service
                .tick(&crawler, api.as_mut(), &mut clock, &mut marks)
                .unwrap();
            assert_eq!(tick_seq, seq);
        }
        assert_eq!(service.journal_len(), 0);
        assert_eq!(std::fs::read(&path).unwrap(), journal_bytes);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn batched_ingest_equals_sequential_ingest() {
        let (world, engine) = world_and_engine(509);
        let stale = stale_engine(&world, &engine);
        let batches = recent_batches(&world, 5);
        let probe: Vec<String> = vec!["duomo".into(), "rooftop".into(), "castle".into()];

        let path_seq = temp_path("sequential");
        let mut sequential = LiveService::start(stale.clone(), &path_seq).unwrap();
        for delta in &batches {
            sequential.ingest(delta).unwrap();
        }

        let path_batch = temp_path("batched");
        let mut batched = LiveService::start(stale, &path_batch).unwrap();
        let last = batched.ingest_batch(&batches).unwrap();
        assert_eq!(last, batches.len() as u64);
        assert_eq!(batched.seq(), sequential.seq());
        assert_eq!(batched.journal_len(), sequential.journal_len());

        // Same engine state, same journal bytes: the batch only
        // changed *when* durability and publication were paid for.
        let a = sequential.reader().snapshot();
        let b = batched.reader().snapshot();
        assert_eq!(a.seq(), b.seq());
        assert_eq!(a.engine().doc_count(), b.engine().doc_count());
        assert_eq!(a.engine().query(&probe, 50), b.engine().query(&probe, 50));
        for s in world.corpus.sources() {
            assert_eq!(a.engine().static_score(s.id), b.engine().static_score(s.id));
        }
        assert_eq!(
            std::fs::read(&path_seq).unwrap(),
            std::fs::read(&path_batch).unwrap()
        );
        std::fs::remove_file(&path_seq).ok();
        std::fs::remove_file(&path_batch).ok();
    }

    #[test]
    fn batch_with_empty_deltas_skips_them_without_burning_sequences() {
        let (world, engine) = world_and_engine(510);
        let stale = stale_engine(&world, &engine);
        let batches = recent_batches(&world, 2);
        let path = temp_path("sparse_batch");
        let mut service = LiveService::start(stale, &path).unwrap();

        let sparse = vec![
            CorpusDelta::new(),
            batches[0].clone(),
            CorpusDelta::new(),
            batches[1].clone(),
        ];
        assert_eq!(service.ingest_batch(&sparse).unwrap(), 2);
        assert_eq!(service.journal_len(), 2);

        // An all-empty batch is a complete no-op.
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(
            service
                .ingest_batch(&[CorpusDelta::new(), CorpusDelta::new()])
                .unwrap(),
            2
        );
        assert_eq!(std::fs::read(&path).unwrap(), bytes);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_batch_sync_leaves_service_and_journal_untouched() {
        let (world, engine) = world_and_engine(511);
        let stale = stale_engine(&world, &engine);
        let batches = recent_batches(&world, 4);
        let path = temp_path("failed_batch");
        let mut service = LiveService::start(stale, &path).unwrap();
        service.ingest(&batches[0]).unwrap();
        let seq = service.seq();
        let journal_bytes = std::fs::read(&path).unwrap();
        let docs = service.doc_count();

        service.inject_journal_sync_failures(1);
        let err = service.ingest_batch(&batches[1..]).unwrap_err();
        assert!(matches!(err, LiveError::Journal(_)), "{err:?}");
        assert_eq!(service.seq(), seq);
        assert_eq!(service.doc_count(), docs);
        assert_eq!(service.journal_len(), 1);
        assert_eq!(std::fs::read(&path).unwrap(), journal_bytes);
        assert_eq!(service.reader().snapshot().seq(), seq);

        // The retry claims the exact sequences the failed batch had
        // staged.
        assert_eq!(
            service.ingest_batch(&batches[1..]).unwrap(),
            seq + (batches.len() as u64 - 1)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tick_sweep_group_commits_the_whole_crawl_burst() {
        let (world, engine) = world_and_engine(512);
        let stale = stale_engine(&world, &engine);
        let path = temp_path("sweep");
        let mut service = LiveService::start(stale, &path).unwrap();
        let crawler = Crawler::default();
        let midpoint = Timestamp(world.now.seconds() / 2);
        let mut marks = HighWaterMarks::new();
        for source in world.corpus.sources() {
            marks.advance(source.id, midpoint);
        }
        let mut services: Vec<Box<dyn DataService + '_>> = world
            .corpus
            .sources()
            .iter()
            .map(|s| service_for(&world.corpus, s.id, world.now).unwrap())
            .collect();
        let mut clock = Clock::starting_at(world.now);

        let (seq, report) = service
            .tick_sweep(&crawler, &mut services, &mut clock, &mut marks)
            .unwrap();
        assert_eq!(report.sources, world.corpus.sources().len());
        assert!(report.fresh_sources > 0, "no source had fresh content");
        // One record per fresh source, one published snapshot for
        // the whole burst.
        assert_eq!(seq, report.fresh_sources as u64);
        assert_eq!(service.journal_len(), report.fresh_sources);
        let snap = service.reader().snapshot();
        assert_eq!(snap.seq(), seq);
        // The sweep caught the engine all the way up.
        assert_eq!(service.doc_count(), engine.doc_count());

        // A second sweep observes nothing and journals nothing.
        let bytes = std::fs::read(&path).unwrap();
        let (seq2, report2) = service
            .tick_sweep(&crawler, &mut services, &mut clock, &mut marks)
            .unwrap();
        assert_eq!(seq2, seq);
        assert_eq!(report2.fresh_sources, 0);
        assert_eq!(std::fs::read(&path).unwrap(), bytes);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn refused_sweep_batch_rolls_back_every_participating_mark() {
        let (world, engine) = world_and_engine(513);
        let stale = stale_engine(&world, &engine);
        let path = temp_path("sweep_refused");
        let mut service = LiveService::start(stale, &path).unwrap();
        let crawler = Crawler::default();
        let midpoint = Timestamp(world.now.seconds() / 2);
        let mut marks = HighWaterMarks::new();
        for source in world.corpus.sources() {
            marks.advance(source.id, midpoint);
        }
        let pre_sweep = marks.clone();
        let mut services: Vec<Box<dyn DataService + '_>> = world
            .corpus
            .sources()
            .iter()
            .map(|s| service_for(&world.corpus, s.id, world.now).unwrap())
            .collect();
        let mut clock = Clock::starting_at(world.now);

        service.inject_journal_sync_failures(1);
        let err = service
            .tick_sweep(&crawler, &mut services, &mut clock, &mut marks)
            .unwrap_err();
        assert!(matches!(err, LiveError::Journal(_)), "{err:?}");
        // Every mark is back at its pre-sweep reading, so the retry
        // re-observes the full burst…
        assert_eq!(marks, pre_sweep);
        assert_eq!(service.seq(), 0);
        assert_eq!(service.journal_len(), 0);

        // …and succeeds.
        let (seq, report) = service
            .tick_sweep(&crawler, &mut services, &mut clock, &mut marks)
            .unwrap();
        assert!(report.fresh_sources > 0);
        assert_eq!(seq, report.fresh_sources as u64);
        assert_eq!(service.doc_count(), engine.doc_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parallel_tick_sweep_produces_the_sequential_journal_and_engine() {
        let (world, engine) = world_and_engine(514);
        let stale = stale_engine(&world, &engine);
        let midpoint = Timestamp(world.now.seconds() / 2);
        let probe: Vec<String> = vec!["duomo".into(), "rooftop".into(), "castle".into()];

        let run = |crawler: Crawler, tag: &str| {
            let path = temp_path(tag);
            let mut service = LiveService::start(stale.clone(), &path).unwrap();
            let mut marks = HighWaterMarks::new();
            for source in world.corpus.sources() {
                marks.advance(source.id, midpoint);
            }
            let mut services: Vec<Box<dyn DataService + '_>> = world
                .corpus
                .sources()
                .iter()
                .map(|s| service_for(&world.corpus, s.id, world.now).unwrap())
                .collect();
            let mut clock = Clock::starting_at(world.now);
            let (seq, report) = service
                .tick_sweep(&crawler, &mut services, &mut clock, &mut marks)
                .unwrap();
            let journal = std::fs::read(&path).unwrap();
            std::fs::remove_file(&path).ok();
            (service, seq, report, journal, marks)
        };

        let (seq_service, seq_seq, seq_report, seq_journal, seq_marks) =
            run(Crawler::default(), "seq_sweep");
        let parallel = Crawler::new(obs_wrappers::CrawlerConfig {
            workers: 4,
            ..Default::default()
        });
        let (par_service, par_seq, par_report, par_journal, par_marks) = run(parallel, "par_sweep");

        assert_eq!(seq_seq, par_seq);
        assert_eq!(seq_report, par_report);
        assert_eq!(seq_marks, par_marks);
        assert_eq!(seq_journal, par_journal, "journals must be byte-identical");
        let a = seq_service.reader().snapshot();
        let b = par_service.reader().snapshot();
        assert_eq!(a.engine().doc_count(), b.engine().doc_count());
        assert_eq!(a.engine().query(&probe, 50), b.engine().query(&probe, 50));
    }

    #[test]
    fn refused_parallel_sweep_batch_rolls_back_marks_of_succeeded_sources() {
        // The all-or-nothing contract at the mark layer, under a
        // *partially-failed* parallel sweep: every source's crawl
        // succeeds (and would advance its mark), the batch is
        // refused at fsync — and the marks of those succeeded
        // sources must roll back with everything else, or a retried
        // sweep would skip their content forever.
        let (world, engine) = world_and_engine(515);
        let stale = stale_engine(&world, &engine);
        let path = temp_path("par_sweep_refused");
        let mut service = LiveService::start(stale, &path).unwrap();
        let crawler = Crawler::new(obs_wrappers::CrawlerConfig {
            workers: 4,
            ..Default::default()
        });
        let midpoint = Timestamp(world.now.seconds() / 2);
        let mut marks = HighWaterMarks::new();
        for source in world.corpus.sources() {
            marks.advance(source.id, midpoint);
        }
        let pre_sweep = marks.clone();
        let mut services: Vec<Box<dyn DataService + '_>> = world
            .corpus
            .sources()
            .iter()
            .map(|s| service_for(&world.corpus, s.id, world.now).unwrap())
            .collect();
        let mut clock = Clock::starting_at(world.now);

        service.inject_journal_sync_failures(1);
        let err = service
            .tick_sweep(&crawler, &mut services, &mut clock, &mut marks)
            .unwrap_err();
        assert!(matches!(err, LiveError::Journal(_)), "{err:?}");
        // Every mark — all of them belonging to sources whose crawls
        // succeeded — is back at its pre-sweep reading.
        assert_eq!(marks, pre_sweep);
        assert_eq!(service.seq(), 0);
        assert_eq!(service.journal_len(), 0);

        // The retry re-observes the full burst and succeeds.
        let (seq, report) = service
            .tick_sweep(&crawler, &mut services, &mut clock, &mut marks)
            .unwrap();
        assert!(report.fresh_sources > 0);
        assert_eq!(seq, report.fresh_sources as u64);
        assert_eq!(service.doc_count(), engine.doc_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn kill_and_recover_is_bit_identical_to_uninterrupted() {
        let (world, engine) = world_and_engine(502);
        let stale = stale_engine(&world, &engine);
        let batches = recent_batches(&world, 5);
        let probe: Vec<String> = vec!["duomo".into(), "rooftop".into(), "castle".into()];

        // Uninterrupted run: all five batches through one service.
        let path_a = temp_path("uninterrupted");
        let mut uninterrupted = LiveService::start(stale.clone(), &path_a).unwrap();
        for delta in &batches {
            uninterrupted.ingest(delta).unwrap();
        }

        // Interrupted run: three batches, then the process "dies"
        // (service dropped without any shutdown grace).
        let path_b = temp_path("killed");
        {
            let mut doomed = LiveService::start(stale.clone(), &path_b).unwrap();
            for delta in &batches[..3] {
                doomed.ingest(delta).unwrap();
            }
        } // killed here

        // Recover from the original checkpoint + journal, then catch
        // up with the remaining batches.
        let (mut recovered, report) = LiveService::recover(stale.clone(), 0, &path_b).unwrap();
        assert_eq!(report.replayed, 3);
        assert_eq!(report.skipped, 0);
        assert_eq!(report.recovered_seq, 3);
        for delta in &batches[3..] {
            recovered.ingest(delta).unwrap();
        }

        // Bit-identical rankings and static scores.
        let a = uninterrupted.reader().snapshot();
        let b = recovered.reader().snapshot();
        assert_eq!(a.seq(), b.seq());
        assert_eq!(a.engine().doc_count(), b.engine().doc_count());
        assert_eq!(a.engine().query(&probe, 50), b.engine().query(&probe, 50));
        for s in world.corpus.sources() {
            assert_eq!(a.engine().static_score(s.id), b.engine().static_score(s.id));
        }
        std::fs::remove_file(&path_a).ok();
        std::fs::remove_file(&path_b).ok();
    }

    #[test]
    fn recover_from_mid_stream_checkpoint_skips_covered_prefix() {
        let (world, engine) = world_and_engine(503);
        let stale = stale_engine(&world, &engine);
        let batches = recent_batches(&world, 4);
        let path = temp_path("checkpointed");

        let mut service = LiveService::start(stale, &path).unwrap();
        service.ingest(&batches[0]).unwrap();
        service.ingest(&batches[1]).unwrap();
        let (checkpoint, checkpoint_seq) = service.checkpoint();
        assert_eq!(checkpoint_seq, 2);
        service.ingest(&batches[2]).unwrap();
        service.ingest(&batches[3]).unwrap();
        let expected = service.reader().snapshot();
        drop(service);

        let (recovered, report) = LiveService::recover(checkpoint, checkpoint_seq, &path).unwrap();
        assert_eq!(report.skipped, 2);
        assert_eq!(report.replayed, 2);
        assert_eq!(report.recovered_seq, 4);
        let probe: Vec<String> = vec!["duomo".into(), "gardens".into()];
        let snap = recovered.reader().snapshot();
        assert_eq!(snap.engine().doc_count(), expected.engine().doc_count());
        assert_eq!(
            snap.engine().query(&probe, 50),
            expected.engine().query(&probe, 50)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_after_checkpoint_still_recovers() {
        let (world, engine) = world_and_engine(504);
        let stale = stale_engine(&world, &engine);
        let batches = recent_batches(&world, 4);
        let path = temp_path("compacted");

        let mut service = LiveService::start(stale.clone(), &path).unwrap();
        for delta in &batches {
            service.ingest(delta).unwrap();
        }
        let (checkpoint, checkpoint_seq) = service.checkpoint();
        let dropped = service.compact_through(checkpoint_seq).unwrap();
        assert_eq!(dropped, 4);
        assert_eq!(service.journal_len(), 0);
        let expected_docs = service.doc_count();
        drop(service);

        // An empty (fully-compacted) journal replays fine even from
        // an old checkpoint: there is simply nothing to apply.
        let (ok, _) = LiveService::recover(stale.clone(), 0, &path).unwrap();
        assert_eq!(ok.seq(), 0);
        drop(ok);

        // The checkpoint covers everything compacted away.
        let (mut recovered, report) =
            LiveService::recover(checkpoint, checkpoint_seq, &path).unwrap();
        assert_eq!(report.replayed, 0);
        assert_eq!(recovered.doc_count(), expected_docs);
        assert_eq!(recovered.seq(), checkpoint_seq);

        // Ingestion continues the global sequence after recovering
        // from a fully-compacted (record-less) journal — the
        // checkpoint, not the empty file, pins the position.
        let last = world.corpus.posts().last().unwrap().id;
        let removal = CorpusDelta::for_removals(&world.corpus, &[last]).unwrap();
        let seq = recovered.ingest(&removal).unwrap();
        assert_eq!(seq, checkpoint_seq + 1);
        assert_eq!(recovered.reader().snapshot().seq(), seq);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stale_checkpoint_against_compacted_journal_is_a_gap() {
        let (world, engine) = world_and_engine(505);
        let stale = stale_engine(&world, &engine);
        let batches = recent_batches(&world, 4);
        let path = temp_path("gap");

        let mut service = LiveService::start(stale.clone(), &path).unwrap();
        for delta in &batches {
            service.ingest(delta).unwrap();
        }
        // Compact through 2 while records 3,4 remain.
        service.compact_through(2).unwrap();
        drop(service);

        // A checkpoint at 0 cannot bridge to first retained seq 3.
        let err = LiveService::recover(stale, 0, &path).unwrap_err();
        match err {
            LiveError::CheckpointGap {
                checkpoint_seq,
                journal_first_seq,
            } => {
                assert_eq!(checkpoint_seq, 0);
                assert_eq!(journal_first_seq, 3);
            }
            other => panic!("expected CheckpointGap, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crawl_ticks_flow_through_journal_to_snapshots() {
        let (world, engine) = world_and_engine(506);
        let stale = stale_engine(&world, &engine);
        let path = temp_path("ticks");
        let mut service = LiveService::start(stale, &path).unwrap();
        let crawler = Crawler::default();
        let midpoint = Timestamp(world.now.seconds() / 2);
        let mut marks = HighWaterMarks::new();
        for source in world.corpus.sources() {
            // The service was built from content up to the midpoint;
            // seed each mark there so ticks only surface fresh items.
            marks.advance(source.id, midpoint);
        }

        let before = service.seq();
        for source in world.corpus.sources() {
            let mut clock = Clock::starting_at(world.now);
            let mut api = service_for(&world.corpus, source.id, world.now).unwrap();
            service
                .tick(&crawler, api.as_mut(), &mut clock, &mut marks)
                .unwrap();
        }
        assert!(service.seq() > before, "no tick ingested anything");
        assert_eq!(service.journal_len() as u64, service.seq());
        let snap = service.reader().snapshot();
        assert_eq!(snap.seq(), service.seq());

        // A second sweep observes nothing new: same seq, no growth.
        let seq = service.seq();
        for source in world.corpus.sources() {
            let mut clock = Clock::starting_at(world.now);
            let mut api = service_for(&world.corpus, source.id, world.now).unwrap();
            service
                .tick(&crawler, api.as_mut(), &mut clock, &mut marks)
                .unwrap();
        }
        assert_eq!(service.seq(), seq);
        std::fs::remove_file(&path).ok();
    }
}
