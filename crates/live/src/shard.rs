//! Sharded serving: a partitioned corpus behind one scatter-gather
//! query plan.
//!
//! The single-shard [`LiveService`](crate::LiveService) pays two
//! whole-corpus costs per ingest burst: the copy-on-write index
//! detach touches the entire index, and every fsync serializes all
//! sources behind one journal. Partitioning the corpus into N shards
//! — hash of the source id, [`SourceId::shard`] — makes both costs
//! per-shard: each shard owns its own [`SearchEngine`] +
//! [`DeltaJournal`] +
//! [`SnapshotStore`](crate::SnapshotStore), routed sub-batches
//! commit in parallel (each reusing the group-commit
//! [`append_batch`](crate::DeltaJournal::append_batch) fsync
//! batching), and crash recovery replays only the dead shard's
//! journal.
//!
//! One routed batch flows as:
//!
//! ```text
//!                 ┌► shard 0: journal (fsync) ─► apply ─► publish
//! deltas ─ route ─┼► shard 1: journal (fsync) ─► apply ─► publish
//!  (by source id) └► shard 2: journal (fsync) ─► apply ─► publish
//!                                │ (parallel, one thread per shard)
//!            engagement of committed shards ─► global StaticBlend
//!                                              └► blend publish
//! ```
//!
//! Queries fan out with the scatter-gather plan
//! ([`obs_search::scatter_query`]): gather exact global statistics
//! across shard snapshots, score each shard against them, merge
//! top-k — **bit-identical to the unsharded scorer** because every
//! BM25 statistic is an exact integer sum and a source lives wholly
//! in one shard. The one piece of state that cannot be partitioned —
//! the z-score-standardized static blend — stays global: a single
//! [`StaticBlend`] absorbs every committed shard's engagement
//! through the same code path the unsharded engine uses and is
//! published through its own epoch cell beside the shard snapshots.
//!
//! Shards are **independent failure domains**: a refused fsync
//! retracts only that shard's sub-batch
//! ([`LiveError::ShardCommit`]), committed shards stay committed,
//! and [`ShardedLiveService::tick_sweep`] rolls back the high-water
//! marks of exactly the sources routed to the failed shards
//! ([`HighWaterMarks::rollback_many`]).

// lint:deterministic — routing decides which journal a delta lands
// in, so the same delta stream must route identically on every node
// and on every recovery replay.

use crate::cache::QueryCache;
use crate::error::LiveError;
use crate::journal::DeltaJournal;
use crate::metrics::ShardMetrics;
use crate::service::RecoveryReport;
use crate::snapshot::{EngineSnapshot, LiveWriter, SnapshotReader};
use obs_model::{Clock, CorpusDelta, PostId, SourceId};
use obs_search::{
    scatter_query, scatter_query_traced, SearchEngine, SearchHit, SearchMetrics, StaticBlend,
};
use obs_wrappers::{Crawler, DataService, HighWaterMarks, SweepReport};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};

/// Routes change-sets to shards by source id.
///
/// Documents and engagement route to [`SourceId::shard`] — a pure
/// function of the id, so a source's whole history lands in one
/// shard, which is what makes per-source aggregation (best score,
/// match count, engagement order) exact under scatter-gather.
/// Removals carry only a [`PostId`], so the router keeps a
/// post → shard registry fed by the adds it routes; removing a post
/// it never saw broadcasts to every shard, where removing an absent
/// document is a safe no-op.
///
/// With one shard, routing is the identity: the single sub-delta
/// reproduces the input delta exactly, so a 1-shard service journals
/// byte-for-byte what the unsharded service journals.
///
/// ```
/// use obs_live::ShardRouter;
/// use obs_model::{CorpusDelta, PostId, SourceId};
///
/// let mut router = ShardRouter::new(4);
/// let mut delta = CorpusDelta::new();
/// delta.add_doc(PostId::new(0), SourceId::new(3), "duomo rooftop");
/// delta.add_doc(PostId::new(1), SourceId::new(9), "castle gardens");
/// delta.note_engagement(SourceId::new(3), 1, 2);
///
/// let routed = router.route(&delta);
/// assert_eq!(routed.len(), 4);
///
/// // Every document landed in its source's shard, engagement
/// // beside it.
/// let home = SourceId::new(3).shard(4);
/// assert_eq!(routed[home].added[0].post, PostId::new(0));
/// assert_eq!(routed[home].engagement[0].source, SourceId::new(3));
///
/// // A later removal follows the registry back to the same shard.
/// let mut removal = CorpusDelta::new();
/// removal.remove_doc(PostId::new(0));
/// let routed = router.route(&removal);
/// assert_eq!(routed[home].removed, vec![PostId::new(0)]);
/// ```
#[derive(Debug, Clone)]
pub struct ShardRouter {
    shards: usize,
    /// Which shard each live post's document went to — consulted
    /// (and cleared) by removals, which carry no source id. Grows
    /// O(live posts); rebuilt from the journals on recovery.
    /// BTreeMap so iteration (debug dumps, future rebalancing) is
    /// ordered the same on every node and replay.
    homes: BTreeMap<PostId, usize>,
}

impl ShardRouter {
    /// A router over `shards` partitions.
    ///
    /// # Panics
    /// If `shards` is zero.
    pub fn new(shards: usize) -> ShardRouter {
        assert!(shards >= 1, "a shard router needs at least one shard");
        ShardRouter {
            shards,
            homes: BTreeMap::new(),
        }
    }

    /// Number of shards routed across.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard a source's documents and engagement route to.
    pub fn shard_of(&self, source: SourceId) -> usize {
        source.shard(self.shards)
    }

    /// The shard currently housing a post (`None` once removed or
    /// never added through this router).
    pub fn home_of(&self, post: PostId) -> Option<usize> {
        self.homes.get(&post).copied()
    }

    /// Splits one delta into per-shard sub-deltas (index = shard),
    /// updating the post registry. Within each sub-delta the
    /// removals-before-adds apply order and the relative order of
    /// entries are preserved, so per-shard application reproduces
    /// the unsharded application of the original delta restricted to
    /// that shard's sources. Assumes the documented
    /// [`CorpusDelta`] invariant of at most one engagement entry per
    /// source.
    pub fn route(&mut self, delta: &CorpusDelta) -> Vec<CorpusDelta> {
        let mut routed = vec![CorpusDelta::new(); self.shards];
        for &post in &delta.removed {
            match self.homes.remove(&post) {
                Some(home) => routed[home].remove_doc(post),
                // Unknown post: broadcast. Whichever shard holds it
                // removes it; for the rest it is a no-op.
                None => {
                    for sub in routed.iter_mut() {
                        sub.remove_doc(post);
                    }
                }
            }
        }
        for doc in &delta.added {
            let home = self.shard_of(doc.source);
            self.homes.insert(doc.post, home);
            routed[home].add_doc(doc.post, doc.source, doc.text.clone());
        }
        for e in &delta.engagement {
            routed[self.shard_of(e.source)].note_engagement(e.source, e.discussions, e.comments);
        }
        routed
    }

    /// Registry hook for recovery replay: records that `post`'s
    /// document lives in `shard`.
    pub(crate) fn note_home(&mut self, post: PostId, shard: usize) {
        self.homes.insert(post, shard);
    }

    /// Registry hook for recovery replay: records that `post` was
    /// removed.
    pub(crate) fn forget(&mut self, post: PostId) {
        self.homes.remove(&post);
    }
}

/// The global static blend behind its own epoch cell — readers grab
/// the current `Arc` under a lock held for one clone, exactly the
/// [`SnapshotStore`](crate::SnapshotStore) discipline.
#[derive(Debug)]
struct BlendCell {
    current: RwLock<Arc<StaticBlend>>,
}

impl BlendCell {
    fn new(blend: StaticBlend) -> BlendCell {
        BlendCell {
            current: RwLock::new(Arc::new(blend)),
        }
    }

    fn load(&self) -> Arc<StaticBlend> {
        match self.current.read() {
            Ok(guard) => Arc::clone(&guard),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    fn publish(&self, blend: Arc<StaticBlend>) {
        match self.current.write() {
            Ok(mut guard) => *guard = blend,
            Err(poisoned) => *poisoned.into_inner() = blend,
        }
    }
}

/// One shard's moving parts: its journal and its writer/snapshot
/// pair. Commit order inside a shard is the service invariant:
/// journal (fsync) → apply → publish.
#[derive(Debug)]
struct Shard {
    writer: LiveWriter,
    journal: DeltaJournal,
}

impl Shard {
    /// Group-commits this shard's sub-batch: all records under one
    /// fsync ([`DeltaJournal::append_batch`], all-or-nothing), one
    /// batched apply, one published snapshot. An empty batch touches
    /// nothing.
    fn commit(&mut self, deltas: &[CorpusDelta]) -> Result<(), LiveError> {
        let refs: Vec<&CorpusDelta> = deltas.iter().collect();
        let Some((first, _)) = self.journal.append_batch(&refs)? else {
            return Ok(());
        };
        self.writer.apply_batch(first, &refs);
        self.writer.publish();
        Ok(())
    }
}

/// What a failed multi-shard commit needs to surface internally: the
/// first failing shard and error, plus every source whose routed
/// content was refused (for mark rollback).
struct FailedCommit {
    shard: usize,
    error: LiveError,
    refused_sources: Vec<SourceId>,
}

impl FailedCommit {
    fn into_error(self) -> LiveError {
        LiveError::ShardCommit {
            shard: self.shard,
            cause: Box::new(self.error),
        }
    }
}

/// A sharded live service: N independent journal + writer + snapshot
/// columns behind one router, one global static blend and one
/// scatter-gather query plan.
///
/// Construction starts from an **empty** seed engine (carrying the
/// analytics-derived static signals but zero documents) and grows
/// every shard from the delta stream — an existing index cannot be
/// partitioned after the fact. The single-shard construction is the
/// unsharded service, byte-for-byte: same journal contents, same
/// rankings (proptest-pinned at the workspace level).
#[derive(Debug)]
pub struct ShardedLiveService {
    router: ShardRouter,
    shards: Vec<Shard>,
    /// The one global blend, absorbing every committed shard's
    /// engagement in arrival order.
    blend: StaticBlend,
    /// Published copy of `blend` for readers.
    blend_cell: Arc<BlendCell>,
    /// Per-shard commit instruments. This module is
    /// `lint:deterministic`, so all timing happens inside
    /// [`ShardMetrics`] (untagged `metrics` module) — the shard path
    /// only hands it closures and plan facts, never reads a clock.
    metrics: Option<ShardMetrics>,
    /// Snapshot-keyed result cache shared by every reader this
    /// service hands out. Lives in the untagged
    /// [`cache`](crate::cache) module for the same reason as the
    /// metrics: this module only holds the handle and calls methods.
    query_cache: Option<Arc<QueryCache>>,
}

impl ShardedLiveService {
    /// The journal path of shard `shard` under `dir`.
    pub fn shard_journal_path(dir: &Path, shard: usize) -> PathBuf {
        dir.join(format!("shard-{shard}.journal"))
    }

    /// Starts a fresh sharded service: `shards` journal files
    /// (`shard-{i}.journal`) created (truncated) under `dir` — the
    /// directory is created if missing — and every shard's writer
    /// seeded with a clone of `seed` at sequence 0. The global blend
    /// starts as `seed`'s blend.
    ///
    /// # Panics
    /// If `shards` is zero, or if `seed` already indexes documents —
    /// existing documents cannot be partitioned after the fact;
    /// ingest them as deltas instead.
    pub fn start(
        seed: &SearchEngine,
        shards: usize,
        dir: impl AsRef<Path>,
    ) -> Result<ShardedLiveService, LiveError> {
        Self::check_seed(seed, shards);
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(crate::journal::JournalError::Io)?;
        let mut handles = Vec::with_capacity(shards);
        for i in 0..shards {
            handles.push(Shard {
                writer: LiveWriter::new(seed.clone(), 0),
                journal: DeltaJournal::create(Self::shard_journal_path(dir, i))?,
            });
        }
        let blend = seed.blend().clone();
        Ok(ShardedLiveService {
            router: ShardRouter::new(shards),
            shards: handles,
            blend_cell: Arc::new(BlendCell::new(blend.clone())),
            blend,
            metrics: None,
            query_cache: None,
        })
    }

    /// Attaches per-shard commit and query instruments (see
    /// [`ShardMetrics`]): subsequent routed commits record per-shard
    /// latency, outcome counters and fan-out width, and readers
    /// built by [`ShardedLiveService::reader`] record scatter-gather
    /// stage timings. The uninstrumented service records nothing.
    pub fn with_metrics(mut self, metrics: ShardMetrics) -> ShardedLiveService {
        self.metrics = Some(metrics);
        self
    }

    /// Attaches a snapshot-keyed [`QueryCache`] (see
    /// [`cache`](crate::cache)): every reader built by
    /// [`ShardedLiveService::reader`] from now on shares it, and a
    /// repeated query over unchanged epochs is answered from the
    /// cached ranking instead of re-running the scatter plan. Epoch
    /// publication invalidates for free — entries are keyed to the
    /// snapshot `Arc` pointers a publish swaps out — so cached and
    /// uncached readers are observably identical (pinned by the
    /// cache-transparency concurrency suite). The uncached service
    /// caches nothing.
    pub fn with_query_cache(mut self, cache: QueryCache) -> ShardedLiveService {
        self.query_cache = Some(Arc::new(cache));
        self
    }

    /// Rebuilds the pre-crash service by replaying **each shard's own
    /// journal** over a clone of `seed` — shards recover
    /// independently, so the cost of a crash is proportional to the
    /// largest shard, not the corpus. The router's post registry and
    /// the global blend are rebuilt from the replayed records; the
    /// per-shard reports come back in shard order.
    ///
    /// # Panics
    /// As [`ShardedLiveService::start`].
    pub fn recover(
        seed: &SearchEngine,
        shards: usize,
        dir: impl AsRef<Path>,
    ) -> Result<(ShardedLiveService, Vec<RecoveryReport>), LiveError> {
        Self::check_seed(seed, shards);
        let dir = dir.as_ref();
        let mut router = ShardRouter::new(shards);
        let mut blend = seed.blend().clone();
        let mut blend_touched = false;
        let mut handles = Vec::with_capacity(shards);
        let mut reports = Vec::with_capacity(shards);
        for i in 0..shards {
            let (mut journal, replay) = DeltaJournal::open(Self::shard_journal_path(dir, i))?;
            if let Some(first) = replay.records.first() {
                if first.seq > 1 {
                    return Err(LiveError::CheckpointGap {
                        checkpoint_seq: 0,
                        journal_first_seq: first.seq,
                    });
                }
            }
            let mut writer = LiveWriter::new(seed.clone(), 0);
            for record in &replay.records {
                writer.apply(record.seq, &record.delta);
                // Registry rebuild mirrors routing order: removals
                // before adds, so a remove-then-readd inside one
                // delta leaves the post homed.
                for &post in &record.delta.removed {
                    router.forget(post);
                }
                for doc in &record.delta.added {
                    router.note_home(doc.post, i);
                }
                blend_touched |= blend.apply_engagement(&record.delta.engagement);
            }
            writer.publish();
            reports.push(RecoveryReport {
                replayed: replay.records.len(),
                skipped: 0,
                torn_tail_dropped: replay.torn_tail_dropped,
                recovered_seq: writer.seq(),
            });
            journal.resume_at(writer.seq() + 1);
            handles.push(Shard { writer, journal });
        }
        if blend_touched {
            blend.reblend();
        }
        Ok((
            ShardedLiveService {
                router,
                shards: handles,
                blend_cell: Arc::new(BlendCell::new(blend.clone())),
                blend,
                metrics: None,
                query_cache: None,
            },
            reports,
        ))
    }

    fn check_seed(seed: &SearchEngine, shards: usize) {
        assert!(shards >= 1, "a sharded service needs at least one shard");
        assert_eq!(
            seed.doc_count(),
            0,
            "the seed engine must be empty: an existing index cannot be \
             partitioned after the fact — ingest its documents as deltas"
        );
    }

    /// Ingests one delta through the routed path (see
    /// [`ShardedLiveService::ingest_batch`]).
    pub fn ingest(&mut self, delta: &CorpusDelta) -> Result<(), LiveError> {
        self.ingest_batch(std::slice::from_ref(delta))
    }

    /// Ingests a burst of deltas: routes every delta into per-shard
    /// sub-deltas, then commits each shard's sub-batch **in
    /// parallel** (one scoped thread per non-empty shard), each as
    /// its own group commit — per-shard journal records under one
    /// per-shard fsync, one batched apply, one published snapshot.
    /// Engagement of every *committed* shard is then absorbed into
    /// the global blend (in arrival order per source — exact, since
    /// a source maps to one shard) and the blend is re-standardized
    /// and published once.
    ///
    /// Failure is per-shard, not all-or-nothing across shards: a
    /// shard whose fsync is refused retracts its own sub-batch
    /// ([`DeltaJournal::append_batch`] semantics) while the other
    /// shards' commits stand. The error is
    /// [`LiveError::ShardCommit`] naming the first failed shard;
    /// sweep callers additionally get the refused sources' marks
    /// rolled back (see [`ShardedLiveService::tick_sweep`]).
    pub fn ingest_batch(&mut self, deltas: &[CorpusDelta]) -> Result<(), LiveError> {
        self.commit_routed(deltas).map_err(FailedCommit::into_error)
    }

    /// The shared ingest core: route, parallel per-shard commit,
    /// blend absorption for committed shards.
    fn commit_routed(&mut self, deltas: &[CorpusDelta]) -> Result<(), FailedCommit> {
        let mut routed: Vec<Vec<CorpusDelta>> = vec![Vec::new(); self.shards.len()];
        for delta in deltas {
            if delta.is_empty() {
                continue;
            }
            for (shard, sub) in self.router.route(delta).into_iter().enumerate() {
                if !sub.is_empty() {
                    routed[shard].push(sub);
                }
            }
        }
        let metrics = self.metrics.as_ref();
        if let Some(m) = metrics {
            m.fanout
                .record(routed.iter().filter(|b| !b.is_empty()).count() as u64);
        }
        let outcomes: Vec<Result<(), LiveError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .zip(&routed)
                .enumerate()
                .map(|(i, (shard, batch))| {
                    if batch.is_empty() {
                        None
                    } else {
                        Some(scope.spawn(move || match metrics {
                            Some(m) => m.time_shard_commit(i, || shard.commit(batch)),
                            None => shard.commit(batch),
                        }))
                    }
                })
                .collect();
            handles
                .into_iter()
                // lint:allow(panic): join only errs if the commit thread panicked; re-raising that panic is the designed propagation
                .map(|h| h.map_or(Ok(()), |h| h.join().expect("shard commit thread panicked")))
                .collect()
        });

        let mut failed: Option<(usize, LiveError)> = None;
        let mut refused_sources: Vec<SourceId> = Vec::new();
        let mut blend_touched = false;
        for (shard, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Ok(()) => {
                    for sub in &routed[shard] {
                        blend_touched |= self.blend.apply_engagement(&sub.engagement);
                    }
                }
                Err(error) => {
                    for sub in &routed[shard] {
                        refused_sources.extend(sub.added.iter().map(|d| d.source));
                        refused_sources.extend(sub.engagement.iter().map(|e| e.source));
                    }
                    if failed.is_none() {
                        failed = Some((shard, error));
                    }
                }
            }
        }
        if blend_touched {
            self.blend.reblend();
            self.blend_cell.publish(Arc::new(self.blend.clone()));
        }
        match failed {
            None => Ok(()),
            Some((shard, error)) => {
                refused_sources.sort_unstable();
                refused_sources.dedup();
                Err(FailedCommit {
                    shard,
                    error,
                    refused_sources,
                })
            }
        }
    }

    /// One sweep tick over every registered service, the sharded
    /// analogue of
    /// [`LiveService::tick_sweep`](crate::LiveService::tick_sweep):
    /// crawl each source since its high-water mark, route the burst
    /// and commit every shard's slice in parallel.
    ///
    /// Failure rollback is **per shard**: if some shards refuse
    /// their slice, only the sources routed to those shards get
    /// their marks rolled back to the pre-sweep readings
    /// ([`HighWaterMarks::rollback_many`]) — sources whose shard
    /// committed keep their advanced marks, because their content
    /// *is* durable. A crawl-layer failure behaves as in the
    /// unsharded sweep (the crawler restores the marks itself).
    pub fn tick_sweep(
        &mut self,
        crawler: &Crawler,
        services: &mut [Box<dyn DataService + '_>],
        clock: &mut Clock,
        marks: &mut HighWaterMarks,
    ) -> Result<SweepReport, LiveError> {
        let pre_sweep = marks.clone();
        let (deltas, report) = crawler.crawl_sweep(services, clock, marks)?;
        match self.commit_routed(&deltas) {
            Ok(()) => Ok(report),
            Err(failure) => {
                marks.rollback_many(failure.refused_sources.iter().copied(), &pre_sweep);
                if let Some(m) = &self.metrics {
                    m.rollbacks.inc();
                }
                Err(failure.into_error())
            }
        }
    }

    /// A scatter-gather reader over every shard's snapshot store and
    /// the global blend. Cloneable, `Send`, never blocks on an
    /// in-flight commit.
    pub fn reader(&self) -> ShardedReader {
        ShardedReader {
            readers: self.shards.iter().map(|s| s.writer.reader()).collect(),
            blend: Arc::clone(&self.blend_cell),
            metrics: self.metrics.as_ref().map(|m| m.search().clone()),
            cache: self.query_cache.clone(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard sequence of the last applied delta (0 before the
    /// first), in shard order.
    pub fn seqs(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.writer.seq()).collect()
    }

    /// Total documents across every shard.
    pub fn doc_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.writer.engine().doc_count())
            .sum()
    }

    /// Number of records in one shard's journal.
    pub fn journal_len(&self, shard: usize) -> usize {
        self.shards[shard].journal.len()
    }

    /// One shard's private engine state (diagnostics and equivalence
    /// tests; readers should go through
    /// [`ShardedLiveService::reader`]).
    pub fn shard_engine(&self, shard: usize) -> &SearchEngine {
        self.shards[shard].writer.engine()
    }

    /// The router (diagnostics: shard count, source → shard, post
    /// homes).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Arms the next `n` fsyncs of one shard's journal to fail
    /// deterministically — per-shard durability fault injection for
    /// tests.
    pub fn inject_journal_sync_failures(&mut self, shard: usize, n: u32) {
        self.shards[shard].journal.inject_sync_failures(n);
    }
}

/// A cloneable reader handle fanning queries across every shard.
///
/// Each query takes one snapshot per shard plus the current global
/// blend, then runs the scatter-gather plan
/// ([`obs_search::scatter_query`]) entirely outside any lock. Shard
/// snapshots are acquired independently, so a reader racing a
/// commit may see some shards one burst newer than others — the
/// cross-shard analogue of snapshot staleness, bounded by one burst.
#[derive(Debug, Clone)]
pub struct ShardedReader {
    readers: Vec<SnapshotReader>,
    blend: Arc<BlendCell>,
    /// Query-path instruments inherited from the service's
    /// [`ShardMetrics`]; the timing itself lives behind
    /// [`SearchMetrics`] so this `lint:deterministic` module stays
    /// clock-free.
    metrics: Option<SearchMetrics>,
    /// Snapshot-keyed result cache inherited from
    /// [`ShardedLiveService::with_query_cache`]; `None` means every
    /// query runs the scatter plan.
    cache: Option<Arc<QueryCache>>,
}

/// One consistent view of the serving state: a snapshot `Arc` per
/// shard plus the global blend `Arc`, pinned together at one instant
/// by [`ShardedReader::pin`].
///
/// Everything downstream of a pin — the scatter plan, the cache key,
/// the cache-transparency contract — is a pure function of this
/// struct, so a caller holding one can compare cached and uncached
/// evaluations of the *same* epochs even while commits race ahead.
#[derive(Debug, Clone)]
pub struct PinnedShards {
    snapshots: Vec<Arc<EngineSnapshot>>,
    blend: Arc<StaticBlend>,
}

impl PinnedShards {
    /// Per-shard snapshot sequences, in shard order.
    pub fn seqs(&self) -> Vec<u64> {
        self.snapshots.iter().map(|s| s.seq()).collect()
    }
}

impl ShardedReader {
    /// Pins the current epoch set: one snapshot per shard plus the
    /// current global blend, each acquired under its store's
    /// one-clone lock. Snapshots are acquired independently, so a
    /// pin racing a commit may see some shards one burst newer than
    /// others — the documented cross-shard staleness bound.
    pub fn pin(&self) -> PinnedShards {
        PinnedShards {
            snapshots: self.readers.iter().map(|r| r.snapshot()).collect(),
            blend: self.blend.load(),
        }
    }

    /// Evaluates a query across all shards, returning the top `k`
    /// sources — bit-identical to an unsharded engine holding the
    /// same documents (term normalization, scoring and tie-breaking
    /// included). Pins the current epochs and delegates to
    /// [`ShardedReader::query_pinned`], so a cached reader consults
    /// the cache under the pinned key.
    pub fn query<S: AsRef<str>>(&self, terms: &[S], k: usize) -> Vec<SearchHit> {
        let pinned = self.pin();
        self.query_pinned(&pinned, terms, k)
    }

    /// Evaluates a query against an explicit pinned view. With a
    /// cache attached, the result is served from (or filled into)
    /// the entry keyed by exactly these snapshot epochs — by the
    /// cache-transparency invariant it is bit-identical to
    /// [`ShardedReader::query_uncached`] on the same pin.
    pub fn query_pinned<S: AsRef<str>>(
        &self,
        pinned: &PinnedShards,
        terms: &[S],
        k: usize,
    ) -> Vec<SearchHit> {
        match &self.cache {
            Some(cache) => {
                cache.query_or_compute(&pinned.snapshots, &pinned.blend, terms, k, |normalized| {
                    self.run_plan(pinned, normalized, k)
                })
            }
            None => self.run_plan(pinned, terms, k),
        }
    }

    /// Evaluates a query against a pinned view, always running the
    /// full scatter plan and never touching the cache — the oracle
    /// side of the cache-transparency contract.
    pub fn query_uncached<S: AsRef<str>>(
        &self,
        pinned: &PinnedShards,
        terms: &[S],
        k: usize,
    ) -> Vec<SearchHit> {
        self.run_plan(pinned, terms, k)
    }

    /// The scatter-gather plan over a pinned view, instrumented when
    /// the service carries [`SearchMetrics`].
    fn run_plan<S: AsRef<str>>(
        &self,
        pinned: &PinnedShards,
        terms: &[S],
        k: usize,
    ) -> Vec<SearchHit> {
        let engines: Vec<&SearchEngine> = pinned.snapshots.iter().map(|s| s.engine()).collect();
        let blend = &pinned.blend;
        match &self.metrics {
            Some(m) => {
                let mut timer = m.trace();
                scatter_query_traced(
                    &engines,
                    terms,
                    k,
                    |s| blend.score(s),
                    blend.weights(),
                    &mut timer,
                )
            }
            None => scatter_query(&engines, terms, k, |s| blend.score(s), blend.weights()),
        }
    }

    /// Per-shard snapshot sequences, in shard order.
    pub fn seqs(&self) -> Vec<u64> {
        self.readers.iter().map(|r| r.snapshot().seq()).collect()
    }

    /// Total documents across the current shard snapshots.
    pub fn doc_count(&self) -> usize {
        self.readers
            .iter()
            .map(|r| r.snapshot().engine().doc_count())
            .sum()
    }

    /// The current global static score of a source (diagnostics and
    /// equivalence tests).
    pub fn static_score(&self, source: SourceId) -> f64 {
        self.blend.load().score(source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::LiveService;
    use obs_analytics::{AlexaPanel, LinkGraph};
    use obs_search::BlendWeights;
    use obs_synth::{World, WorldConfig};
    use obs_wrappers::service_for;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "obs_live_shard_{}_{}_{}",
            std::process::id(),
            tag,
            n
        ))
    }

    fn world_and_engine(seed: u64) -> (World, SearchEngine) {
        let world = World::generate(WorldConfig::small(seed));
        let panel = AlexaPanel::simulate(&world, 1);
        let links = LinkGraph::simulate(&world, 2);
        let engine = SearchEngine::build(&world.corpus, &panel, &links, BlendWeights::default());
        (world, engine)
    }

    /// An engine carrying the world's static signals but zero
    /// documents — the sharded seed.
    fn empty_seed(world: &World, engine: &SearchEngine) -> SearchEngine {
        let all: Vec<PostId> = world.corpus.posts().iter().map(|p| p.id).collect();
        let mut empty = engine.clone();
        empty.apply_delta(&CorpusDelta::for_removals(&world.corpus, &all).unwrap());
        assert_eq!(empty.doc_count(), 0);
        empty
    }

    /// The full post history as a stream of multi-post deltas.
    fn delta_stream(world: &World, chunk: usize) -> Vec<CorpusDelta> {
        let posts: Vec<PostId> = world.corpus.posts().iter().map(|p| p.id).collect();
        posts
            .chunks(chunk)
            .map(|c| CorpusDelta::for_posts(&world.corpus, c).unwrap())
            .collect()
    }

    fn cleanup(dir: &Path) {
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn router_sends_docs_engagement_and_removals_to_the_source_shard() {
        let mut router = ShardRouter::new(4);
        let source = SourceId::new(11);
        let home = router.shard_of(source);
        let mut delta = CorpusDelta::new();
        delta.add_doc(PostId::new(5), source, "duomo rooftop");
        delta.note_engagement(source, 2, 3);

        let routed = router.route(&delta);
        assert_eq!(routed.len(), 4);
        for (i, sub) in routed.iter().enumerate() {
            if i == home {
                assert_eq!(sub.added.len(), 1);
                assert_eq!(sub.engagement.len(), 1);
            } else {
                assert!(sub.is_empty(), "shard {i} got foreign content");
            }
        }
        assert_eq!(router.home_of(PostId::new(5)), Some(home));

        // The removal follows the registry, then clears it.
        let mut removal = CorpusDelta::new();
        removal.remove_doc(PostId::new(5));
        let routed = router.route(&removal);
        assert_eq!(routed[home].removed, vec![PostId::new(5)]);
        assert_eq!(router.home_of(PostId::new(5)), None);

        // Unknown posts broadcast to every shard.
        let mut unknown = CorpusDelta::new();
        unknown.remove_doc(PostId::new(999));
        let routed = router.route(&unknown);
        for sub in &routed {
            assert_eq!(sub.removed, vec![PostId::new(999)]);
        }
    }

    #[test]
    fn single_shard_routing_is_the_identity() {
        let mut router = ShardRouter::new(1);
        let mut delta = CorpusDelta::new();
        delta.remove_doc(PostId::new(9));
        delta.add_doc(PostId::new(1), SourceId::new(3), "duomo");
        delta.add_doc(PostId::new(2), SourceId::new(8), "castle");
        delta.note_engagement(SourceId::new(3), 1, 1);
        delta.note_engagement(SourceId::new(8), 2, 0);
        let routed = router.route(&delta);
        assert_eq!(routed.len(), 1);
        assert_eq!(routed[0], delta);
    }

    #[test]
    fn sharded_service_matches_unsharded_service() {
        let (world, engine) = world_and_engine(601);
        let seed = empty_seed(&world, &engine);
        let stream = delta_stream(&world, 7);
        let probe: Vec<String> = vec!["duomo".into(), "rooftop".into(), "castle".into()];

        let path = temp_dir("unsharded").join("single.journal");
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        let mut unsharded = LiveService::start(seed.clone(), &path).unwrap();
        let dir = temp_dir("sharded");
        let mut sharded = ShardedLiveService::start(&seed, 3, &dir).unwrap();

        for batch in stream.chunks(4) {
            unsharded.ingest_batch(batch).unwrap();
            sharded.ingest_batch(batch).unwrap();
        }
        assert_eq!(sharded.doc_count(), unsharded.doc_count());
        assert_eq!(sharded.doc_count(), engine.doc_count());

        let reader = sharded.reader();
        let unsharded_engine = unsharded.reader().snapshot();
        assert_eq!(
            reader.query(&probe, 50),
            unsharded_engine.engine().query(&probe, 50)
        );
        for s in world.corpus.sources() {
            assert_eq!(
                reader.static_score(s.id),
                unsharded_engine.engine().static_score(s.id)
            );
        }
        cleanup(path.parent().unwrap());
        cleanup(&dir);
    }

    #[test]
    fn instrumented_service_records_shard_commits_fanout_and_queries() {
        use obs_telemetry::Registry;

        let (world, engine) = world_and_engine(608);
        let seed = empty_seed(&world, &engine);
        let stream = delta_stream(&world, 7);
        let dir = temp_dir("metrics");
        let registry = Registry::new();
        let metrics = ShardMetrics::new(&registry, 3);
        let mut service = ShardedLiveService::start(&seed, 3, &dir)
            .unwrap()
            .with_metrics(metrics.clone());

        let mut bursts = 0u64;
        for batch in stream.chunks(4) {
            service.ingest_batch(batch).unwrap();
            bursts += 1;
        }
        // Every routed commit recorded an outcome: commit totals
        // across shards equal the fan-out histogram's running sum.
        let counts = metrics.commit_counts();
        let committed: u64 = counts.iter().map(|(_, c, _)| c).sum();
        assert!(committed > 0, "no shard commits recorded");
        assert_eq!(counts.iter().map(|(_, _, f)| f).sum::<u64>(), 0);
        let fanout = metrics.fanout.snapshot();
        assert_eq!(fanout.count(), bursts);
        assert_eq!(fanout.sum(), committed);

        // The instrumented reader answers identically and records
        // query-path timings.
        let reader = service.reader();
        let probe: Vec<String> = vec!["duomo".into(), "castle".into()];
        let hits = reader.query(&probe, 20);
        assert_eq!(hits, service.reader().query(&probe, 20));
        assert_eq!(metrics.search().query_snapshot().count(), 2);

        let text = registry.render_text();
        assert!(text.contains("live_shard_commit_ns_count{shard=\"0\"}"));
        assert!(text.contains("live_commit_fanout_shards_count"));
        assert!(text.contains("search_query_ns_count 2"));

        // A per-shard fsync failure lands in that shard's failure
        // column; the probe delta targets a source homed on shard 0.
        let source = (0..100)
            .map(SourceId::new)
            .find(|s| service.router().shard_of(*s) == 0)
            .unwrap();
        let mut probe_delta = CorpusDelta::new();
        probe_delta.add_doc(PostId::new(999_999), source, "metrics probe");
        service.inject_journal_sync_failures(0, 1);
        assert!(service.ingest_batch(&[probe_delta]).is_err());
        let counts = metrics.commit_counts();
        assert_eq!(counts[0].2, 1, "shard 0 failure not recorded: {counts:?}");
        cleanup(&dir);
    }

    #[test]
    fn one_shard_journals_byte_identically_to_the_unsharded_service() {
        let (world, engine) = world_and_engine(602);
        let seed = empty_seed(&world, &engine);
        let stream = delta_stream(&world, 5);

        let path = temp_dir("bytes_unsharded").join("single.journal");
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        let mut unsharded = LiveService::start(seed.clone(), &path).unwrap();
        let dir = temp_dir("bytes_sharded");
        let mut sharded = ShardedLiveService::start(&seed, 1, &dir).unwrap();

        for batch in stream.chunks(3) {
            unsharded.ingest_batch(batch).unwrap();
            sharded.ingest_batch(batch).unwrap();
        }
        let single = std::fs::read(&path).unwrap();
        let shard0 = std::fs::read(ShardedLiveService::shard_journal_path(&dir, 0)).unwrap();
        assert_eq!(single, shard0, "1-shard journal must be byte-identical");
        cleanup(path.parent().unwrap());
        cleanup(&dir);
    }

    #[test]
    fn failed_shard_leaves_other_shards_committed() {
        let (world, engine) = world_and_engine(603);
        let seed = empty_seed(&world, &engine);
        let stream = delta_stream(&world, 6);
        let dir = temp_dir("partial_failure");
        let mut service = ShardedLiveService::start(&seed, 2, &dir).unwrap();
        service.ingest_batch(&stream[..2]).unwrap();
        let seqs_before = service.seqs();
        let docs_before = service.doc_count();

        // The next burst routes content to both shards; shard 0's
        // fsync is refused.
        service.inject_journal_sync_failures(0, 1);
        let err = service.ingest_batch(&stream[2..]).unwrap_err();
        match err {
            LiveError::ShardCommit { shard, ref cause } => {
                assert_eq!(shard, 0);
                assert!(matches!(**cause, LiveError::Journal(_)), "{cause:?}");
            }
            other => panic!("expected ShardCommit, got {other:?}"),
        }
        // Shard 0 rolled its slice back; shard 1's commit stands.
        let seqs_after = service.seqs();
        assert_eq!(seqs_after[0], seqs_before[0]);
        assert!(seqs_after[1] > seqs_before[1], "healthy shard must commit");
        assert!(service.doc_count() > docs_before);
        assert!(service.doc_count() < engine.doc_count());
        cleanup(&dir);
    }

    #[test]
    fn sharded_sweep_rolls_back_only_the_failed_shards_sources() {
        let (world, engine) = world_and_engine(604);
        let seed = empty_seed(&world, &engine);
        let dir = temp_dir("sweep_rollback");
        let mut service = ShardedLiveService::start(&seed, 2, &dir).unwrap();
        let crawler = Crawler::default();
        let mut marks = HighWaterMarks::new();
        let pre_sweep = marks.clone();
        let mut services: Vec<Box<dyn DataService + '_>> = world
            .corpus
            .sources()
            .iter()
            .map(|s| service_for(&world.corpus, s.id, world.now).unwrap())
            .collect();
        let mut clock = Clock::starting_at(world.now);

        // Both shards host sources in any non-trivial world.
        let shard_of = |s: SourceId| s.shard(2);
        assert!(world.corpus.sources().iter().any(|s| shard_of(s.id) == 0));
        assert!(world.corpus.sources().iter().any(|s| shard_of(s.id) == 1));

        service.inject_journal_sync_failures(1, 1);
        let err = service
            .tick_sweep(&crawler, &mut services, &mut clock, &mut marks)
            .unwrap_err();
        assert!(
            matches!(err, LiveError::ShardCommit { shard: 1, .. }),
            "{err:?}"
        );
        // Every mark still advanced belongs to the committed shard
        // (sources with no observed items never get a mark at all),
        // and the committed shard did keep some.
        let mut committed_kept = 0;
        for source in world.corpus.sources() {
            if shard_of(source.id) == 1 {
                // Refused shard: back to the pre-sweep reading.
                assert_eq!(marks.since(source.id), pre_sweep.since(source.id));
            } else if marks.since(source.id).is_some() {
                committed_kept += 1;
            }
        }
        assert!(committed_kept > 0, "committed shard must keep its marks");

        // The retry re-observes only the refused sources and lands
        // the full corpus.
        let report = service
            .tick_sweep(&crawler, &mut services, &mut clock, &mut marks)
            .unwrap();
        assert!(report.fresh_sources > 0);
        assert_eq!(service.doc_count(), engine.doc_count());
        let extra = service
            .tick_sweep(&crawler, &mut services, &mut clock, &mut marks)
            .unwrap();
        assert_eq!(extra.fresh_sources, 0, "sweep must have converged");
        cleanup(&dir);
    }

    #[test]
    fn per_shard_recovery_restores_rankings_and_routing() {
        let (world, engine) = world_and_engine(605);
        let seed = empty_seed(&world, &engine);
        let stream = delta_stream(&world, 4);
        let probe: Vec<String> = vec!["duomo".into(), "gardens".into()];
        let dir = temp_dir("recovery");

        let (pre_hits, pre_seqs, pre_docs) = {
            let mut doomed = ShardedLiveService::start(&seed, 3, &dir).unwrap();
            for batch in stream.chunks(2) {
                doomed.ingest_batch(batch).unwrap();
            }
            let reader = doomed.reader();
            (reader.query(&probe, 50), doomed.seqs(), doomed.doc_count())
        }; // killed here — no shutdown, no checkpoint

        let (recovered, reports) = ShardedLiveService::recover(&seed, 3, &dir).unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(recovered.seqs(), pre_seqs);
        assert_eq!(recovered.doc_count(), pre_docs);
        for (i, report) in reports.iter().enumerate() {
            assert_eq!(report.recovered_seq, pre_seqs[i]);
            assert_eq!(report.replayed as u64, pre_seqs[i]);
            assert!(!report.torn_tail_dropped);
        }
        assert_eq!(recovered.reader().query(&probe, 50), pre_hits);

        // The rebuilt registry still routes removals home: removing
        // a known post lands in exactly one shard.
        let mut service = recovered;
        let post = world.corpus.posts().first().unwrap().id;
        let mut removal = CorpusDelta::new();
        removal.remove_doc(post);
        let docs = service.doc_count();
        service.ingest(&removal).unwrap();
        assert_eq!(service.doc_count(), docs - 1);
        cleanup(&dir);
    }

    #[test]
    #[should_panic(expected = "seed engine must be empty")]
    fn non_empty_seed_is_rejected() {
        let (_, engine) = world_and_engine(606);
        let dir = temp_dir("bad_seed");
        let _ = ShardedLiveService::start(&engine, 2, &dir);
    }
}
