//! Serving-layer metrics: commit pipeline stages and per-shard
//! health.
//!
//! This module is the *untagged* timing half of the serving layer's
//! observability. [`shard`](crate::shard) is `lint:deterministic`
//! (the router and commit order must replay identically), so it
//! never reads a clock itself — it hands closures to
//! [`ShardMetrics::time_shard_commit`], which lives here and owns
//! the [`TelemetryClock`](obs_telemetry::TelemetryClock). The
//! instruments:
//!
//! | instrument | type | labels | answers |
//! |---|---|---|---|
//! | `live_ingest_stage_ns` | histogram | `stage` | where does a commit spend its time? |
//! | `live_ingest_batch_deltas` | histogram | — | how big are group commits? |
//! | `live_commits_total` | counter | — | how many commits landed? |
//! | `live_journal_retractions_total` | counter | — | how often did durability fail? |
//! | `live_mark_rollbacks_total` | counter | — | how often were crawl cursors rolled back? |
//! | `live_shard_commit_ns` | histogram | `shard` | is one shard slow? |
//! | `live_shard_commits_total` | counter | `shard` | is commit load balanced? |
//! | `live_shard_failures_total` | counter | `shard` | is one shard failing? |
//! | `live_commit_fanout_shards` | histogram | — | how wide do routed commits fan out? |
//!
//! `stage` is `journal` / `fsync` / `apply` / `publish` for
//! single-delta ingest; the batch path journals and fsyncs in one
//! [`DeltaJournal::append_batch`](crate::DeltaJournal::append_batch)
//! call (that's the group-commit point), so it records that fused
//! stage as `stage="journal_fsync"` instead of the first two.

use crate::error::LiveError;
use obs_search::SearchMetrics;
use obs_telemetry::{Counter, Histogram, Registry, SharedClock, Stopwatch};

/// Instrument handles for one [`LiveService`](crate::LiveService)'s
/// commit pipeline. Cheap to clone; recording is lock-free.
#[derive(Debug, Clone)]
pub struct LiveMetrics {
    clock: SharedClock,
    pub(crate) stage_journal: Histogram,
    pub(crate) stage_fsync: Histogram,
    pub(crate) stage_journal_fsync: Histogram,
    pub(crate) stage_apply: Histogram,
    pub(crate) stage_publish: Histogram,
    pub(crate) batch_deltas: Histogram,
    pub(crate) commits: Counter,
    pub(crate) retractions: Counter,
    pub(crate) rollbacks: Counter,
}

impl LiveMetrics {
    /// Registers the commit-pipeline instruments in `registry`.
    pub fn new(registry: &Registry) -> LiveMetrics {
        let stage = |s: &str| registry.histogram_with("live_ingest_stage_ns", &[("stage", s)]);
        LiveMetrics {
            clock: registry.clock_handle(),
            stage_journal: stage("journal"),
            stage_fsync: stage("fsync"),
            stage_journal_fsync: stage("journal_fsync"),
            stage_apply: stage("apply"),
            stage_publish: stage("publish"),
            batch_deltas: registry.histogram("live_ingest_batch_deltas"),
            commits: registry.counter("live_commits_total"),
            retractions: registry.counter("live_journal_retractions_total"),
            rollbacks: registry.counter("live_mark_rollbacks_total"),
        }
    }

    /// A stopwatch on the metrics clock, for staging one commit.
    pub(crate) fn stopwatch(&self) -> Stopwatch {
        Stopwatch::start(self.clock.clone())
    }
}

/// Instrument handles for a
/// [`ShardedLiveService`](crate::ShardedLiveService): per-shard
/// commit latency and outcome counters, commit fan-out width, the
/// shared mark-rollback counter, and the query path's
/// [`SearchMetrics`] for its [`ShardedReader`](crate::ShardedReader).
#[derive(Debug, Clone)]
pub struct ShardMetrics {
    clock: SharedClock,
    commit_ns: Vec<Histogram>,
    commits: Vec<Counter>,
    failures: Vec<Counter>,
    pub(crate) fanout: Histogram,
    pub(crate) rollbacks: Counter,
    search: SearchMetrics,
}

impl ShardMetrics {
    /// Registers per-shard instruments for `shards` shards in
    /// `registry`.
    pub fn new(registry: &Registry, shards: usize) -> ShardMetrics {
        // Name literals stay inline at each registration call so the
        // instrument-drift lint pass can see them.
        ShardMetrics {
            clock: registry.clock_handle(),
            commit_ns: (0..shards)
                .map(|i| {
                    registry.histogram_with("live_shard_commit_ns", &[("shard", &i.to_string())])
                })
                .collect(),
            commits: (0..shards)
                .map(|i| {
                    registry.counter_with("live_shard_commits_total", &[("shard", &i.to_string())])
                })
                .collect(),
            failures: (0..shards)
                .map(|i| {
                    registry.counter_with("live_shard_failures_total", &[("shard", &i.to_string())])
                })
                .collect(),
            fanout: registry.histogram("live_commit_fanout_shards"),
            rollbacks: registry.counter("live_mark_rollbacks_total"),
            search: SearchMetrics::new(registry, shards),
        }
    }

    /// The query-path metrics a [`ShardedReader`](crate::ShardedReader)
    /// built from the instrumented service records into.
    pub fn search(&self) -> &SearchMetrics {
        &self.search
    }

    /// Runs one shard's commit closure under the latency/outcome
    /// instruments — the clock boundary the `lint:deterministic`
    /// shard module calls instead of reading time itself. A shard
    /// index beyond the registered range still runs the closure; it
    /// just records nothing.
    pub fn time_shard_commit<T>(
        &self,
        shard: usize,
        commit: impl FnOnce() -> Result<T, LiveError>,
    ) -> Result<T, LiveError> {
        let start = self.clock.now_ns();
        let outcome = commit();
        let elapsed = self.clock.now_ns().saturating_sub(start);
        if let Some(hist) = self.commit_ns.get(shard) {
            hist.record(elapsed);
        }
        let column = match &outcome {
            Ok(_) => &self.commits,
            Err(_) => &self.failures,
        };
        if let Some(counter) = column.get(shard) {
            counter.inc();
        }
        outcome
    }

    /// Per-shard commit counts `(shard, commits, failures)` — the
    /// balance view the examples print.
    pub fn commit_counts(&self) -> Vec<(usize, u64, u64)> {
        self.commits
            .iter()
            .zip(&self.failures)
            .enumerate()
            .map(|(i, (c, f))| (i, c.get(), f.get()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs_telemetry::ManualClock;
    use std::sync::Arc;

    #[test]
    fn shard_commit_timer_splits_outcomes_per_shard() {
        let clock = Arc::new(ManualClock::new());
        let registry = Registry::with_clock(clock.clone());
        let metrics = ShardMetrics::new(&registry, 2);

        let ok: Result<u32, LiveError> = metrics.time_shard_commit(0, || {
            clock.advance(500);
            Ok(7)
        });
        assert_eq!(ok.ok(), Some(7));
        let err: Result<(), LiveError> = metrics.time_shard_commit(1, || {
            clock.advance(900);
            Err(LiveError::CheckpointGap {
                checkpoint_seq: 0,
                journal_first_seq: 2,
            })
        });
        assert!(err.is_err());

        assert_eq!(metrics.commit_counts(), vec![(0, 1, 0), (1, 0, 1)]);
        assert_eq!(metrics.commit_ns[0].snapshot().sum(), 500);
        assert_eq!(metrics.commit_ns[1].snapshot().sum(), 900);
    }

    #[test]
    fn out_of_range_shard_still_commits() {
        let registry = Registry::new();
        let metrics = ShardMetrics::new(&registry, 1);
        let ok: Result<u32, LiveError> = metrics.time_shard_commit(9, || Ok(1));
        assert_eq!(ok.ok(), Some(1));
        assert_eq!(metrics.commit_counts(), vec![(0, 0, 0)]);
    }

    #[test]
    fn live_metrics_register_the_stage_series() {
        let registry = Registry::new();
        let metrics = LiveMetrics::new(&registry);
        metrics.stage_apply.record(10);
        metrics.commits.inc();
        let text = registry.render_text();
        assert!(text.contains("live_ingest_stage_ns_count{stage=\"apply\"} 1"));
        assert!(text.contains("live_commits_total 1"));
    }
}
