//! Epoch-style snapshot publication.
//!
//! The serving contract: any number of reader threads query the
//! engine while one writer applies crawl deltas, and **a reader
//! never blocks on an in-flight `apply_delta`**. The scheme is a
//! hand-rolled arc swap over `std::sync` (the build image is
//! offline, so no `arc-swap` crate):
//!
//! * the [`SnapshotStore`] holds the current [`EngineSnapshot`]
//!   behind an `RwLock<Arc<_>>`. Readers take the read lock *only
//!   long enough to clone the `Arc`* — nanoseconds — and then query
//!   their snapshot entirely outside any lock;
//! * the [`LiveWriter`] owns a private [`SearchEngine`] and applies
//!   deltas to it without holding any lock at all. The engine's
//!   index is copy-on-write (shared via `Arc` until mutated), so
//!   published snapshots are physically immune to later writes;
//! * publishing swaps the `Arc` under the write lock — again a
//!   pointer-sized critical section.
//!
//! The lock is therefore never held across an `apply_delta` or a
//! `query`; the worst a reader can experience is waiting for a
//! pointer swap. Readers holding an old snapshot keep its epoch of
//! the index alive until they drop it — the classic epoch
//! reclamation trade-off, made safe by `Arc`.

use obs_search::SearchEngine;
use std::sync::{Arc, RwLock};

/// One published, immutable engine state.
///
/// The sequence number is the journal sequence of the last delta the
/// engine absorbed (0 for the initial build), so observers can order
/// snapshots and correlate them with the durable log.
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    seq: u64,
    engine: SearchEngine,
}

impl EngineSnapshot {
    /// Wraps an engine state at a journal position.
    pub fn new(seq: u64, engine: SearchEngine) -> EngineSnapshot {
        EngineSnapshot { seq, engine }
    }

    /// Journal sequence of the last delta this snapshot contains.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The frozen engine. Query it freely — nothing can mutate it.
    pub fn engine(&self) -> &SearchEngine {
        &self.engine
    }
}

/// The swap point between one writer and many readers.
#[derive(Debug)]
pub struct SnapshotStore {
    current: RwLock<Arc<EngineSnapshot>>,
}

impl SnapshotStore {
    /// Creates a store serving `initial` until the first publish.
    pub fn new(initial: EngineSnapshot) -> SnapshotStore {
        SnapshotStore {
            current: RwLock::new(Arc::new(initial)),
        }
    }

    /// The current snapshot. Lock-held time is one `Arc` clone.
    pub fn load(&self) -> Arc<EngineSnapshot> {
        // A poisoned lock only means a reader panicked mid-clone;
        // the guarded Arc itself is always intact.
        match self.current.read() {
            Ok(guard) => Arc::clone(&guard),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    /// Swaps in a new snapshot. Lock-held time is one pointer swap.
    fn publish(&self, snapshot: Arc<EngineSnapshot>) {
        match self.current.write() {
            Ok(mut guard) => *guard = snapshot,
            Err(poisoned) => *poisoned.into_inner() = snapshot,
        }
    }
}

/// A cloneable, `Send` handle for reader threads.
#[derive(Debug, Clone)]
pub struct SnapshotReader {
    store: Arc<SnapshotStore>,
}

impl SnapshotReader {
    /// The current snapshot; query it outside any lock.
    pub fn snapshot(&self) -> Arc<EngineSnapshot> {
        self.store.load()
    }
}

/// The single owner of the mutable engine.
///
/// Applies deltas to a private copy-on-write engine and decides when
/// to publish. Keeping apply and publish separate lets a caller
/// batch several deltas per published snapshot (publishing is cheap,
/// but each publish-then-apply cycle detaches the index once).
#[derive(Debug)]
pub struct LiveWriter {
    engine: SearchEngine,
    store: Arc<SnapshotStore>,
    seq: u64,
}

impl LiveWriter {
    /// Starts a writer at `engine`/`seq` and publishes that state as
    /// the initial snapshot.
    pub fn new(engine: SearchEngine, seq: u64) -> LiveWriter {
        let store = Arc::new(SnapshotStore::new(EngineSnapshot::new(seq, engine.clone())));
        LiveWriter { engine, store, seq }
    }

    /// A reader handle onto this writer's store.
    pub fn reader(&self) -> SnapshotReader {
        SnapshotReader {
            store: Arc::clone(&self.store),
        }
    }

    /// Applies one delta to the private engine, stamping it as
    /// change `seq`. Not visible to readers until
    /// [`LiveWriter::publish`]. Sequence numbers must be contiguous.
    ///
    /// # Panics
    /// If `seq` is not exactly one past the last applied sequence —
    /// a skipped or replayed delta would silently corrupt the
    /// journal ↔ snapshot correspondence.
    pub fn apply(&mut self, seq: u64, delta: &obs_model::CorpusDelta) {
        assert_eq!(
            seq,
            self.seq + 1,
            "delta applied out of order: expected seq {}, got {seq}",
            self.seq + 1
        );
        self.engine.apply_delta(delta);
        self.seq = seq;
    }

    /// Applies a contiguous run of deltas as one batch, stamping
    /// them as changes `first_seq ..= first_seq + deltas.len() - 1`.
    ///
    /// The burst goes through
    /// [`SearchEngine::apply_deltas`](obs_search::SearchEngine::apply_deltas)
    /// *in replay order*: one copy-on-write index detach (the first
    /// apply detaches, the rest mutate the now-unique index in
    /// place) and one static-signal re-blend at the end, however
    /// many deltas the burst carries — the amortization the
    /// group-commit ingest path exists for, with zero cloning and
    /// unconditionally bit-identical results to replaying the same
    /// records one at a time on recovery. Not visible to readers
    /// until [`LiveWriter::publish`]; an empty batch is a no-op.
    ///
    /// # Panics
    /// If `first_seq` is not exactly one past the last applied
    /// sequence — a skipped or replayed batch would silently corrupt
    /// the journal ↔ snapshot correspondence.
    pub fn apply_batch(&mut self, first_seq: u64, deltas: &[&obs_model::CorpusDelta]) {
        if deltas.is_empty() {
            return;
        }
        assert_eq!(
            first_seq,
            self.seq + 1,
            "batch applied out of order: expected first seq {}, got {first_seq}",
            self.seq + 1
        );
        self.engine.apply_deltas(deltas.iter().copied());
        self.seq = first_seq + deltas.len() as u64 - 1;
    }

    /// Publishes the current engine state. Readers acquiring
    /// snapshots from now on see every delta applied so far.
    pub fn publish(&self) {
        self.store
            .publish(Arc::new(EngineSnapshot::new(self.seq, self.engine.clone())));
    }

    /// Sequence of the last applied (not necessarily published) delta.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The writer's private engine state (diagnostics; readers should
    /// go through [`LiveWriter::reader`]).
    pub fn engine(&self) -> &SearchEngine {
        &self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs_analytics::{AlexaPanel, LinkGraph};
    use obs_model::{CorpusDelta, PostId};
    use obs_search::BlendWeights;
    use obs_synth::{World, WorldConfig};

    fn engine() -> (World, SearchEngine) {
        let world = World::generate(WorldConfig::small(404));
        let panel = AlexaPanel::simulate(&world, 1);
        let links = LinkGraph::simulate(&world, 2);
        let engine = SearchEngine::build(&world.corpus, &panel, &links, BlendWeights::default());
        (world, engine)
    }

    #[test]
    fn initial_snapshot_serves_the_seed_engine() {
        let (_, engine) = engine();
        let docs = engine.doc_count();
        let writer = LiveWriter::new(engine, 0);
        let snap = writer.reader().snapshot();
        assert_eq!(snap.seq(), 0);
        assert_eq!(snap.engine().doc_count(), docs);
    }

    #[test]
    fn applies_are_invisible_until_publish() {
        let (world, engine) = engine();
        let mut writer = LiveWriter::new(engine, 0);
        let reader = writer.reader();
        let before = reader.snapshot();

        let last = world.corpus.posts().last().unwrap().id;
        let removal = CorpusDelta::for_removals(&world.corpus, &[last]).unwrap();
        writer.apply(1, &removal);
        // The published snapshot is untouched by the un-published
        // apply, down to index identity.
        let mid = reader.snapshot();
        assert_eq!(mid.seq(), 0);
        assert_eq!(mid.engine().doc_count(), before.engine().doc_count());
        assert!(mid.engine().shares_index_with(before.engine()));

        writer.publish();
        let after = reader.snapshot();
        assert_eq!(after.seq(), 1);
        assert_eq!(after.engine().doc_count(), before.engine().doc_count() - 1);
        // The old snapshot handle still serves the old epoch.
        assert_eq!(before.engine().doc_count(), mid.engine().doc_count());
    }

    #[test]
    fn apply_batch_equals_sequential_applies() {
        let (world, engine) = engine();
        let recent: Vec<PostId> = world
            .corpus
            .posts()
            .iter()
            .rev()
            .take(8)
            .map(|p| p.id)
            .collect();
        let deltas: Vec<CorpusDelta> = recent
            .chunks(2)
            .map(|chunk| CorpusDelta::for_removals(&world.corpus, chunk).unwrap())
            .collect();

        let mut sequential = LiveWriter::new(engine.clone(), 0);
        for (i, delta) in deltas.iter().enumerate() {
            sequential.apply(i as u64 + 1, delta);
        }
        sequential.publish();

        let mut batched = LiveWriter::new(engine, 0);
        let refs: Vec<&CorpusDelta> = deltas.iter().collect();
        batched.apply_batch(1, &refs);
        batched.publish();

        assert_eq!(batched.seq(), sequential.seq());
        assert_eq!(batched.seq(), deltas.len() as u64);
        let a = sequential.reader().snapshot();
        let b = batched.reader().snapshot();
        assert_eq!(a.seq(), b.seq());
        assert_eq!(a.engine().doc_count(), b.engine().doc_count());
        for s in world.corpus.sources() {
            assert_eq!(a.engine().static_score(s.id), b.engine().static_score(s.id));
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let (_, engine) = engine();
        let mut writer = LiveWriter::new(engine, 0);
        writer.apply_batch(1, &[]);
        assert_eq!(writer.seq(), 0);
    }

    #[test]
    #[should_panic(expected = "batch applied out of order")]
    fn out_of_order_batch_panics() {
        let (world, engine) = engine();
        let mut writer = LiveWriter::new(engine, 0);
        let last = world.corpus.posts().last().unwrap().id;
        let removal = CorpusDelta::for_removals(&world.corpus, &[last]).unwrap();
        writer.apply_batch(2, &[&removal]); // skips seq 1
    }

    #[test]
    #[should_panic(expected = "delta applied out of order")]
    fn out_of_order_apply_panics() {
        let (world, engine) = engine();
        let mut writer = LiveWriter::new(engine, 0);
        let last = world.corpus.posts().last().unwrap().id;
        let removal = CorpusDelta::for_removals(&world.corpus, &[last]).unwrap();
        writer.apply(2, &removal); // skips seq 1
    }

    #[test]
    fn unknown_post_delta_is_safe() {
        let (_, engine) = engine();
        let mut writer = LiveWriter::new(engine, 0);
        let mut delta = CorpusDelta::new();
        delta.remove_doc(PostId::new(9_999_999));
        writer.apply(1, &delta);
        writer.publish();
        assert_eq!(writer.reader().snapshot().seq(), 1);
    }
}
