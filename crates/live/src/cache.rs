//! Snapshot-keyed query caching for the sharded reader.
//!
//! A [`ShardedReader`](crate::ShardedReader) answers every query
//! from an immutable set of epoch snapshots, so two queries over the
//! *same* snapshots, the *same* global blend, the same normalized
//! terms and the same `k` are guaranteed — not just likely — to
//! return bit-identical hits. That makes the cache key trivial and
//! invalidation free:
//!
//! * **key** = the `Arc::as_ptr` identity of every shard's
//!   [`EngineSnapshot`] plus the published [`StaticBlend`], the
//!   [`normalize_query`]-normalized terms, and `k`. Publishing a new snapshot or blend swaps the
//!   `Arc` — the pointer changes, so every entry keyed to the old
//!   epoch simply stops matching. No flush, no version counter, no
//!   write-path coordination at all.
//! * **ABA safety**: a pointer is only an identity while its
//!   allocation lives. Each entry therefore holds [`Weak`] references
//!   to the exact snapshots and blend it was computed from; a `Weak`
//!   keeps the `ArcInner` allocation pinned (the weak count holds the
//!   box) even after the strong count reaches zero, so a key built
//!   from a *live* snapshot can never pointer-collide with an entry
//!   computed from a dead, recycled one.
//! * **eviction** is capacity-bounded FIFO: hits never take the write
//!   lock, so the hot path over a stable epoch is one read-locked
//!   hash probe plus a result clone. Epoch swaps naturally age dead
//!   entries out through the same FIFO.
//!
//! Transparency — a cached reader never observes anything a fresh
//! uncached query against the snapshots it holds would not return —
//! is pinned by the `cache_transparency` concurrency suite in
//! `crates/live/tests`.

use crate::snapshot::EngineSnapshot;
use obs_search::{normalize_query, SearchHit, StaticBlend};
use obs_telemetry::{Counter, Registry};
use std::borrow::Cow;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, RwLock, Weak};

/// Hit/miss/fill/eviction counters for one [`QueryCache`],
/// registered in an [`obs_telemetry::Registry`]. Cheap to clone;
/// recording is lock-free.
#[derive(Debug, Clone)]
pub struct CacheMetrics {
    hits: Counter,
    misses: Counter,
    fills: Counter,
    evictions: Counter,
}

impl CacheMetrics {
    /// Registers the query-cache instruments in `registry`.
    pub fn new(registry: &Registry) -> CacheMetrics {
        // Name literals stay inline at each registration call so the
        // instrument-drift lint pass can see them.
        CacheMetrics {
            hits: registry.counter("live_query_cache_hits_total"),
            misses: registry.counter("live_query_cache_misses_total"),
            fills: registry.counter("live_query_cache_fills_total"),
            evictions: registry.counter("live_query_cache_evictions_total"),
        }
    }

    /// Queries answered from a cached entry.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Queries that missed and ran the scatter plan.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Entries written after a miss.
    pub fn fills(&self) -> u64 {
        self.fills.get()
    }

    /// Entries displaced by the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }
}

/// The full identity of one answerable query: epoch pointers,
/// normalized terms, result size.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    /// `Arc::as_ptr` of each shard's snapshot, in shard order.
    epochs: Vec<usize>,
    /// `Arc::as_ptr` of the published global blend.
    blend: usize,
    /// Normalized query terms, in query order (duplicates included —
    /// the scorer collapses them, so keeping them costs nothing and
    /// keys stay a pure function of the normalized input).
    terms: Vec<String>,
    /// Requested result count.
    k: usize,
}

/// One cached ranking plus the weak pins that keep its key's pointer
/// identities honest (see the module docs on ABA safety).
#[derive(Debug)]
struct CacheEntry {
    hits: Vec<SearchHit>,
    _epochs: Vec<Weak<EngineSnapshot>>,
    _blend: Weak<StaticBlend>,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<CacheKey, CacheEntry>,
    /// Insertion order for FIFO eviction. May briefly hold keys a
    /// racing insert already displaced; eviction skips those.
    fifo: VecDeque<CacheKey>,
}

/// A capacity-bounded, snapshot-keyed cache of scatter-gather query
/// results. Attach one to a service with
/// [`ShardedLiveService::with_query_cache`](crate::ShardedLiveService::with_query_cache);
/// every reader the service hands out then shares it.
#[derive(Debug)]
pub struct QueryCache {
    capacity: usize,
    metrics: Option<CacheMetrics>,
    inner: RwLock<CacheInner>,
}

impl QueryCache {
    /// A cache holding at most `capacity` entries (FIFO eviction).
    /// Zero capacity is legal and caches nothing — every query runs
    /// the plan, which keeps the knob safe to drive from config.
    pub fn new(capacity: usize) -> QueryCache {
        QueryCache {
            capacity,
            metrics: None,
            inner: RwLock::new(CacheInner::default()),
        }
    }

    /// Attaches hit/miss/fill/eviction counters.
    pub fn with_metrics(mut self, metrics: CacheMetrics) -> QueryCache {
        self.metrics = Some(metrics);
        self
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.read(|inner| inner.map.len())
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Answers a query from the cache, or runs `compute` over the
    /// normalized terms and fills the entry. The caller supplies the
    /// exact snapshots and blend the computation will read — they
    /// *are* the epoch half of the key — so a returned hit is always
    /// the bit-identical result of the same plan over the same
    /// frozen state.
    pub(crate) fn query_or_compute<S: AsRef<str>>(
        &self,
        snapshots: &[Arc<EngineSnapshot>],
        blend: &Arc<StaticBlend>,
        terms: &[S],
        k: usize,
        compute: impl FnOnce(&[String]) -> Vec<SearchHit>,
    ) -> Vec<SearchHit> {
        let terms: Vec<String> = normalize_query(terms)
            .into_iter()
            .map(Cow::into_owned)
            .collect();
        let key = CacheKey {
            epochs: snapshots.iter().map(|s| Arc::as_ptr(s) as usize).collect(),
            blend: Arc::as_ptr(blend) as usize,
            terms,
            k,
        };
        if let Some(hits) = self.read(|inner| inner.map.get(&key).map(|e| e.hits.clone())) {
            if let Some(m) = &self.metrics {
                m.hits.inc();
            }
            return hits;
        }
        if let Some(m) = &self.metrics {
            m.misses.inc();
        }
        let hits = compute(&key.terms);
        self.fill(key, snapshots, blend, hits.clone());
        hits
    }

    /// Inserts one computed entry, evicting FIFO-oldest entries while
    /// over capacity.
    fn fill(
        &self,
        key: CacheKey,
        snapshots: &[Arc<EngineSnapshot>],
        blend: &Arc<StaticBlend>,
        hits: Vec<SearchHit>,
    ) {
        if self.capacity == 0 {
            return;
        }
        let entry = CacheEntry {
            hits,
            _epochs: snapshots.iter().map(Arc::downgrade).collect(),
            _blend: Arc::downgrade(blend),
        };
        let mut evicted = 0u64;
        let mut filled = false;
        self.write(|inner| {
            while inner.map.len() >= self.capacity {
                let Some(oldest) = inner.fifo.pop_front() else {
                    break;
                };
                if inner.map.remove(&oldest).is_some() {
                    evicted += 1;
                }
            }
            // A racing thread may have filled the same key between
            // our miss and this insert; replacing its value with the
            // bit-identical one is harmless, but the FIFO should not
            // hold the key twice.
            if inner.map.insert(key.clone(), entry).is_none() {
                inner.fifo.push_back(key);
                filled = true;
            }
        });
        if let Some(m) = &self.metrics {
            if filled {
                m.fills.inc();
            }
            for _ in 0..evicted {
                m.evictions.inc();
            }
        }
    }

    /// Runs `f` under the read lock. A poisoned lock only means a
    /// reader panicked mid-probe; the map itself is always intact.
    fn read<T>(&self, f: impl FnOnce(&CacheInner) -> T) -> T {
        match self.inner.read() {
            Ok(guard) => f(&guard),
            Err(poisoned) => f(&poisoned.into_inner()),
        }
    }

    /// Runs `f` under the write lock, with the same poisoned-lock
    /// recovery as reads.
    fn write(&self, f: impl FnOnce(&mut CacheInner)) {
        match self.inner.write() {
            Ok(mut guard) => f(&mut guard),
            Err(poisoned) => f(&mut poisoned.into_inner()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs_analytics::{AlexaPanel, LinkGraph};
    use obs_search::{BlendWeights, SearchEngine};
    use obs_synth::{World, WorldConfig};

    fn snapshot_pair() -> (Arc<EngineSnapshot>, Arc<StaticBlend>) {
        let world = World::generate(WorldConfig::small(777));
        let panel = AlexaPanel::simulate(&world, 1);
        let links = LinkGraph::simulate(&world, 2);
        let engine = SearchEngine::build(&world.corpus, &panel, &links, BlendWeights::default());
        let blend = Arc::new(engine.blend().clone());
        (Arc::new(EngineSnapshot::new(0, engine)), blend)
    }

    fn query(
        cache: &QueryCache,
        snap: &Arc<EngineSnapshot>,
        blend: &Arc<StaticBlend>,
        term: &str,
        computed: &mut usize,
    ) -> Vec<SearchHit> {
        cache.query_or_compute(
            std::slice::from_ref(snap),
            blend,
            &[term],
            10,
            |normalized| {
                *computed += 1;
                snap.engine().query(normalized, 10)
            },
        )
    }

    #[test]
    fn second_identical_query_is_served_without_computing() {
        let (snap, blend) = snapshot_pair();
        let registry = Registry::new();
        let metrics = CacheMetrics::new(&registry);
        let cache = QueryCache::new(8).with_metrics(metrics.clone());
        let mut computed = 0;
        let first = query(&cache, &snap, &blend, "duomo", &mut computed);
        let second = query(&cache, &snap, &blend, "duomo", &mut computed);
        assert_eq!(first, second);
        assert_eq!(computed, 1, "the hit must not recompute");
        assert_eq!((metrics.hits(), metrics.misses()), (1, 1));
        assert_eq!(metrics.fills(), 1);
        let text = registry.render_text();
        assert!(text.contains("live_query_cache_hits_total 1"));
    }

    #[test]
    fn messy_and_normalized_forms_share_one_entry() {
        let (snap, blend) = snapshot_pair();
        let cache = QueryCache::new(8);
        let mut computed = 0;
        let clean = query(&cache, &snap, &blend, "duomo", &mut computed);
        let messy = query(&cache, &snap, &blend, "The DUOMO!", &mut computed);
        assert_eq!(clean, messy);
        assert_eq!(computed, 1, "normalization must unify the keys");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn epoch_pointer_swap_retires_entries() {
        let (snap_a, blend) = snapshot_pair();
        // A fresh Arc around a clone of the same engine state: the
        // contents are identical, the epoch identity is not.
        let snap_b = Arc::new(EngineSnapshot::new(1, snap_a.engine().clone()));
        let cache = QueryCache::new(8);
        let mut computed = 0;
        query(&cache, &snap_a, &blend, "duomo", &mut computed);
        query(&cache, &snap_b, &blend, "duomo", &mut computed);
        assert_eq!(computed, 2, "a new epoch pointer must miss");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn capacity_bound_evicts_fifo_and_zero_capacity_stores_nothing() {
        let (snap, blend) = snapshot_pair();
        let registry = Registry::new();
        let metrics = CacheMetrics::new(&registry);
        let cache = QueryCache::new(2).with_metrics(metrics.clone());
        let mut computed = 0;
        for term in ["duomo", "castle", "market"] {
            query(&cache, &snap, &blend, term, &mut computed);
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(metrics.evictions(), 1);
        // The oldest entry ("duomo") was the one displaced.
        query(&cache, &snap, &blend, "market", &mut computed);
        assert_eq!(computed, 3, "newest entries must have survived");
        query(&cache, &snap, &blend, "duomo", &mut computed);
        assert_eq!(computed, 4, "the FIFO-oldest entry must be gone");

        let none = QueryCache::new(0);
        let mut recomputed = 0;
        query(&none, &snap, &blend, "duomo", &mut recomputed);
        query(&none, &snap, &blend, "duomo", &mut recomputed);
        assert_eq!(recomputed, 2);
        assert!(none.is_empty());
    }
}
