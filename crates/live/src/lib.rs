//! # obs-live — concurrent snapshot serving with a durable delta journal
//!
//! The batch pipeline builds a [`SearchEngine`](obs_search::SearchEngine)
//! once and queries it; the paper's observer model instead assumes
//! queries are answered *continuously while new Web 2.0 content
//! streams in*. This crate is the serving layer that closes that gap:
//!
//! * [`SnapshotStore`] / [`SnapshotReader`] — readers grab an
//!   immutable engine snapshot through an epoch-style arc swap.
//!   Acquiring a snapshot is a reference-count bump under a lock held
//!   for nanoseconds; **`query` never blocks on an in-flight
//!   `apply_delta`**, because writers mutate a private copy-on-write
//!   engine and publish by swapping one `Arc` pointer.
//! * [`LiveWriter`] — the single owner of the mutable engine. It
//!   applies [`CorpusDelta`](obs_model::CorpusDelta)s and publishes
//!   new snapshots; published snapshots are frozen forever.
//! * [`DeltaJournal`] — an append-only on-disk log of serialized
//!   deltas with sequence numbers, crc-protected records,
//!   torn-tail tolerance (a truncated final record is detected and
//!   dropped, not a panic) and prefix compaction once a checkpoint
//!   covers it.
//! * [`LiveService`] — wires a crawl tick through
//!   *journal → apply → publish*, and [`LiveService::recover`]
//!   rebuilds the exact pre-crash engine by replaying the journal
//!   over a checkpoint.
//! * **Group commit** — [`LiveService::ingest_batch`] and
//!   [`LiveService::tick_sweep`] amortize the per-delta costs across
//!   a burst: N journal records share one fsync
//!   ([`DeltaJournal::append_batch`], all-or-nothing), one
//!   copy-on-write index detach and one deferred signal re-blend
//!   ([`LiveWriter::apply_batch`], which applies the burst in replay
//!   order), and one published snapshot. Readers only ever observe
//!   batch boundaries; recovery replays the per-delta records and
//!   lands on the identical engine by construction.
//! * **Sharding** — [`ShardedLiveService`] partitions the corpus by
//!   source id ([`ShardRouter`]): every shard owns its own journal +
//!   writer + snapshot column, routed sub-batches commit in parallel,
//!   recovery replays each shard's journal independently, and
//!   [`ShardedReader`] answers queries with a scatter-gather plan
//!   that is bit-identical to an unsharded engine over the same
//!   documents (see [`shard`]).
//! * **Query caching** — [`QueryCache`] memoizes top-k rankings
//!   keyed by the exact snapshot epochs that produced them, so a
//!   publish invalidates for free and a cached reader is observably
//!   identical to an uncached one (see [`cache`]).
//!
//! ```text
//! crawler ticks ──► DeltaJournal (fsync) ──► LiveWriter.apply ──► publish
//!                                                                    │
//!                       SnapshotReader.snapshot() ◄── SnapshotStore ◄┘
//!                       (N reader threads, never blocked)
//! ```
//!
//! The recovery invariant — replaying the journal over a checkpoint
//! reproduces the uninterrupted engine down to identical BM25 score
//! maps — is enforced by property tests at the workspace level.

#![warn(missing_docs)]

pub mod cache;
mod error;
pub mod journal;
pub mod metrics;
pub mod service;
pub mod shard;
pub mod snapshot;

pub use cache::{CacheMetrics, QueryCache};
pub use error::LiveError;
pub use journal::{DeltaJournal, JournalError, JournalReplay};
pub use metrics::{LiveMetrics, ShardMetrics};
pub use service::{LiveService, RecoveryReport};
pub use shard::{PinnedShards, ShardRouter, ShardedLiveService, ShardedReader};
pub use snapshot::{EngineSnapshot, LiveWriter, SnapshotReader, SnapshotStore};
