//! The durable delta journal.
//!
//! An append-only on-disk log of serialized
//! [`CorpusDelta`]s — the filtered source
//! updates treated as a first-class, replayable stream rather than a
//! transient mutation. One record per line:
//!
//! ```text
//! <seq> <crc32-hex> <delta-json>\n
//! ```
//!
//! * `seq` — contiguous, 1-based sequence number; replay refuses a
//!   log with a gap or regression (that's corruption, not a crash);
//! * `crc32` — IEEE CRC-32 of the JSON bytes, so a bit-flipped or
//!   truncated record is detected rather than deserialized into
//!   garbage;
//! * `delta-json` — the delta through the in-tree serde_json shim.
//!
//! **Torn-tail tolerance:** a crash mid-append leaves at most one
//! truncated record, and only at the end of the file. Replay detects
//! a final record that is incomplete (no newline, bad CRC, or
//! unparseable) and *drops it* — the delta was never acknowledged as
//! durable, so dropping it is the correct recovery. The same damage
//! anywhere else in the file is reported as
//! [`JournalError::Corrupt`].
//!
//! **Group commit:** [`DeltaJournal::append_batch`] stages any number
//! of records and makes them durable under **one** fsync — the
//! amortization that turns a burst of crawl ticks from N disk syncs
//! into one. The batch is all-or-nothing: if the sync fails, the
//! whole staged suffix is truncated back out ([`DeltaJournal::retract_staged`]),
//! so a retry re-claims the exact same sequence numbers and recovery
//! never replays an unacknowledged record.
//!
//! **Compaction:** once a checkpoint (an engine snapshot at sequence
//! `S`) makes the prefix `..=S` redundant, [`DeltaJournal::compact_through`]
//! rewrites the log without it (atomically, via a temp file +
//! rename). Sequence numbers keep rising across compactions; the
//! first retained record pins the replay base.

// lint:deterministic — replaying this log must rebuild a
// byte-identical engine, so nothing here may depend on hash order
// or the wall clock.

use obs_model::{CorpusDelta, SequencedDelta};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, Write};
use std::path::{Path, PathBuf};

/// Why a journal operation failed.
#[derive(Debug)]
pub enum JournalError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// A record *before* the final one is damaged, or sequence
    /// numbers are not contiguous — the log cannot be trusted.
    Corrupt {
        /// 1-based record (line) number of the damage.
        record: usize,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o error: {e}"),
            JournalError::Corrupt { record, reason } => {
                write!(f, "journal corrupt at record {record}: {reason}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// What replaying a journal found.
#[derive(Debug, Clone, Default)]
pub struct JournalReplay {
    /// Every intact record, in sequence order.
    pub records: Vec<SequencedDelta>,
    /// Whether a truncated final record (torn tail) was dropped.
    pub torn_tail_dropped: bool,
    /// Byte length of the intact prefix — the whole file when no
    /// tail was torn. Healing truncates to exactly here.
    pub clean_len: u64,
}

impl JournalReplay {
    /// Sequence of the last intact record (0 when empty).
    pub fn last_seq(&self) -> u64 {
        self.records.last().map_or(0, |r| r.seq)
    }
}

/// IEEE CRC-32 (the polynomial every zip/png reader uses),
/// bit-reflected, table-free — journal records are small and append
/// throughput is bounded by fsync, not the checksum.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// One parse attempt over a record line (without its newline).
fn parse_record(line: &str) -> Result<SequencedDelta, String> {
    let (seq_text, rest) = line.split_once(' ').ok_or("missing field separators")?;
    let (crc_text, json) = rest.split_once(' ').ok_or("missing crc separator")?;
    let seq: u64 = seq_text
        .parse()
        .map_err(|_| format!("bad sequence number {seq_text:?}"))?;
    let stored_crc =
        u32::from_str_radix(crc_text, 16).map_err(|_| format!("bad crc field {crc_text:?}"))?;
    let actual_crc = crc32(json.as_bytes());
    if stored_crc != actual_crc {
        return Err(format!(
            "crc mismatch: stored {stored_crc:08x}, computed {actual_crc:08x}"
        ));
    }
    let delta: CorpusDelta =
        serde_json::from_str(json).map_err(|e| format!("undecodable delta: {e}"))?;
    Ok(SequencedDelta::new(seq, delta))
}

/// The staged (appended but not yet acknowledged-durable) suffix of
/// the file: how many bytes and records every append since the last
/// acknowledged sync wrote. A failed durability step retracts
/// exactly this much.
#[derive(Debug, Clone, Copy)]
struct StagedSuffix {
    bytes: u64,
    records: usize,
}

/// The append handle over a journal file.
///
/// Writes go straight to the [`File`] — no userspace write buffer.
/// Every append hands the kernel one fully-rendered payload and is
/// immediately visible in the file's length, so failure handling
/// only ever has to reason about file bytes (truncate back to a
/// known-clean length), never about a stale buffered tail that could
/// fuse with a retry's bytes. Throughput is bounded by fsync, not by
/// write syscalls, so buffering would buy nothing.
///
/// ```
/// use obs_live::DeltaJournal;
/// use obs_model::CorpusDelta;
///
/// let path = std::env::temp_dir()
///     .join(format!("doc_journal_{}.journal", std::process::id()));
/// let mut journal = DeltaJournal::create(&path)?;
/// let seq = journal.append(&CorpusDelta::new())?;
/// journal.sync()?; // durable — and acknowledged — from here on
/// assert_eq!(seq, 1);
///
/// // Replay sees exactly the acknowledged records.
/// let replay = DeltaJournal::replay_path(&path)?;
/// assert_eq!(replay.records.len(), 1);
/// assert_eq!(replay.records[0].seq, 1);
/// std::fs::remove_file(&path).ok();
/// # Ok::<(), obs_live::JournalError>(())
/// ```
#[derive(Debug)]
pub struct DeltaJournal {
    path: PathBuf,
    file: File,
    /// Sequence the next appended record will carry.
    next_seq: u64,
    /// Records currently in the file (post-compaction, post-recovery).
    len: usize,
    /// The retractable suffix: the most recent append or batch whose
    /// durability has not yet been acknowledged by a successful sync.
    staged: Option<StagedSuffix>,
    /// Pending injected [`DeltaJournal::sync`] failures (durability
    /// fault injection for tests; see
    /// [`DeltaJournal::inject_sync_failures`]).
    sync_faults: u32,
}

impl DeltaJournal {
    /// Creates a fresh, empty journal, truncating any existing file.
    pub fn create(path: impl AsRef<Path>) -> Result<DeltaJournal, JournalError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Ok(DeltaJournal {
            path,
            file,
            next_seq: 1,
            len: 0,
            staged: None,
            sync_faults: 0,
        })
    }

    /// Opens an existing journal (or creates an empty one), replaying
    /// it to find the append position. A torn tail is physically
    /// truncated away so the file is clean for future appends; the
    /// replay of everything intact is returned alongside the handle.
    pub fn open(path: impl AsRef<Path>) -> Result<(DeltaJournal, JournalReplay), JournalError> {
        let path = path.as_ref().to_path_buf();
        let replay = match Self::replay_path(&path) {
            Ok(replay) => replay,
            Err(JournalError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                JournalReplay::default()
            }
            Err(e) => return Err(e),
        };
        if replay.torn_tail_dropped {
            // Heal by truncating to the end of the last intact
            // record: O(1), and the durable prefix keeps its exact
            // original bytes.
            let file = OpenOptions::new().write(true).open(&path)?;
            file.set_len(replay.clean_len)?;
            file.sync_data()?;
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok((
            DeltaJournal {
                path,
                file,
                next_seq: replay.last_seq() + 1,
                len: replay.records.len(),
                staged: None,
                sync_faults: 0,
            },
            replay,
        ))
    }

    /// Reads and verifies every record of the journal at `path`
    /// without taking an append handle. Tolerates (and reports) a
    /// torn final record; fails on any other damage.
    ///
    /// The file is read as *bytes*, not as a string: a crash can
    /// truncate mid-UTF-8-sequence or leave garbage blocks at the
    /// tail, and that damage must be confined to the torn record,
    /// not fail the whole read.
    pub fn replay_path(path: impl AsRef<Path>) -> Result<JournalReplay, JournalError> {
        let mut bytes = Vec::new();
        File::open(path.as_ref())?.read_to_end(&mut bytes)?;

        let mut replay = JournalReplay::default();
        let mut offset = 0usize;
        let mut record_no = 0usize;
        while offset < bytes.len() {
            record_no += 1;
            let rest = &bytes[offset..];
            let (line_bytes, complete, consumed) = match rest.iter().position(|&b| b == b'\n') {
                Some(nl) => (&rest[..nl], true, nl + 1),
                None => (rest, false, rest.len()),
            };
            let is_last = offset + consumed >= bytes.len();
            let parsed = std::str::from_utf8(line_bytes)
                .map_err(|_| "invalid utf-8".to_owned())
                .and_then(parse_record);
            match parsed {
                Ok(record) => {
                    let expected = replay.records.last().map(|r| r.seq + 1);
                    if !complete {
                        // A record without its newline is a torn
                        // append even if its payload happens to
                        // verify — the trailing newline is part of
                        // the durable format.
                        replay.torn_tail_dropped = true;
                    } else if expected.is_some_and(|e| record.seq != e) {
                        return Err(JournalError::Corrupt {
                            record: record_no,
                            reason: format!(
                                "sequence gap: expected {}, found {}",
                                expected.unwrap_or(1),
                                record.seq
                            ),
                        });
                    } else {
                        replay.records.push(record);
                        replay.clean_len = (offset + consumed) as u64;
                    }
                }
                Err(_) if is_last => {
                    replay.torn_tail_dropped = true;
                }
                Err(reason) => {
                    return Err(JournalError::Corrupt {
                        record: record_no,
                        reason,
                    });
                }
            }
            offset += consumed;
        }
        Ok(replay)
    }

    /// Serializes one record line (with its trailing newline).
    fn render_record(seq: u64, delta: &CorpusDelta) -> Result<String, JournalError> {
        let json = serde_json::to_string(delta)
            .map_err(|e| std::io::Error::other(format!("delta serialization failed: {e}")))?;
        let crc = crc32(json.as_bytes());
        Ok(format!("{seq} {crc:08x} {json}\n"))
    }

    /// Grows the staged suffix. Accumulates rather than replaces:
    /// every append since the last acknowledged sync is
    /// unacknowledged, so a failed durability step must be able to
    /// retract all of them, not just the latest.
    fn stage(&mut self, bytes: u64, records: usize) {
        match &mut self.staged {
            Some(staged) => {
                staged.bytes += bytes;
                staged.records += records;
            }
            None => self.staged = Some(StagedSuffix { bytes, records }),
        }
    }

    /// Writes `bytes` to the file (one write, no userspace buffer).
    /// On failure the file is healed back to its pre-write length
    /// (best effort), so a partially written payload never lingers
    /// to fuse with the bytes a retry appends under the same
    /// sequence numbers.
    fn write_payload(&mut self, bytes: &[u8]) -> Result<(), JournalError> {
        // With no write buffer, the file's length *is* the clean
        // pre-write position.
        let clean_len = self.file.metadata()?.len();
        if let Err(e) = self.file.write_all(bytes) {
            self.heal_failed_write(clean_len);
            return Err(e.into());
        }
        Ok(())
    }

    /// Best-effort cleanup after a failed write: truncates the file
    /// back to `clean_len` so no partially written tail survives on
    /// disk. Errors are swallowed — the caller is already surfacing
    /// the original failure, and the counters were never advanced.
    fn heal_failed_write(&mut self, clean_len: u64) {
        let _ = self.file.set_len(clean_len); // lint:allow(discard): best-effort heal; caller surfaces the original write error
        let _ = self.file.seek(std::io::SeekFrom::Start(clean_len)); // lint:allow(discard): best-effort heal; caller surfaces the original write error
        let _ = self.file.sync_data(); // lint:allow(discard): best-effort heal; caller surfaces the original write error
    }

    /// Appends one delta, assigning it the next sequence number. The
    /// record is flushed to the OS; call [`DeltaJournal::sync`] to
    /// force it to stable storage before acknowledging durability.
    pub fn append(&mut self, delta: &CorpusDelta) -> Result<u64, JournalError> {
        let seq = self.next_seq;
        let record = Self::render_record(seq, delta)?;
        self.write_payload(record.as_bytes())?;
        // Counters and the staged suffix move only once the record
        // is known to be in the file, so a failed write or flush
        // leaves them honest about the file contents.
        self.next_seq += 1;
        self.len += 1;
        self.stage(record.len() as u64, 1);
        Ok(seq)
    }

    /// Appends `deltas` as one *group commit*: every record is staged
    /// with its own contiguous sequence number, then the whole batch
    /// is forced to stable storage under a **single** fsync. Returns
    /// the `(first, last)` sequence range, or `None` for an empty
    /// batch (which touches neither the file nor the sequence).
    ///
    /// All-or-nothing: the batch is serialized in full before a byte
    /// is written, and if the sync fails, the entire staged suffix
    /// is retracted — no record of the batch survives to be
    /// replayed, and a retry re-claims the same sequence numbers.
    pub fn append_batch(
        &mut self,
        deltas: &[&CorpusDelta],
    ) -> Result<Option<(u64, u64)>, JournalError> {
        if deltas.is_empty() {
            return Ok(None);
        }
        let first = self.next_seq;
        let mut payload = String::new();
        for (i, delta) in deltas.iter().enumerate() {
            payload.push_str(&Self::render_record(first + i as u64, delta)?);
        }
        self.write_payload(payload.as_bytes())?;
        self.next_seq += deltas.len() as u64;
        self.len += deltas.len();
        self.stage(payload.len() as u64, deltas.len());
        let last = self.next_seq - 1;
        if let Err(sync_err) = self.sync() {
            // Best effort: if the retract also fails the counters
            // and the file have diverged and only a re-open can
            // reconcile them; surface the original failure either way.
            let _ = self.retract_staged(); // lint:allow(discard): best effort per the comment above; the sync error wins
            return Err(sync_err);
        }
        Ok(Some((first, last)))
    }

    /// Forces appended records to stable storage (fsync). A
    /// successful sync acknowledges the staged suffix: it is durable
    /// and no longer retractable.
    pub fn sync(&mut self) -> Result<(), JournalError> {
        if self.sync_faults > 0 {
            self.sync_faults -= 1;
            return Err(JournalError::Io(std::io::Error::other(
                "injected fsync failure",
            )));
        }
        self.file.sync_data()?;
        self.staged = None;
        Ok(())
    }

    /// Arms the next `n` calls to [`DeltaJournal::sync`] to fail
    /// deterministically (the staged bytes are already in the file,
    /// exactly as a real failed fsync would leave them). Durability
    /// fault injection for tests, in the same spirit as
    /// `obs_wrappers::FaultPlan`.
    pub fn inject_sync_failures(&mut self, n: u32) {
        self.sync_faults = n;
    }

    /// Truncates away the staged suffix — every
    /// [`DeltaJournal::append`] / [`DeltaJournal::append_batch`]
    /// record since the last acknowledged sync — winding the
    /// sequence back with it. The failure-path inverse: when the
    /// durability step after an append fails, the records were never
    /// acknowledged, so they must not linger in the file to be
    /// replayed on recovery (the caller will retry and re-journal
    /// the same content under the same sequences). A no-op when
    /// nothing is staged.
    pub fn retract_staged(&mut self) -> Result<(), JournalError> {
        let Some(StagedSuffix { bytes, records }) = self.staged else {
            return Ok(());
        };
        let end = self.file.metadata()?.len();
        let new_end = end.saturating_sub(bytes);
        self.file.set_len(new_end)?;
        // Truncation does not move the write cursor; without the
        // seek the next append would leave a zero-filled hole where
        // the retracted records were (files created by
        // `DeltaJournal::create` are not in O_APPEND mode).
        self.file.seek(std::io::SeekFrom::Start(new_end))?;
        // Counters move only after the truncate is known durable, so
        // a failed retract leaves them honest about file contents.
        self.file.sync_data()?;
        self.next_seq -= records as u64;
        self.len -= records;
        self.staged = None;
        Ok(())
    }

    /// Drops every record with `seq <= through_seq` — legal once a
    /// checkpoint covers that prefix — rewriting the file atomically
    /// (temp file + rename). Returns how many records were dropped.
    /// Sequence numbers are preserved, so replay-over-checkpoint
    /// still lines up.
    pub fn compact_through(&mut self, through_seq: u64) -> Result<usize, JournalError> {
        self.sync()?;
        let replay = Self::replay_path(&self.path)?;
        let retained: Vec<&SequencedDelta> = replay
            .records
            .iter()
            .filter(|r| r.seq > through_seq)
            .collect();
        let dropped = replay.records.len() - retained.len();
        if dropped == 0 {
            return Ok(0);
        }
        Self::rewrite_refs(&self.path, &retained)?;
        // Reopen the handle onto the rewritten file; the last append
        // is no longer retractable (the rewrite re-framed it).
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        self.file = file;
        self.len = retained.len();
        self.staged = None;
        Ok(dropped)
    }

    /// Number of records currently in the file.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the file currently holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sequence number the next append will be stamped with.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Fast-forwards the next append sequence to `next_seq` (never
    /// backwards). A fully-compacted journal file carries no records,
    /// so on re-open its derived position restarts at 1; the owner —
    /// who knows the stream position from its checkpoint — uses this
    /// to keep sequence numbers rising monotonically across
    /// compact-then-crash-then-recover cycles.
    pub fn resume_at(&mut self, next_seq: u64) {
        self.next_seq = self.next_seq.max(next_seq);
    }

    /// Where the journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Writes `records` to a sibling temp file, fsyncs it, and
    /// renames it over `path` so the journal is never observable in
    /// a half-rewritten state.
    fn rewrite_refs(path: &Path, records: &[&SequencedDelta]) -> Result<(), JournalError> {
        let tmp = path.with_extension("journal.tmp");
        {
            let file = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&tmp)?;
            let mut out = BufWriter::new(file);
            for record in records {
                let json = serde_json::to_string(&record.delta).map_err(|e| {
                    std::io::Error::other(format!("delta serialization failed: {e}"))
                })?;
                let crc = crc32(json.as_bytes());
                writeln!(out, "{} {crc:08x} {json}", record.seq)?;
            }
            out.flush()?;
            out.get_ref().sync_data()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs_model::{PostId, SourceId};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "obs_live_journal_{}_{}_{}.journal",
            std::process::id(),
            tag,
            n
        ))
    }

    fn sample_delta(post: u32) -> CorpusDelta {
        let mut d = CorpusDelta::new();
        d.add_doc(PostId::new(post), SourceId::new(0), format!("doc {post}"));
        d.note_engagement(SourceId::new(0), 1, 0);
        d
    }

    #[test]
    fn append_sync_replay_roundtrips() {
        let path = temp_path("roundtrip");
        let mut journal = DeltaJournal::create(&path).unwrap();
        for i in 0..5 {
            let seq = journal.append(&sample_delta(i)).unwrap();
            assert_eq!(seq, u64::from(i) + 1);
        }
        journal.sync().unwrap();
        assert_eq!(journal.len(), 5);
        assert_eq!(journal.next_seq(), 6);

        let replay = DeltaJournal::replay_path(&path).unwrap();
        assert!(!replay.torn_tail_dropped);
        assert_eq!(replay.records.len(), 5);
        assert_eq!(replay.last_seq(), 5);
        for (i, r) in replay.records.iter().enumerate() {
            assert_eq!(r.seq, i as u64 + 1);
            assert_eq!(r.delta, sample_delta(i as u32));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let path = temp_path("torn");
        let mut journal = DeltaJournal::create(&path).unwrap();
        for i in 0..3 {
            journal.append(&sample_delta(i)).unwrap();
        }
        journal.sync().unwrap();
        drop(journal);

        // Simulate a crash mid-append: truncate the file inside the
        // final record.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 7]).unwrap();

        let replay = DeltaJournal::replay_path(&path).unwrap();
        assert!(replay.torn_tail_dropped);
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.last_seq(), 2);

        // Re-opening heals the file and appends continue the
        // sequence from the surviving prefix.
        let (mut journal, replay) = DeltaJournal::open(&path).unwrap();
        assert!(replay.torn_tail_dropped);
        assert_eq!(journal.next_seq(), 3);
        journal.append(&sample_delta(9)).unwrap();
        journal.sync().unwrap();
        let healed = DeltaJournal::replay_path(&path).unwrap();
        assert!(!healed.torn_tail_dropped);
        assert_eq!(healed.last_seq(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_record_without_newline_is_dropped_even_if_payload_verifies() {
        let path = temp_path("no_newline");
        let mut journal = DeltaJournal::create(&path).unwrap();
        journal.append(&sample_delta(0)).unwrap();
        journal.append(&sample_delta(1)).unwrap();
        journal.sync().unwrap();
        drop(journal);

        // Strip only the final newline: payload intact, frame torn.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.trim_end_matches('\n')).unwrap();
        let replay = DeltaJournal::replay_path(&path).unwrap();
        assert!(replay.torn_tail_dropped);
        assert_eq!(replay.records.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn invalid_utf8_torn_tail_is_dropped_not_io_error() {
        let path = temp_path("utf8_tail");
        let mut journal = DeltaJournal::create(&path).unwrap();
        journal.append(&sample_delta(0)).unwrap();
        journal.append(&sample_delta(1)).unwrap();
        journal.sync().unwrap();
        drop(journal);

        // A crash can leave raw garbage (or a truncated multi-byte
        // UTF-8 sequence) at the tail; replay must confine the
        // damage to the torn record, not refuse the whole file.
        {
            use std::io::Write;
            let mut file = OpenOptions::new().append(true).open(&path).unwrap();
            file.write_all(b"3 deadbeef {\"added\xff\xfe\x00").unwrap();
        }
        let replay = DeltaJournal::replay_path(&path).unwrap();
        assert!(replay.torn_tail_dropped);
        assert_eq!(replay.records.len(), 2);

        // Re-opening heals it and appends continue.
        let (mut journal, _) = DeltaJournal::open(&path).unwrap();
        assert_eq!(journal.append(&sample_delta(7)).unwrap(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn invalid_utf8_mid_file_is_corruption() {
        let path = temp_path("utf8_mid");
        let mut journal = DeltaJournal::create(&path).unwrap();
        journal.append(&sample_delta(0)).unwrap();
        journal.append(&sample_delta(1)).unwrap();
        journal.sync().unwrap();
        drop(journal);

        let mut bytes = std::fs::read(&path).unwrap();
        // Clobber a byte inside the first record.
        bytes[10] = 0xFF;
        std::fs::write(&path, bytes).unwrap();
        let err = DeltaJournal::replay_path(&path).unwrap_err();
        assert!(
            matches!(err, JournalError::Corrupt { record: 1, .. }),
            "{err:?}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn retract_staged_unwinds_an_unacknowledged_append() {
        let path = temp_path("retract");
        let mut journal = DeltaJournal::create(&path).unwrap();
        journal.append(&sample_delta(0)).unwrap();
        journal.append(&sample_delta(1)).unwrap();
        journal.sync().unwrap();

        // Append a record whose durability step "failed": retract it.
        journal.append(&sample_delta(2)).unwrap();
        journal.retract_staged().unwrap();
        assert_eq!(journal.len(), 2);
        assert_eq!(journal.next_seq(), 3);
        // A second retract is a no-op (nothing retractable).
        journal.retract_staged().unwrap();
        assert_eq!(journal.len(), 2);

        // The retry claims the same sequence, and replay sees a
        // clean two-then-three record history with no orphan.
        assert_eq!(journal.append(&sample_delta(3)).unwrap(), 3);
        journal.sync().unwrap();
        let replay = DeltaJournal::replay_path(&path).unwrap();
        assert!(!replay.torn_tail_dropped);
        assert_eq!(replay.records.len(), 3);
        assert_eq!(replay.records[2].delta, sample_delta(3));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn retract_staged_unwinds_every_append_since_the_last_sync() {
        // Two appends with no sync in between: both are
        // unacknowledged, so a failed durability step must unwind
        // both — retracting only the latest would leave an
        // unacknowledged record to be replayed after a crash.
        let path = temp_path("retract_multi");
        let mut journal = DeltaJournal::create(&path).unwrap();
        journal.append(&sample_delta(0)).unwrap();
        journal.sync().unwrap();

        journal.append(&sample_delta(1)).unwrap();
        journal.append(&sample_delta(2)).unwrap();
        journal.inject_sync_failures(1);
        assert!(journal.sync().is_err());
        journal.retract_staged().unwrap();
        assert_eq!(journal.len(), 1);
        assert_eq!(journal.next_seq(), 2);
        let replay = DeltaJournal::replay_path(&path).unwrap();
        assert_eq!(replay.last_seq(), 1);

        // The retry re-claims seq 2 cleanly.
        assert_eq!(journal.append(&sample_delta(1)).unwrap(), 2);
        journal.sync().unwrap();
        assert_eq!(DeltaJournal::replay_path(&path).unwrap().last_seq(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sync_acknowledges_the_staged_suffix() {
        // Once a sync succeeds the record is durable; a later
        // retract must not be able to unwind it.
        let path = temp_path("acknowledged");
        let mut journal = DeltaJournal::create(&path).unwrap();
        journal.append(&sample_delta(0)).unwrap();
        journal.sync().unwrap();
        journal.retract_staged().unwrap();
        assert_eq!(journal.len(), 1);
        assert_eq!(journal.next_seq(), 2);
        let replay = DeltaJournal::replay_path(&path).unwrap();
        assert_eq!(replay.records.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_batch_is_one_commit_with_contiguous_seqs() {
        let path = temp_path("batch");
        let mut journal = DeltaJournal::create(&path).unwrap();
        journal.append(&sample_delta(0)).unwrap();
        journal.sync().unwrap();

        let batch: Vec<CorpusDelta> = (1..5).map(sample_delta).collect();
        let refs: Vec<&CorpusDelta> = batch.iter().collect();
        let range = journal.append_batch(&refs).unwrap();
        assert_eq!(range, Some((2, 5)));
        assert_eq!(journal.len(), 5);
        assert_eq!(journal.next_seq(), 6);

        // The batch is already durable (append_batch syncs): replay
        // sees every record, byte-identical to sequential appends.
        let replay = DeltaJournal::replay_path(&path).unwrap();
        assert_eq!(replay.records.len(), 5);
        for (i, r) in replay.records.iter().enumerate() {
            assert_eq!(r.seq, i as u64 + 1);
            assert_eq!(r.delta, sample_delta(i as u32));
        }

        let sequential_path = temp_path("batch_seq");
        let mut sequential = DeltaJournal::create(&sequential_path).unwrap();
        for i in 0..5 {
            sequential.append(&sample_delta(i)).unwrap();
        }
        sequential.sync().unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            std::fs::read(&sequential_path).unwrap(),
            "a batched journal must be byte-identical to a sequential one"
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&sequential_path).ok();
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let path = temp_path("batch_empty");
        let mut journal = DeltaJournal::create(&path).unwrap();
        journal.append(&sample_delta(0)).unwrap();
        journal.sync().unwrap();
        let before = std::fs::read(&path).unwrap();
        assert_eq!(journal.append_batch(&[]).unwrap(), None);
        assert_eq!(journal.len(), 1);
        assert_eq!(journal.next_seq(), 2);
        assert_eq!(std::fs::read(&path).unwrap(), before);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_batch_sync_retracts_the_whole_staged_suffix() {
        let path = temp_path("batch_fail");
        let mut journal = DeltaJournal::create(&path).unwrap();
        journal.append(&sample_delta(0)).unwrap();
        journal.sync().unwrap();
        let durable = std::fs::read(&path).unwrap();

        let batch: Vec<CorpusDelta> = (1..4).map(sample_delta).collect();
        let refs: Vec<&CorpusDelta> = batch.iter().collect();
        journal.inject_sync_failures(1);
        let err = journal.append_batch(&refs).unwrap_err();
        assert!(matches!(err, JournalError::Io(_)), "{err:?}");

        // No trace of the batch: counters, file bytes and replay all
        // match the pre-batch state, so a retry re-claims seq 2..=4.
        assert_eq!(journal.len(), 1);
        assert_eq!(journal.next_seq(), 2);
        assert_eq!(std::fs::read(&path).unwrap(), durable);
        let replay = DeltaJournal::replay_path(&path).unwrap();
        assert_eq!(replay.last_seq(), 1);

        let range = journal.append_batch(&refs).unwrap();
        assert_eq!(range, Some((2, 4)));
        let replay = DeltaJournal::replay_path(&path).unwrap();
        assert_eq!(replay.last_seq(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn healing_a_torn_tail_preserves_the_intact_prefix_bytes() {
        let path = temp_path("heal_bytes");
        let mut journal = DeltaJournal::create(&path).unwrap();
        journal.append(&sample_delta(0)).unwrap();
        journal.append(&sample_delta(1)).unwrap();
        journal.sync().unwrap();
        drop(journal);

        let intact = std::fs::read(&path).unwrap();
        let mut torn = intact.clone();
        torn.extend_from_slice(b"3 0badc0de {\"trunc");
        std::fs::write(&path, &torn).unwrap();

        let (_journal, replay) = DeltaJournal::open(&path).unwrap();
        assert!(replay.torn_tail_dropped);
        assert_eq!(replay.clean_len, intact.len() as u64);
        // Healing truncated, it did not rewrite: byte-identical.
        assert_eq!(std::fs::read(&path).unwrap(), intact);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_at_only_moves_forward() {
        let path = temp_path("resume");
        let mut journal = DeltaJournal::create(&path).unwrap();
        journal.append(&sample_delta(0)).unwrap();
        assert_eq!(journal.next_seq(), 2);
        journal.resume_at(10);
        assert_eq!(journal.next_seq(), 10);
        journal.resume_at(4); // never backwards
        assert_eq!(journal.next_seq(), 10);
        assert_eq!(journal.append(&sample_delta(1)).unwrap(), 10);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_file_damage_is_corruption() {
        let path = temp_path("corrupt");
        let mut journal = DeltaJournal::create(&path).unwrap();
        for i in 0..3 {
            journal.append(&sample_delta(i)).unwrap();
        }
        journal.sync().unwrap();
        drop(journal);

        // Flip a byte inside the *second* record's JSON.
        let mut lines: Vec<String> = std::fs::read_to_string(&path)
            .unwrap()
            .lines()
            .map(str::to_owned)
            .collect();
        lines[1] = lines[1].replace("doc 1", "doc X");
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();

        let err = DeltaJournal::replay_path(&path).unwrap_err();
        match err {
            JournalError::Corrupt { record, reason } => {
                assert_eq!(record, 2);
                assert!(reason.contains("crc mismatch"), "{reason}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sequence_gap_is_corruption() {
        let path = temp_path("gap");
        let mut journal = DeltaJournal::create(&path).unwrap();
        for i in 0..3 {
            journal.append(&sample_delta(i)).unwrap();
        }
        journal.sync().unwrap();
        drop(journal);

        // Delete the middle line: seqs 1,3 remain.
        let lines: Vec<String> = std::fs::read_to_string(&path)
            .unwrap()
            .lines()
            .map(str::to_owned)
            .collect();
        std::fs::write(&path, format!("{}\n{}\n", lines[0], lines[2])).unwrap();

        let err = DeltaJournal::replay_path(&path).unwrap_err();
        assert!(
            matches!(err, JournalError::Corrupt { record: 2, .. }),
            "{err:?}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_drops_covered_prefix_and_keeps_sequences() {
        let path = temp_path("compact");
        let mut journal = DeltaJournal::create(&path).unwrap();
        for i in 0..6 {
            journal.append(&sample_delta(i)).unwrap();
        }
        journal.sync().unwrap();

        let dropped = journal.compact_through(4).unwrap();
        assert_eq!(dropped, 4);
        assert_eq!(journal.len(), 2);
        // Appends continue the global sequence.
        assert_eq!(journal.append(&sample_delta(9)).unwrap(), 7);
        journal.sync().unwrap();

        let replay = DeltaJournal::replay_path(&path).unwrap();
        let seqs: Vec<u64> = replay.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![5, 6, 7]);

        // Compacting an already-covered prefix is a no-op.
        assert_eq!(journal.compact_through(3).unwrap(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compacting_below_the_first_retained_record_is_idempotent() {
        let path = temp_path("compact_below");
        let mut journal = DeltaJournal::create(&path).unwrap();
        for i in 0..6 {
            journal.append(&sample_delta(i)).unwrap();
        }
        journal.sync().unwrap();
        assert_eq!(journal.compact_through(4).unwrap(), 4);
        let bytes = std::fs::read(&path).unwrap();

        // `through_seq` below the first retained record (5): not an
        // error, not a rewrite — the file keeps its exact bytes.
        for covered in [0, 1, 4] {
            assert_eq!(journal.compact_through(covered).unwrap(), 0);
            assert_eq!(std::fs::read(&path).unwrap(), bytes);
        }
        assert_eq!(journal.len(), 2);
        assert_eq!(journal.next_seq(), 7);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compacting_beyond_the_last_record_does_not_invent_sequences() {
        let path = temp_path("compact_beyond");
        let mut journal = DeltaJournal::create(&path).unwrap();
        for i in 0..3 {
            journal.append(&sample_delta(i)).unwrap();
        }
        journal.sync().unwrap();

        // Compacting through a sequence past the end drops every
        // record but must not fast-forward the stream: the next
        // append still continues where the journal left off.
        assert_eq!(journal.compact_through(100).unwrap(), 3);
        assert_eq!(journal.len(), 0);
        assert!(journal.is_empty());
        assert_eq!(journal.next_seq(), 4);
        assert_eq!(journal.append(&sample_delta(9)).unwrap(), 4);
        journal.sync().unwrap();
        let replay = DeltaJournal::replay_path(&path).unwrap();
        let seqs: Vec<u64> = replay.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![4]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn double_compaction_at_the_same_seq_is_a_no_op() {
        let path = temp_path("compact_twice");
        let mut journal = DeltaJournal::create(&path).unwrap();
        for i in 0..5 {
            journal.append(&sample_delta(i)).unwrap();
        }
        journal.sync().unwrap();
        assert_eq!(journal.compact_through(3).unwrap(), 3);
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(journal.compact_through(3).unwrap(), 0);
        assert_eq!(std::fs::read(&path).unwrap(), bytes);
        assert_eq!(journal.len(), 2);
        assert_eq!(journal.next_seq(), 6);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_and_missing_journals_replay_empty() {
        let path = temp_path("empty");
        let (journal, replay) = DeltaJournal::open(&path).unwrap();
        assert!(journal.is_empty());
        assert!(replay.records.is_empty());
        assert_eq!(replay.last_seq(), 0);
        std::fs::remove_file(&path).ok();
    }
}
