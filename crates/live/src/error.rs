//! Serving-layer errors.

use crate::journal::JournalError;
use obs_wrappers::WrapperError;
use std::fmt;

/// Why a live-service operation failed.
#[derive(Debug)]
pub enum LiveError {
    /// The durable journal failed (I/O or corruption).
    Journal(JournalError),
    /// A crawl tick failed at the wrapper layer.
    Crawl(WrapperError),
    /// The journal does not connect to the checkpoint: its first
    /// retained record is later than the checkpoint's next change,
    /// so the intervening deltas are unrecoverable.
    CheckpointGap {
        /// Sequence the checkpoint covers.
        checkpoint_seq: u64,
        /// First sequence the journal still holds.
        journal_first_seq: u64,
    },
    /// One shard of a sharded service refused its slice of a routed
    /// batch. Shards are independent failure domains: the other
    /// shards' commits stand, and only the sources routed to the
    /// failed shard need re-observation (their high-water marks are
    /// rolled back by the sharded sweep path).
    ShardCommit {
        /// Index of the first shard whose commit failed.
        shard: usize,
        /// The underlying failure on that shard.
        cause: Box<LiveError>,
    },
}

impl fmt::Display for LiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiveError::Journal(e) => write!(f, "journal failure: {e}"),
            LiveError::Crawl(e) => write!(f, "crawl tick failed: {e}"),
            LiveError::CheckpointGap {
                checkpoint_seq,
                journal_first_seq,
            } => write!(
                f,
                "checkpoint at seq {checkpoint_seq} does not reach the journal \
                 (first retained record is seq {journal_first_seq}); \
                 deltas in between are lost"
            ),
            LiveError::ShardCommit { shard, cause } => {
                write!(f, "shard {shard} refused its slice of the batch: {cause}")
            }
        }
    }
}

impl std::error::Error for LiveError {}

impl From<JournalError> for LiveError {
    fn from(e: JournalError) -> Self {
        LiveError::Journal(e)
    }
}

impl From<WrapperError> for LiveError {
    fn from(e: WrapperError) -> Self {
        LiveError::Crawl(e)
    }
}
