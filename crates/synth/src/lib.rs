//! # obs-synth — deterministic synthetic Web 2.0 world generation
//!
//! The paper's experiments ran against the live 2011 Web: 2 000+
//! blogs/forums crawled behind 100+ Google queries, Alexa traffic
//! panels, and Twitaholic's 813 most-influential London Twitter
//! accounts. None of that is reachable (or reproducible) today, so
//! this crate builds the closest synthetic equivalent:
//!
//! * a seeded, self-contained PRNG ([`rng::Rng64`], xoshiro256++) so
//!   worlds are bit-reproducible across platforms and `rand` version
//!   bumps;
//! * heavy-tailed samplers ([`rng`]) — Zipf, log-normal, Pareto,
//!   Poisson — matching the participation skew of real Web 2.0 data;
//! * a category-keyed text generator ([`text`]) that produces posts
//!   and comments with controllable topicality and sentiment, so the
//!   relevance measures and the sentiment services have real text to
//!   chew on;
//! * the world generator ([`world`]): sources of five kinds with
//!   latent *popularity*, *engagement* and *stickiness* factors (the
//!   three constructs the paper's Table 3 componentization recovers),
//!   audiences, discussions, comments and interaction streams;
//! * the Twitter population ([`twitter`]) calibrated to the paper's
//!   Section 4.2 description (813 accounts, mentions/retweets from 0
//!   to ~84 000, ≈4 orders of magnitude of spread);
//! * a query workload generator ([`queries`]) for the Section 4.1
//!   ranking study.

#![warn(missing_docs)]

pub mod names;
pub mod queries;
pub mod rng;
pub mod text;
pub mod twitter;
pub mod world;

pub use queries::{Query, QueryWorkload};
pub use rng::Rng64;
pub use text::TextGenerator;
pub use twitter::{TwitterAccount, TwitterConfig, TwitterPopulation};
pub use world::{SourceLatent, UserLatent, World, WorldConfig};
