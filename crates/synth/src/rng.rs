//! Self-contained seeded PRNG and the heavy-tailed samplers the
//! world generator draws from.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — small,
//! fast, and fully deterministic, so every experiment in the
//! reproduction can be pinned to a seed. `rand` stays out of library
//! code on purpose: its API and value streams shift across major
//! versions, which would silently invalidate the calibrated worlds.

/// SplitMix64 step, used for seeding and stream derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ pseudo-random generator.
#[derive(Debug, Clone, PartialEq)]
pub struct Rng64 {
    s: [u64; 4],
    /// Cached second normal variate from the polar method.
    cached_normal: Option<f64>,
}

impl Rng64 {
    /// Creates a generator from a seed.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng64 {
            s,
            cached_normal: None,
        }
    }

    /// Derives an independent child generator for a named stream.
    /// Forking keeps sub-generators stable when unrelated parts of
    /// the world generation change their draw counts.
    pub fn fork(&self, stream: u64) -> Rng64 {
        let mut sm = self.s[0] ^ self.s[2] ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng64 {
            s,
            cached_normal: None,
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`, 53-bit resolution.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`. Panics when `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Multiply-shift rejection-free mapping (bias < 2^-64·span,
        // negligible for the spans used here).
        let hi128 = (self.next_u64() as u128 * span as u128) >> 64;
        lo + hi128 as u64
    }

    /// Uniform index in `[0, n)`. Panics when `n == 0`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.range_u64(0, n as u64) as usize
    }

    /// Bernoulli draw.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Standard normal variate (Marsaglia polar method with caching).
    pub fn normal(&mut self) -> f64 {
        if let Some(v) = self.cached_normal.take() {
            return v;
        }
        loop {
            let u = 2.0 * self.f64() - 1.0;
            let v = 2.0 * self.f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.cached_normal = Some(v * factor);
                return u * factor;
            }
        }
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.normal()
    }

    /// Log-normal: `exp(μ + σ·Z)`.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Exponential with the given rate (mean `1/rate`).
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential needs rate > 0");
        -self.f64().max(f64::MIN_POSITIVE).ln() / rate
    }

    /// Pareto with scale `xm` and shape `alpha`.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        assert!(xm > 0.0 && alpha > 0.0, "pareto needs positive parameters");
        xm / self.f64().max(f64::MIN_POSITIVE).powf(1.0 / alpha)
    }

    /// Poisson draw. Knuth's product method below λ = 30, normal
    /// approximation above (adequate for workload sizing).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda >= 0.0, "poisson needs lambda >= 0");
        if lambda == 0.0 {
            return 0;
        }
        if lambda < 30.0 {
            let limit = (-lambda).exp();
            let mut product = self.f64();
            let mut count = 0u64;
            while product > limit {
                product *= self.f64();
                count += 1;
            }
            count
        } else {
            let v = self.normal_with(lambda, lambda.sqrt());
            v.max(0.0).round() as u64
        }
    }

    /// Uniformly picks an element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples an index proportionally to `weights` (non-negative,
    /// not all zero — otherwise uniform).
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        if total <= 0.0 {
            return self.index(weights.len());
        }
        let mut target = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w.is_finite() && w > 0.0 {
                target -= w;
                if target <= 0.0 {
                    return i;
                }
            }
        }
        weights.len() - 1
    }
}

/// Precomputed Zipf sampler over ranks `1..=n` with exponent `s`:
/// rank `k` is drawn with probability proportional to `k^−s`.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds the table. Panics on `n == 0` or negative exponent.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs n > 0");
        assert!(s >= 0.0, "zipf needs s >= 0");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the table is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws a 0-based index (rank − 1).
    pub fn sample(&self, rng: &mut Rng64) -> usize {
        let u = rng.f64();
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len() - 1)
    }
}

/// Precomputed cumulative-weight sampler: O(n) build, O(log n) draw.
/// Used for audience sampling where per-draw linear scans would make
/// world generation quadratic.
#[derive(Debug, Clone, PartialEq)]
pub struct CumulativeSampler {
    cumulative: Vec<f64>,
}

impl CumulativeSampler {
    /// Builds from non-negative weights; non-finite and negative
    /// weights count as zero. Panics on empty input; all-zero weights
    /// degrade to uniform.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "CumulativeSampler needs weights");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            if w.is_finite() && w > 0.0 {
                acc += w;
            }
            cumulative.push(acc);
        }
        if acc <= 0.0 {
            // Uniform fallback.
            for (i, c) in cumulative.iter_mut().enumerate() {
                *c = (i + 1) as f64;
            }
            acc = weights.len() as f64;
        }
        for c in &mut cumulative {
            *c /= acc;
        }
        CumulativeSampler { cumulative }
    }

    /// Number of weighted items.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the sampler is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws an index proportionally to its weight.
    pub fn sample(&self, rng: &mut Rng64) -> usize {
        let u = rng.f64();
        self.cumulative
            .partition_point(|&c| c <= u)
            .min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng64::seeded(42);
        let mut b = Rng64::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::seeded(1);
        let mut b = Rng64::seeded(2);
        let equal = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(equal < 2);
    }

    #[test]
    fn forked_streams_are_independent_of_parent_consumption() {
        let parent = Rng64::seeded(7);
        let mut fork_before = parent.fork(3);
        let mut consumed = parent.clone();
        for _ in 0..10 {
            consumed.next_u64();
        }
        // fork() depends only on the state at fork time; cloning the
        // parent and forking gives the identical child.
        let mut fork_after = parent.fork(3);
        for _ in 0..20 {
            assert_eq!(fork_before.next_u64(), fork_after.next_u64());
        }
        // Different stream ids give different children.
        let mut other = parent.fork(4);
        let same = (0..32)
            .filter(|_| parent.clone().fork(3).next_u64() == other.next_u64())
            .count();
        assert!(same < 2);
    }

    #[test]
    fn f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = Rng64::seeded(11);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = Rng64::seeded(5);
        for _ in 0..10_000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.range_u64(0, 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values reachable");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng64::seeded(23);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn poisson_mean_matches_lambda() {
        let mut rng = Rng64::seeded(31);
        for &lambda in &[0.5, 3.0, 12.0, 80.0] {
            let n = 20_000;
            let mean = (0..n).map(|_| rng.poisson(lambda) as f64).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.05,
                "lambda {lambda}: mean {mean}"
            );
        }
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn log_normal_median() {
        let mut rng = Rng64::seeded(37);
        let n = 30_000;
        let mut xs: Vec<f64> = (0..n).map(|_| rng.log_normal(2.0, 1.0)).collect();
        xs.sort_by(|a, b| a.total_cmp(b));
        let median = xs[n / 2];
        // Median of log-normal is exp(mu) ≈ 7.389.
        assert!((median - 2f64.exp()).abs() < 0.4, "median {median}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Rng64::seeded(41);
        let n = 30_000;
        let mean = (0..n).map(|_| rng.exponential(0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = Rng64::seeded(43);
        for _ in 0..5_000 {
            assert!(rng.pareto(3.0, 1.5) >= 3.0);
        }
    }

    #[test]
    fn weighted_index_tracks_weights() {
        let mut rng = Rng64::seeded(47);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        let n = 40_000;
        for _ in 0..n {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn weighted_index_degenerate_weights_fall_back_to_uniform() {
        let mut rng = Rng64::seeded(53);
        let weights = [0.0, 0.0];
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[rng.weighted_index(&weights)] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng64::seeded(59);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "overwhelmingly unlikely identity"
        );
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let z = Zipf::new(100, 1.2);
        let mut rng = Rng64::seeded(61);
        let n = 30_000;
        let mut counts = vec![0usize; 100];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[60]);
        // Every draw lands in range (sample never panics / overflows).
        assert_eq!(counts.iter().sum::<usize>(), n);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = Rng64::seeded(67);
        let mut counts = [0usize; 4];
        let n = 40_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
        }
    }

    #[test]
    fn cumulative_sampler_tracks_weights() {
        let s = CumulativeSampler::new(&[1.0, 0.0, 4.0]);
        let mut rng = Rng64::seeded(71);
        let mut counts = [0usize; 3];
        let n = 50_000;
        for _ in 0..n {
            counts[s.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 4.0).abs() < 0.4, "ratio {ratio}");
    }

    #[test]
    fn cumulative_sampler_all_zero_is_uniform() {
        let s = CumulativeSampler::new(&[0.0, 0.0, 0.0]);
        let mut rng = Rng64::seeded(73);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn cumulative_sampler_stays_in_range(
                weights in proptest::collection::vec(0.0f64..10.0, 1..50),
                seed in any::<u64>()
            ) {
                let s = CumulativeSampler::new(&weights);
                let mut rng = Rng64::seeded(seed);
                for _ in 0..30 {
                    prop_assert!(s.sample(&mut rng) < weights.len());
                }
            }

            #[test]
            fn range_never_leaves_bounds(seed in any::<u64>(), lo in 0u64..1000, span in 1u64..1000) {
                let mut rng = Rng64::seeded(seed);
                for _ in 0..50 {
                    let v = rng.range_u64(lo, lo + span);
                    prop_assert!(v >= lo && v < lo + span);
                }
            }

            #[test]
            fn zipf_sample_in_range(seed in any::<u64>(), n in 1usize..200, s in 0.0f64..3.0) {
                let z = Zipf::new(n, s);
                let mut rng = Rng64::seeded(seed);
                for _ in 0..50 {
                    prop_assert!(z.sample(&mut rng) < n);
                }
            }
        }
    }
}
