//! Deterministic name generation for sources and user handles.

use crate::rng::Rng64;
use obs_model::SourceKind;

const PREFIXES: &[&str] = &[
    "milan", "urban", "city", "lombard", "navigli", "brera", "daily", "vero", "nuovo", "gran",
    "bella", "meta", "alto", "monte", "porta", "corso", "villa", "riva", "sempione", "centrale",
];

const STEMS: &[&str] = &[
    "voices",
    "diaries",
    "notes",
    "talk",
    "board",
    "corner",
    "lounge",
    "journal",
    "gazette",
    "pulse",
    "wire",
    "echo",
    "report",
    "scene",
    "guide",
    "chronicle",
    "digest",
    "review",
    "observer",
    "post",
];

const HANDLE_SYLLABLES: &[&str] = &[
    "al", "be", "ca", "da", "el", "fi", "gio", "lu", "ma", "ni", "or", "pa", "ro", "sa", "te",
    "va", "zo", "an", "re", "mi",
];

/// Generates a source name unique per `(draws)` stream, e.g.
/// `"brera-gazette-17"`.
pub fn source_name(rng: &mut Rng64, kind: SourceKind, ordinal: usize) -> String {
    let prefix = rng.pick(PREFIXES);
    let stem = rng.pick(STEMS);
    format!(
        "{prefix}-{stem}-{}{ordinal}",
        kind.label().chars().next().unwrap_or('x')
    )
}

/// Generates a user handle, e.g. `"carosa42"`.
pub fn user_handle(rng: &mut Rng64, ordinal: usize) -> String {
    let a = rng.pick(HANDLE_SYLLABLES);
    let b = rng.pick(HANDLE_SYLLABLES);
    let c = rng.pick(HANDLE_SYLLABLES);
    format!("{a}{b}{c}{ordinal}")
}

/// Generates a brand-style handle, e.g. `"velvetlabs_official"`.
pub fn brand_handle(rng: &mut Rng64, ordinal: usize) -> String {
    let a = rng.pick(PREFIXES);
    let b = rng.pick(STEMS);
    format!("{a}{b}_official{ordinal}")
}

/// Generates a news-outlet handle, e.g. `"metropulse_news"`.
pub fn news_handle(rng: &mut Rng64, ordinal: usize) -> String {
    let a = rng.pick(PREFIXES);
    let b = rng.pick(STEMS);
    format!("{a}{b}_news{ordinal}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_embed_ordinal_for_uniqueness() {
        let mut rng = Rng64::seeded(1);
        let names: Vec<String> = (0..100)
            .map(|i| source_name(&mut rng, SourceKind::Blog, i))
            .collect();
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
        assert!(names[7].ends_with("b7"));
    }

    #[test]
    fn handles_are_unique_by_ordinal() {
        let mut rng = Rng64::seeded(2);
        let handles: Vec<String> = (0..200).map(|i| user_handle(&mut rng, i)).collect();
        let unique: std::collections::HashSet<_> = handles.iter().collect();
        assert_eq!(unique.len(), handles.len());
    }

    #[test]
    fn branded_handles_are_marked() {
        let mut rng = Rng64::seeded(3);
        assert!(brand_handle(&mut rng, 5).contains("_official"));
        assert!(news_handle(&mut rng, 5).contains("_news"));
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = Rng64::seeded(42);
        let mut b = Rng64::seeded(42);
        assert_eq!(
            source_name(&mut a, SourceKind::Forum, 3),
            source_name(&mut b, SourceKind::Forum, 3)
        );
    }
}
