//! Query workload generation for the Section 4.1 ranking study.
//!
//! The paper *"performed over 100 queries with Google, limiting the
//! results of each query to the first 20 blogs and forums"*. Queries
//! here are 1–3 keyword bags drawn from a category's vocabulary
//! (occasionally mixing a second category in, as real user queries
//! do), which the `obs-search` baseline evaluates against the post
//! index.

use crate::rng::Rng64;
use crate::text::CATEGORIES;

/// One search query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// Workload-local identifier.
    pub id: u32,
    /// Search terms.
    pub terms: Vec<String>,
    /// The category the query is mainly about (name from the
    /// category catalog).
    pub category: String,
}

impl Query {
    /// Terms joined for display.
    pub fn text(&self) -> String {
        self.terms.join(" ")
    }
}

/// A generated set of queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryWorkload {
    /// The queries, id-ordered.
    pub queries: Vec<Query>,
}

impl QueryWorkload {
    /// Generates `count` queries over the first `categories` catalog
    /// entries.
    pub fn generate(seed: u64, count: usize, categories: usize) -> QueryWorkload {
        let mut rng = Rng64::seeded(seed);
        let n_cats = categories.clamp(1, CATEGORIES.len());
        let mut queries = Vec::with_capacity(count);
        for id in 0..count {
            let cat = &CATEGORIES[rng.index(n_cats)];
            let n_terms = 1 + rng.index(3);
            let mut terms = Vec::with_capacity(n_terms + 1);
            let mut pool: Vec<&str> = cat.keywords.to_vec();
            rng.shuffle(&mut pool);
            terms.extend(pool.into_iter().take(n_terms).map(str::to_owned));
            // ~20% of queries mix in a term from another category.
            if rng.chance(0.2) {
                let other = &CATEGORIES[rng.index(n_cats)];
                terms.push(other.keywords[rng.index(other.keywords.len())].to_owned());
            }
            queries.push(Query {
                id: id as u32,
                terms,
                category: cat.name.to_owned(),
            });
        }
        QueryWorkload { queries }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::keywords_for;

    #[test]
    fn workload_has_requested_size() {
        let w = QueryWorkload::generate(1, 120, 10);
        assert_eq!(w.len(), 120);
        assert!(!w.is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = QueryWorkload::generate(5, 50, 8);
        let b = QueryWorkload::generate(5, 50, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn queries_have_one_to_four_terms() {
        let w = QueryWorkload::generate(9, 200, 12);
        for q in &w.queries {
            assert!((1..=4).contains(&q.terms.len()), "{:?}", q.terms);
        }
    }

    #[test]
    fn primary_terms_come_from_the_declared_category() {
        let w = QueryWorkload::generate(13, 100, 12);
        for q in &w.queries {
            let kws = keywords_for(&q.category).unwrap();
            // At least the first term is from the category vocabulary.
            assert!(kws.contains(&q.terms[0].as_str()), "{q:?}");
        }
    }

    #[test]
    fn text_joins_terms() {
        let q = Query {
            id: 0,
            terms: vec!["duomo".into(), "rooftop".into()],
            category: "attractions".into(),
        };
        assert_eq!(q.text(), "duomo rooftop");
    }
}
