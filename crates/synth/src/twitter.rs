//! The Section 4.2 Twitter population.
//!
//! The paper analyzed *"the interactions of the most influent Twitter
//! users located in London, provided by […] Twitaholic. This dataset
//! is composed by 813 users with a certain degree of heterogeneity;
//! in particular, the minimum value for mentions and retweets is 0,
//! while the maximum is 84000, and the difference between the most
//! and the least connected users is about 4 orders of magnitude"*,
//! hand-annotated into brand / news / people accounts.
//!
//! [`TwitterPopulation::generate`] builds a synthetic stand-in with
//! the same descriptive statistics and the class-conditional
//! structure Table 4 reports:
//!
//! * news sources emit the most tweets and collect by far the most
//!   retweets (their content re-broadcasts);
//! * people collect the most mentions (one-to-one conversation);
//! * brands trail on interaction volume;
//! * *relative* rates (per-tweet mentions/retweets) do **not**
//!   separate the classes — high-volume accounts cannot make every
//!   tweet resonate.

use crate::rng::Rng64;
use obs_model::AccountKind;

/// One synthetic Twitter account with its aggregate counters.
#[derive(Debug, Clone, PartialEq)]
pub struct TwitterAccount {
    /// Handle.
    pub handle: String,
    /// Annotated account kind (the paper's manual labelling).
    pub kind: AccountKind,
    /// Total tweets emitted, including retweets of others — the
    /// paper's *interactions* measure.
    pub tweets: u64,
    /// Mentions received — the paper's *number of replies received*.
    pub mentions_received: u64,
    /// Retweets received — the paper's *number of feedbacks*.
    pub retweets_received: u64,
}

impl TwitterAccount {
    /// Relative mentions: average replies received per tweet.
    pub fn relative_mentions(&self) -> f64 {
        if self.tweets == 0 {
            0.0
        } else {
            self.mentions_received as f64 / self.tweets as f64
        }
    }

    /// Relative retweets: average feedbacks received per tweet.
    pub fn relative_retweets(&self) -> f64 {
        if self.tweets == 0 {
            0.0
        } else {
            self.retweets_received as f64 / self.tweets as f64
        }
    }
}

/// Configuration of the synthetic population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwitterConfig {
    /// Seed.
    pub seed: u64,
    /// Population size (the paper's dataset has 813).
    pub accounts: usize,
    /// Hard cap on any single counter (the paper's observed maximum
    /// is 84 000).
    pub max_count: u64,
}

impl Default for TwitterConfig {
    fn default() -> Self {
        TwitterConfig {
            seed: 813,
            accounts: 813,
            max_count: 84_000,
        }
    }
}

/// The generated population.
#[derive(Debug, Clone, PartialEq)]
pub struct TwitterPopulation {
    /// All accounts.
    pub accounts: Vec<TwitterAccount>,
}

impl TwitterPopulation {
    /// Generates a population.
    ///
    /// The model couples per-tweet response *rates* to each account's
    /// volume shock with a class-specific exponent, mean-corrected so
    /// that expected relative rates are identical across classes:
    ///
    /// ```text
    /// tweets        T = exp(a_k + s_T·x)                       x ~ N(0,1)
    /// mention rate  m = exp(b + γm_k·s_T·x − (γm_k·s_T)²/2 + s_M·ε)
    /// retweet rate  r = exp(c + γr_k·s_T·x − (γr_k·s_T)²/2 + s_R·ε)
    /// mentions received = T·m,   retweets received = T·r
    /// ```
    ///
    /// The coupling moves the *absolute* class means via
    /// `E[T·m] ∝ exp(a_k + γm_k·s_T²)` while leaving `E[m]` flat, so
    /// the ANOVA/Bonferroni analysis reproduces exactly Table 4's
    /// pattern: classes separate on absolute volumes, not on relative
    /// rates. Parameters were calibrated against the pooled-variance
    /// Bonferroni procedure at the paper's group sizes.
    pub fn generate(config: TwitterConfig) -> TwitterPopulation {
        // Volume location per class (people ≈ news ≫ brands, matching
        // the interactions row of Table 4).
        const A: [f64; 3] = [7.8, 7.0, 7.8]; // people, brand, news
        const S_T: f64 = 0.55;
        const S_RATE: f64 = 0.7;
        const B_MENTION: f64 = -1.6;
        const C_RETWEET: f64 = -1.2;
        // Volume→rate couplings: people convert volume into
        // conversation (mentions), news into re-broadcast (retweets);
        // brands compensate their low volume with a positive coupling
        // that keeps their absolute mentions level with news.
        const G_MENTION: [f64; 3] = [1.2, 1.14, -1.5];
        const G_RETWEET: [f64; 3] = [-1.2, 1.44, 1.6];

        let mut rng = Rng64::seeded(config.seed);
        let mut accounts = Vec::with_capacity(config.accounts);
        for i in 0..config.accounts {
            // Influential-account mix: mostly people, some brands,
            // fewer news outlets (Twitaholic top lists skew personal).
            let (kind, k) = match rng.f64() {
                p if p < 0.62 => (AccountKind::Person, 0),
                p if p < 0.85 => (AccountKind::Brand, 1),
                _ => (AccountKind::News, 2),
            };

            let x = rng.normal();
            let tweets = ((A[k] + S_T * x).exp().round() as u64).clamp(1, config.max_count);

            let gm = G_MENTION[k] * S_T;
            let mention_rate = (B_MENTION + gm * x - gm * gm / 2.0 + S_RATE * rng.normal()).exp();
            let gr = G_RETWEET[k] * S_T;
            let retweet_rate = (C_RETWEET + gr * x - gr * gr / 2.0 + S_RATE * rng.normal()).exp();

            let mentions_received =
                ((tweets as f64 * mention_rate).round() as u64).min(config.max_count);
            let retweets_received =
                ((tweets as f64 * retweet_rate).round() as u64).min(config.max_count);

            accounts.push(TwitterAccount {
                handle: format!("{}_{i}", kind.label()),
                kind,
                tweets,
                mentions_received,
                retweets_received,
            });
        }

        // The paper's dataset contains zero-valued accounts; force a
        // handful so `min = 0` holds exactly.
        for j in 0..accounts.len().min(5) {
            let idx = j * accounts.len() / 5;
            if j % 2 == 0 {
                accounts[idx].mentions_received = 0;
            } else {
                accounts[idx].retweets_received = 0;
            }
        }
        TwitterPopulation { accounts }
    }

    /// Accounts of one kind.
    pub fn of_kind(&self, kind: AccountKind) -> Vec<&TwitterAccount> {
        self.accounts.iter().filter(|a| a.kind == kind).collect()
    }

    /// Extracts a measure as grouped samples in
    /// `[people, brand, news]` order — the layout the ANOVA harness
    /// consumes.
    pub fn grouped_measure(&self, f: impl Fn(&TwitterAccount) -> f64) -> [Vec<f64>; 3] {
        let mut groups: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for a in &self.accounts {
            let slot = match a.kind {
                AccountKind::Person => 0,
                AccountKind::Brand => 1,
                AccountKind::News => 2,
            };
            groups[slot].push(f(a));
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop() -> TwitterPopulation {
        TwitterPopulation::generate(TwitterConfig::default())
    }

    #[test]
    fn population_size_matches_the_paper() {
        assert_eq!(pop().accounts.len(), 813);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(pop(), pop());
    }

    #[test]
    fn all_three_classes_are_present() {
        let p = pop();
        for kind in AccountKind::ALL {
            assert!(!p.of_kind(kind).is_empty(), "missing {kind}");
        }
    }

    #[test]
    fn counter_bounds_match_the_paper() {
        let p = pop();
        let max_mentions = p
            .accounts
            .iter()
            .map(|a| a.mentions_received)
            .max()
            .unwrap();
        let min_mentions = p
            .accounts
            .iter()
            .map(|a| a.mentions_received)
            .min()
            .unwrap();
        let max_retweets = p
            .accounts
            .iter()
            .map(|a| a.retweets_received)
            .max()
            .unwrap();
        let min_retweets = p
            .accounts
            .iter()
            .map(|a| a.retweets_received)
            .min()
            .unwrap();
        assert_eq!(min_mentions, 0);
        assert_eq!(min_retweets, 0);
        assert!(max_mentions <= 84_000);
        assert!(max_retweets <= 84_000);
        // The spread spans roughly four orders of magnitude.
        let positive_min = p
            .accounts
            .iter()
            .map(|a| a.mentions_received.max(1))
            .min()
            .unwrap() as f64;
        assert!(
            (max_mentions as f64 / positive_min).log10() >= 3.0,
            "spread too small: max {max_mentions}"
        );
    }

    #[test]
    fn news_dominates_retweets_people_dominate_mentions() {
        let p = pop();
        let mean = |v: &[&TwitterAccount], f: &dyn Fn(&TwitterAccount) -> f64| {
            v.iter().map(|a| f(a)).sum::<f64>() / v.len() as f64
        };
        let people = p.of_kind(AccountKind::Person);
        let brands = p.of_kind(AccountKind::Brand);
        let news = p.of_kind(AccountKind::News);

        let rt = |a: &TwitterAccount| a.retweets_received as f64;
        let mn = |a: &TwitterAccount| a.mentions_received as f64;
        assert!(mean(&news, &rt) > 1.7 * mean(&people, &rt));
        assert!(mean(&news, &rt) > 1.7 * mean(&brands, &rt));
        assert!(mean(&people, &mn) > 1.3 * mean(&news, &mn));
        assert!(mean(&people, &mn) > 1.3 * mean(&brands, &mn));
    }

    #[test]
    fn brands_emit_fewest_tweets() {
        let p = pop();
        let mean =
            |v: &[&TwitterAccount]| v.iter().map(|a| a.tweets as f64).sum::<f64>() / v.len() as f64;
        let people = mean(&p.of_kind(AccountKind::Person));
        let brands = mean(&p.of_kind(AccountKind::Brand));
        let news = mean(&p.of_kind(AccountKind::News));
        assert!(brands < people && brands < news);
    }

    #[test]
    fn relative_rates_do_not_separate_classes_strongly() {
        let p = pop();
        let mean = |v: &[&TwitterAccount], f: &dyn Fn(&TwitterAccount) -> f64| {
            v.iter().map(|a| f(a)).sum::<f64>() / v.len() as f64
        };
        let rel_rt = |a: &TwitterAccount| a.relative_retweets();
        let people = mean(&p.of_kind(AccountKind::Person), &rel_rt);
        let news = mean(&p.of_kind(AccountKind::News), &rel_rt);
        // Means differ (news retweet rate is higher by construction)
        // but remain within the same order of magnitude — the class
        // separation lives in the absolute volumes.
        assert!(news / people < 10.0);
    }

    #[test]
    fn grouped_measure_partitions_the_population() {
        let p = pop();
        let groups = p.grouped_measure(|a| a.tweets as f64);
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, p.accounts.len());
    }

    #[test]
    fn zero_tweets_account_has_zero_relative_rates() {
        let a = TwitterAccount {
            handle: "x".into(),
            kind: AccountKind::Person,
            tweets: 0,
            mentions_received: 5,
            retweets_received: 3,
        };
        assert_eq!(a.relative_mentions(), 0.0);
        assert_eq!(a.relative_retweets(), 0.0);
    }
}
